package oracle

// BLMT ↔ Iceberg consistency: after random DML and compaction on a
// managed table, the Iceberg snapshot exported via internal/iceberg
// must reference a file set that decodes to exactly the row set the
// engine returns for the same table. An external Iceberg reader and a
// BigQuery query must never disagree about table contents — the
// zero-copy interoperability claim in DESIGN.md.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"biglake/internal/colfmt"
	"biglake/internal/iceberg"
)

// icebergRows decodes every data file referenced by the exported
// snapshot and returns the rendered row multiset.
func icebergRows(t *testing.T, h *harness, metadataKey string) ([]string, []string) {
	t.Helper()
	files, schema, err := iceberg.ReadTable(h.w.store, h.w.cred, diffBucket, metadataKey)
	if err != nil {
		t.Fatalf("ReadTable(%s): %v", metadataKey, err)
	}
	var rows []string
	for _, f := range files {
		slash := strings.IndexByte(f.Path, '/')
		if slash < 0 {
			t.Fatalf("data file path %q has no bucket prefix", f.Path)
		}
		data, _, err := h.w.store.Get(h.w.cred, f.Path[:slash], f.Path[slash+1:])
		if err != nil {
			t.Fatalf("get %s: %v", f.Path, err)
		}
		rd, err := colfmt.NewVectorizedReader(data, nil, nil)
		if err != nil {
			t.Fatalf("decode %s: %v", f.Path, err)
		}
		b, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("read %s: %v", f.Path, err)
		}
		if int64(b.N) != f.RecordCount {
			t.Fatalf("%s: manifest says %d records, file holds %d", f.Path, f.RecordCount, b.N)
		}
		for r := 0; r < b.N; r++ {
			rows = append(rows, renderRow(b.Row(r)))
		}
	}
	names := make([]string, len(schema.Fields))
	for i, fld := range schema.Fields {
		names[i] = fld.Name
	}
	return rows, names
}

// checkExportEquality exports one managed table and compares the
// snapshot's decoded contents against SELECT * through the engine.
func checkExportEquality(t *testing.T, h *harness, table string) {
	t.Helper()
	key, err := h.w.mgr.ExportIceberg(table)
	if err != nil {
		t.Fatalf("ExportIceberg(%s): %v", table, err)
	}
	gotRows, gotNames := icebergRows(t, h, key)

	eng := h.engineFor(defaultCell())
	want, err := h.engRun(eng, "iceberg-eq-"+table, "SELECT * FROM "+table)
	if err != nil {
		t.Fatalf("SELECT * FROM %s: %v", table, err)
	}
	if strings.Join(gotNames, ",") != strings.Join(want.Names, ",") {
		t.Fatalf("%s: iceberg schema %v, engine schema %v", table, gotNames, want.Names)
	}
	wantRows := make([]string, len(want.Rows))
	for i, row := range want.Rows {
		wantRows[i] = renderRow(row)
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("%s: iceberg snapshot has %d rows, engine returns %d", table, len(gotRows), len(wantRows))
	}
	sort.Strings(gotRows)
	sort.Strings(wantRows)
	for i := range gotRows {
		if gotRows[i] != wantRows[i] {
			t.Fatalf("%s: row %d differs\n  iceberg: %s\n  engine:  %s", table, i, gotRows[i], wantRows[i])
		}
	}
	t.Logf("%s: iceberg export matches engine (%d rows, %d columns)", table, len(gotRows), len(gotNames))
}

func TestIcebergExportEquality(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w, err := newWorld()
			if err != nil {
				t.Fatal(err)
			}
			gen := NewGen(seed)
			tables := gen.Tables()
			h := &harness{w: w, db: NewDB(), seed: seed, rep: &Report{}, logf: t.Logf}
			if err := h.install(tables); err != nil {
				t.Fatal(err)
			}
			var managed *GenTable
			for _, tb := range tables {
				if tb.Managed {
					managed = tb
				}
			}

			// Random DML so the commit log carries inserts, deletes,
			// and updates beyond the bootstrap state.
			ctasT, d := h.runDML(gen, managed, fmt.Sprintf("ds.ice%d", seed))
			if d != nil {
				t.Fatalf("DML divergence while seeding: %s", d.Format())
			}

			// Export both before and after compaction: the snapshot
			// must track whichever file layout is current.
			checkExportEquality(t, h, managed.Full)
			if _, err := w.mgr.Optimize(string(diffAdmin), managed.Full, ""); err != nil {
				t.Fatalf("optimize: %v", err)
			}
			checkExportEquality(t, h, managed.Full)

			if ctasT != nil {
				checkExportEquality(t, h, ctasT.Full)
			}
		})
	}
}
