package oracle

// The corruption sweep: the differential harness's integrity arm. A
// generated world runs generated queries while the object store
// silently corrupts a seeded fraction of GET responses (bit flips,
// truncations, stale-object substitution), across {scan cache on/off}
// × {chaos faults on/off} × {pre/post compaction}. The contract under
// corruption mirrors the fault contract, tightened:
//
//   - the engine may FAIL a query — with a typed integrity error — but
//     must never return a wrong answer;
//   - every failure must be accounted: the registry's
//     integrity.detected.* counters must be nonzero whenever
//     integrity.injected.* is (injected-vs-detected reconciliation);
//   - corruption of the stored copy (not just the response) must end
//     in quarantine, and blmt.Repair from a surviving replica must
//     restore full availability with bit-identical answers.

import (
	"errors"
	"fmt"
	"strings"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/integrity"
	"biglake/internal/objstore"
	"biglake/internal/obs"
)

// IntegrityOptions configures a corruption sweep.
type IntegrityOptions struct {
	Seed uint64
	// Queries is the number of generated SELECTs per phase (default 24).
	Queries int
	// CorruptRate is the per-GET silent-corruption probability in the
	// corruption cells (default 0.04).
	CorruptRate float64
	Log         func(format string, args ...any)
}

// IntegrityCell is one corruption-matrix configuration.
type IntegrityCell struct {
	ScanCache bool
	Chaos     bool
}

func (c IntegrityCell) String() string {
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	return fmt.Sprintf("scancache=%s chaos=%s", onOff(c.ScanCache), onOff(c.Chaos))
}

// IntegrityReport is the outcome of one sweep.
type IntegrityReport struct {
	Queries    int
	Executions int
	// IntegrityErrors counts queries that failed with a typed
	// corruption error — the allowed degradation.
	IntegrityErrors int
	// OtherErrors counts non-integrity failures (chaos faults past the
	// retry budget, quarantine commits racing, ...).
	OtherErrors int
	// WrongAnswers counts successful queries whose rows diverged from
	// the oracle. The invariant: always zero.
	WrongAnswers int
	WrongDetail  string
	// Injected / Detected / Recovered / Quarantines are the registry's
	// integrity.* totals after the sweep.
	Injected    int64
	Detected    int64
	Recovered   int64
	Quarantines int64
	// Stored-damage leg: files corrupted at rest, then quarantined,
	// skipped under the opt-in, repaired, and re-verified.
	StoredCorrupted  int
	StoredQuarantine int
	SkippedRows      bool
	Repaired         int
	RepairVerified   bool
}

// sumPrefix totals every counter under a dotted prefix.
func sumPrefix(snap obs.Snapshot, prefix string) int64 {
	var n int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, prefix) {
			n += v
		}
	}
	return n
}

// integrityEngine builds a cell engine wired to the sweep's registry.
func (h *harness) integrityEngine(cell IntegrityCell, reg *obs.Registry, skipQuarantined bool) *engine.Engine {
	meta := bigmeta.NewCache(h.w.clock, nil)
	eng := engine.New(h.w.cat, h.w.auth, meta, h.w.log, h.w.clock, h.w.stores, engine.Options{
		UseMetadataCache: true,
		EnableDPP:        true,
		PruneGranularity: bigmeta.PruneFiles,
		EnableScanCache:  cell.ScanCache,
		SkipQuarantined:  skipQuarantined,
		GCLean:           true,
	})
	eng.ManagedCred = h.w.cred
	eng.SetMutator(h.w.mgr)
	eng.UseObs(reg)
	return eng
}

// RunIntegritySweep executes the corruption sweep and returns its
// report. The returned error covers infrastructure failures and
// violated invariants are left in the report for the caller to assert
// (WrongAnswers, reconciliation, repair).
func RunIntegritySweep(opts IntegrityOptions) (IntegrityReport, error) {
	if opts.Queries <= 0 {
		opts.Queries = 24
	}
	if opts.CorruptRate <= 0 {
		opts.CorruptRate = 0.04
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := IntegrityReport{}

	w, err := newWorld()
	if err != nil {
		return rep, err
	}
	reg := obs.NewRegistry()
	w.store.UseObs(reg)
	w.log.UseObs(reg)

	gen := NewGen(opts.Seed)
	tables := gen.Tables()
	h := &harness{w: w, db: NewDB(), seed: opts.Seed, rep: &Report{}, logf: logf}
	if err := h.install(tables); err != nil {
		return rep, err
	}

	queries := make([]GenQuery, opts.Queries)
	golden := make([]*Resultset, opts.Queries)
	for i := range queries {
		queries[i] = gen.Query(tables)
		rs, err := h.db.ExecSQL(queries[i].SQL)
		if err != nil {
			// Statements both sides reject carry no integrity signal;
			// regenerate until the oracle accepts it.
			for tries := 0; err != nil && tries < 20; tries++ {
				queries[i] = gen.Query(tables)
				rs, err = h.db.ExecSQL(queries[i].SQL)
			}
			if err != nil {
				return rep, fmt.Errorf("could not generate an oracle-valid query: %w", err)
			}
		}
		golden[i] = rs
	}
	rep.Queries = len(queries)

	cells := []IntegrityCell{
		{ScanCache: false, Chaos: false},
		{ScanCache: true, Chaos: false},
		{ScanCache: false, Chaos: true},
		{ScanCache: true, Chaos: true},
	}
	profile := func(cell int, phase string) objstore.FaultProfile {
		p := objstore.FaultProfile{
			Seed:        opts.Seed*1000003 + uint64(cell)<<16 + uint64(len(phase)),
			CorruptRate: opts.CorruptRate,
		}
		if cells[cell].Chaos {
			p.Rate, p.StreakLen = 0.02, 2
		}
		return p
	}

	runPhase := func(phase string) error {
		defer w.store.ClearFaults()
		for ci, cell := range cells {
			w.store.InjectFaults(profile(ci, phase))
			eng := h.integrityEngine(cell, reg, false)
			for qi, q := range queries {
				qid := fmt.Sprintf("integ-%d-%s-%d-%d", opts.Seed, phase, ci, qi)
				res, err := eng.Query(engine.NewContext(diffAdmin, qid), q.SQL)
				rep.Executions++
				if err != nil {
					if errors.Is(err, integrity.ErrCorrupt) {
						rep.IntegrityErrors++
					} else {
						rep.OtherErrors++
					}
					continue
				}
				if d := diffResults(FromBatch(res.Batch), golden[qi], q.Ordered); d != "" {
					rep.WrongAnswers++
					if rep.WrongDetail == "" {
						rep.WrongDetail = fmt.Sprintf("phase=%s cell={%s} sql=%s: %s", phase, cell, q.SQL, d)
					}
				}
			}
			logf("phase %s cell {%s}: done", phase, cell)
		}
		return nil
	}

	if err := runPhase("pre"); err != nil {
		return rep, err
	}
	// Compact the managed table fault-free, then sweep again: the
	// rewritten files carry fresh CRCs and generations.
	w.store.ClearFaults()
	var managed *GenTable
	for _, t := range tables {
		if t.Managed {
			managed = t
		}
	}
	if _, err := w.mgr.Optimize(string(diffAdmin), managed.Full, ""); err != nil {
		return rep, fmt.Errorf("optimize %s: %w", managed.Full, err)
	}
	if err := runPhase("post"); err != nil {
		return rep, err
	}

	// Stored-damage leg: corrupt the managed table's files at rest and
	// drive detect -> quarantine -> skip -> repair -> verify.
	w.store.ClearFaults()
	if err := runStoredDamage(h, reg, managed, &rep); err != nil {
		return rep, err
	}

	snap := reg.Snapshot()
	rep.Injected = sumPrefix(snap, "integrity.injected.")
	rep.Detected = sumPrefix(snap, "integrity.detected.")
	rep.Recovered = sumPrefix(snap, "integrity.recovered.")
	rep.Quarantines = snap.Counters["integrity.quarantines"]
	return rep, nil
}

// runStoredDamage flips bits in stored managed-table files, then
// drives the full containment and repair path against the golden
// oracle answer.
func runStoredDamage(h *harness, reg *obs.Registry, managed *GenTable, rep *IntegrityReport) error {
	w := h.w
	goldenSQL := fmt.Sprintf("SELECT * FROM %s", managed.Full)
	golden, err := h.db.ExecSQL(goldenSQL)
	if err != nil {
		return err
	}

	files, _, err := w.log.Snapshot(managed.Full, -1)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("managed table %s has no files", managed.Full)
	}
	// Keep pristine replicas before damaging anything: the repair
	// path's "surviving replica".
	replicas := make(map[string][]byte, len(files))
	for _, f := range files {
		data, _, err := w.store.Get(w.cred, f.Bucket, f.Key)
		if err != nil {
			return err
		}
		replicas[f.Key] = append([]byte(nil), data...)
	}
	// Damage up to two files at rest, deterministically.
	damage := len(files)
	if damage > 2 {
		damage = 2
	}
	for i := 0; i < damage; i++ {
		f := files[i]
		if err := w.store.FlipStoredBit(f.Bucket, f.Key, int64(37+101*i)); err != nil {
			return err
		}
	}
	rep.StoredCorrupted = damage

	// 1. Detection + quarantine: the query must fail typed — both
	// fetches see the same rotten stored bytes.
	eng := h.integrityEngine(IntegrityCell{}, reg, false)
	if _, err := eng.Query(engine.NewContext(diffAdmin, "integ-stored-1"), goldenSQL); err == nil {
		return fmt.Errorf("query over %d bit-flipped files succeeded", damage)
	} else if !errors.Is(err, integrity.ErrCorrupt) {
		return fmt.Errorf("stored corruption surfaced untyped: %v", err)
	}
	rep.StoredQuarantine = len(w.log.Quarantined(managed.Full))
	if rep.StoredQuarantine == 0 {
		return fmt.Errorf("no file quarantined after persistent corruption")
	}

	// 2. Degraded read under the explicit opt-in: skip-and-warn, never
	// a wrong full answer — the result must be a subset of the oracle's.
	skipEng := h.integrityEngine(IntegrityCell{}, reg, true)
	res, err := skipEng.Query(engine.NewContext(diffAdmin, "integ-stored-2"), goldenSQL)
	if err != nil {
		return fmt.Errorf("SkipQuarantined query failed: %w", err)
	}
	got := FromBatch(res.Batch)
	if len(got.Rows) >= len(golden.Rows) {
		return fmt.Errorf("skip-and-warn returned %d rows, golden has %d — nothing was skipped", len(got.Rows), len(golden.Rows))
	}
	rep.SkippedRows = true

	// 3. Repair from the surviving replicas, then re-verify the full
	// answer bit-identically.
	rr, err := w.mgr.Repair(string(diffAdmin), managed.Full, func(t catalog.Table, f bigmeta.FileEntry) ([]byte, error) {
		data, ok := replicas[f.Key]
		if !ok {
			return nil, fmt.Errorf("no replica for %s", f.Key)
		}
		return data, nil
	})
	if err != nil {
		return err
	}
	rep.Repaired = rr.Rewritten + rr.Reverified
	if len(rr.Failed) > 0 {
		return fmt.Errorf("repair failed for %v", rr.Failed)
	}
	if len(w.log.Quarantined(managed.Full)) != 0 {
		return fmt.Errorf("files still quarantined after repair")
	}
	post := h.integrityEngine(IntegrityCell{}, reg, false)
	res, err = post.Query(engine.NewContext(diffAdmin, "integ-stored-3"), goldenSQL)
	if err != nil {
		return fmt.Errorf("query after repair failed: %w", err)
	}
	if d := diffResults(FromBatch(res.Batch), golden, false); d != "" {
		return fmt.Errorf("repaired table diverged from oracle: %s", d)
	}
	rep.RepairVerified = true
	return nil
}
