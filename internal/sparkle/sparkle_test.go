package sparkle

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/storageapi"
	"biglake/internal/vector"
)

const (
	adminP = security.Principal("admin@corp")
	userP  = security.Principal("spark-user@corp")
)

type env struct {
	clock *sim.Clock
	store *objstore.Store
	srv   *storageapi.Server
	auth  *security.Authority
	cred  objstore.Credential
	user  objstore.Credential
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa@corp"}
	user := objstore.Credential{Principal: string(userP)}
	if err := store.CreateBucket(cred, "lake"); err != nil {
		t.Fatal(err)
	}
	store.Grant(cred, "lake", string(userP), objstore.PermRead)
	cat := catalog.New()
	cat.CreateDataset(catalog.Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"})
	auth := security.NewAuthority("secret", adminP)
	auth.RegisterConnection(adminP, security.Connection{Name: "conn", ServiceAccount: cred, Cloud: "gcp"})
	meta := bigmeta.NewCache(clock, nil)
	log := bigmeta.NewLog(clock, nil)
	srv := storageapi.NewServer(cat, auth, meta, log, clock, map[string]*objstore.Store{"gcp": store})
	srv.ManagedCred = cred
	return &env{clock: clock, store: store, srv: srv, auth: auth, cred: cred, user: user}
}

func factSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "item_id", Type: vector.Int64},
		vector.Field{Name: "qty", Type: vector.Int64},
	)
}

// loadFact writes `files` fact files with item_ids ascending, and
// registers them as a BigLake table.
func (ev *env) loadFact(t *testing.T, files, rowsPerFile int) {
	t.Helper()
	next := int64(0)
	for f := 0; f < files; f++ {
		bl := vector.NewBuilder(factSchema())
		for r := 0; r < rowsPerFile; r++ {
			bl.Append(vector.IntValue(next), vector.IntValue(next%7))
			next++
		}
		file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ev.store.Put(ev.cred, "lake", fmt.Sprintf("fact/part-%03d.blk", f), file, "")
	}
	ev.srv.Catalog.CreateTable(catalog.Table{
		Dataset: "ds", Name: "fact", Type: catalog.BigLake, Schema: factSchema(),
		Cloud: "gcp", Bucket: "lake", Prefix: "fact/", Connection: "conn", MetadataCaching: true,
	})
	ev.auth.GrantTable(adminP, "ds.fact", userP, security.RoleViewer)
}

func dimSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "tier", Type: vector.String},
	)
}

func (ev *env) loadDim(t *testing.T, n, goldCount int) {
	t.Helper()
	bl := vector.NewBuilder(dimSchema())
	for i := 0; i < n; i++ {
		tier := "basic"
		if i < goldCount {
			tier = "gold"
		}
		bl.Append(vector.IntValue(int64(i)), vector.StringValue(tier))
	}
	file, _ := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	ev.store.Put(ev.cred, "lake", "dim/part-000.blk", file, "")
	ev.srv.Catalog.CreateTable(catalog.Table{
		Dataset: "ds", Name: "dim", Type: catalog.BigLake, Schema: dimSchema(),
		Cloud: "gcp", Bucket: "lake", Prefix: "dim/", Connection: "conn", MetadataCaching: true,
	})
	ev.auth.GrantTable(adminP, "ds.dim", userP, security.RoleViewer)
}

func TestDirectScan(t *testing.T) {
	ev := newEnv(t)
	ev.loadFact(t, 4, 25)
	sess := NewSession(ev.clock, Options{})
	got, err := sess.ReadFiles(ev.store, ev.user, "lake", "fact/").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 100 {
		t.Fatalf("rows = %d", got.N)
	}
	if sess.Meter.Get("direct_list_calls") != 1 || sess.Meter.Get("direct_footer_reads") != 4 {
		t.Fatalf("meter = %v", sess.Meter.Snapshot())
	}
}

func TestDirectScanFilterSkipsFiles(t *testing.T) {
	ev := newEnv(t)
	ev.loadFact(t, 10, 10)
	sess := NewSession(ev.clock, Options{})
	got, err := sess.ReadFiles(ev.store, ev.user, "lake", "fact/").
		Filter(colfmt.Predicate{Column: "item_id", Op: vector.EQ, Value: vector.IntValue(55)}).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 1 {
		t.Fatalf("rows = %d", got.N)
	}
	// Footer stats pruned 9 of 10 data reads, so bytes read must be
	// roughly one file's worth.
	totalBytes := sess.Meter.Get("direct_bytes_read")
	if totalBytes == 0 {
		t.Fatal("no bytes metered")
	}
}

func TestReadAPIScanMatchesDirect(t *testing.T) {
	ev := newEnv(t)
	ev.loadFact(t, 3, 20)
	sess := NewSession(ev.clock, Options{})
	direct, err := sess.ReadFiles(ev.store, ev.user, "lake", "fact/").
		Filter(colfmt.Predicate{Column: "qty", Op: vector.EQ, Value: vector.IntValue(3)}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	api, err := sess.ReadBigLake(ev.srv, userP, "ds.fact").
		Filter(colfmt.Predicate{Column: "qty", Op: vector.EQ, Value: vector.IntValue(3)}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if direct.N != api.N {
		t.Fatalf("direct %d rows, read api %d", direct.N, api.N)
	}
}

func TestReadAPIEnforcesGovernanceDirectDoesNot(t *testing.T) {
	// §3.2's contrast: the Read API masks; a direct file read exposes
	// raw values to anyone with bucket access.
	ev := newEnv(t)
	ev.loadFact(t, 1, 10)
	ev.auth.SetColumnPolicy(adminP, "ds.fact", security.ColumnPolicy{
		Column: "qty", Allowed: map[security.Principal]bool{adminP: true}, Mask: vector.MaskHash,
	})
	sess := NewSession(ev.clock, Options{})
	api, err := sess.ReadBigLake(ev.srv, userP, "ds.fact").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(api.Column("qty").Value(0).S, "hash_") {
		t.Fatal("read api should mask qty")
	}
	direct, err := sess.ReadFiles(ev.store, ev.user, "lake", "fact/").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if direct.Column("qty").Value(0).AsInt() != 0 && direct.Column("qty").Value(0).Type != vector.Int64 {
		t.Fatal("direct read should see raw data")
	}
}

func TestProjection(t *testing.T) {
	ev := newEnv(t)
	ev.loadFact(t, 2, 10)
	sess := NewSession(ev.clock, Options{})
	got, err := sess.ReadBigLake(ev.srv, userP, "ds.fact").Select("qty").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Len() != 1 || got.Schema.Fields[0].Name != "qty" {
		t.Fatalf("schema = %v", got.Schema)
	}
}

func TestJoinCorrectness(t *testing.T) {
	ev := newEnv(t)
	ev.loadFact(t, 2, 50) // item_ids 0..99
	ev.loadDim(t, 10, 3)  // dim ids 0..9, 3 gold
	for _, stats := range []bool{false, true} {
		sess := NewSession(ev.clock, Options{UseSessionStats: stats, EnableDPP: stats})
		fact := sess.ReadBigLake(ev.srv, userP, "ds.fact")
		dim := sess.ReadBigLake(ev.srv, userP, "ds.dim").
			Filter(colfmt.Predicate{Column: "tier", Op: vector.EQ, Value: vector.StringValue("gold")})
		got, err := fact.Join(dim, "item_id", "id").Collect()
		if err != nil {
			t.Fatal(err)
		}
		if got.N != 3 {
			t.Fatalf("stats=%v join rows = %d, want 3", stats, got.N)
		}
		if got.Schema.Index("tier") < 0 || got.Schema.Index("qty") < 0 {
			t.Fatalf("schema = %v", got.Schema)
		}
	}
}

func TestDPPPrunesFactScan(t *testing.T) {
	ev := newEnv(t)
	ev.loadFact(t, 10, 100) // 10 files, ids 0..999
	ev.loadDim(t, 1000, 5)  // only ids 0..4 are gold

	run := func(opts Options) *sim.Meter {
		sess := NewSession(ev.clock, opts)
		fact := sess.ReadBigLake(ev.srv, userP, "ds.fact")
		dim := sess.ReadBigLake(ev.srv, userP, "ds.dim").
			Filter(colfmt.Predicate{Column: "tier", Op: vector.EQ, Value: vector.StringValue("gold")})
		got, err := fact.Join(dim, "item_id", "id").Collect()
		if err != nil {
			t.Fatal(err)
		}
		if got.N != 5 {
			t.Fatalf("join rows = %d", got.N)
		}
		return sess.Meter
	}
	blind := run(Options{})
	smart := run(Options{UseSessionStats: true, EnableDPP: true})
	if smart.Get("dpp_applied") == 0 {
		t.Fatal("DPP not applied")
	}
	// With DPP the fact side ships far fewer payload bytes.
	if smart.Get("readapi_bytes")*2 >= blind.Get("readapi_bytes") {
		t.Fatalf("DPP bytes %d should be <half of blind %d",
			smart.Get("readapi_bytes"), blind.Get("readapi_bytes"))
	}
}

func TestStatsSpeedUpJoinWallClock(t *testing.T) {
	// The E3 shape at unit scale: session statistics (join order +
	// DPP) cut simulated wall time.
	ev := newEnv(t)
	ev.loadFact(t, 12, 200)
	ev.loadDim(t, 2400, 4)

	measure := func(opts Options) sim.Clock {
		_ = opts
		return sim.Clock{}
	}
	_ = measure

	runTime := func(opts Options) (elapsed int64) {
		sess := NewSession(ev.clock, opts)
		before := ev.clock.Now()
		fact := sess.ReadBigLake(ev.srv, userP, "ds.fact")
		dim := sess.ReadBigLake(ev.srv, userP, "ds.dim").
			Filter(colfmt.Predicate{Column: "tier", Op: vector.EQ, Value: vector.StringValue("gold")})
		if _, err := fact.Join(dim, "item_id", "id").Collect(); err != nil {
			t.Fatal(err)
		}
		return int64(ev.clock.Now() - before)
	}
	blind := runTime(Options{})
	smart := runTime(Options{UseSessionStats: true, EnableDPP: true})
	if smart >= blind {
		t.Fatalf("stats-on time %d should beat stats-off %d", smart, blind)
	}
}

func TestGroupByAgg(t *testing.T) {
	ev := newEnv(t)
	ev.loadFact(t, 1, 21) // qty = item_id % 7
	sess := NewSession(ev.clock, Options{})
	got, err := sess.ReadBigLake(ev.srv, userP, "ds.fact").
		GroupBy("qty").
		Agg(AggSpec{Kind: vector.AggCount, Column: "item_id", As: "n"},
			AggSpec{Kind: vector.AggMax, Column: "item_id", As: "max_id"}).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 7 {
		t.Fatalf("groups = %d", got.N)
	}
	for i := 0; i < got.N; i++ {
		if got.Column("n").Value(i).AsInt() != 3 {
			t.Fatalf("group %v", got.Row(i))
		}
	}
}

func TestGlobalAgg(t *testing.T) {
	ev := newEnv(t)
	ev.loadFact(t, 1, 10)
	sess := NewSession(ev.clock, Options{})
	got, err := sess.ReadBigLake(ev.srv, userP, "ds.fact").
		GroupBy().
		Agg(AggSpec{Kind: vector.AggSum, Column: "item_id", As: "total"}).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 1 || got.Column("total").Value(0).AsInt() != 45 {
		t.Fatalf("total = %v", got.Row(0))
	}
}

func TestPlanErrors(t *testing.T) {
	ev := newEnv(t)
	ev.loadFact(t, 1, 5)
	sess := NewSession(ev.clock, Options{})
	if _, err := (&Frame{sess: sess}).Collect(); !errors.Is(err, ErrNoSource) {
		t.Fatalf("err = %v", err)
	}
	fact := sess.ReadBigLake(ev.srv, userP, "ds.fact")
	if _, err := fact.Join(fact, "ghost", "item_id").Collect(); !errors.Is(err, ErrPlan) {
		t.Fatalf("bad join key: %v", err)
	}
	if _, err := fact.GroupBy("ghost").Agg(AggSpec{Kind: vector.AggCount, Column: "item_id", As: "n"}).Collect(); !errors.Is(err, ErrPlan) {
		t.Fatalf("bad group key: %v", err)
	}
	if _, err := fact.GroupBy("qty").Agg(AggSpec{Kind: vector.AggCount, Column: "ghost", As: "n"}).Collect(); !errors.Is(err, ErrPlan) {
		t.Fatalf("bad agg column: %v", err)
	}
}

func TestReadAPIDeniedUser(t *testing.T) {
	ev := newEnv(t)
	ev.loadFact(t, 1, 5)
	sess := NewSession(ev.clock, Options{})
	_, err := sess.ReadBigLake(ev.srv, "evil@x", "ds.fact").Collect()
	if !errors.Is(err, security.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinDuplicateColumnNames(t *testing.T) {
	ev := newEnv(t)
	ev.loadFact(t, 1, 5)
	sess := NewSession(ev.clock, Options{})
	f := sess.ReadBigLake(ev.srv, userP, "ds.fact")
	got, err := f.Join(f, "item_id", "item_id").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Index("item_id") < 0 || got.Schema.Index("item_id_r") < 0 {
		t.Fatalf("schema = %v", got.Schema)
	}
}
