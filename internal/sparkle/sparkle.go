// Package sparkle implements "Sparkle", the open-source external
// analytics engine of the paper's Spark/Trino role (§3.2, §3.4, Figure
// 5). Sparkle executes DataFrame-style plans over two sources:
//
//   - a direct object-store source that lists the bucket, peeks at
//     file footers and reads data files itself (the "Spark directly
//     reading Parquet from GCS" baseline of §3.4), with the user's own
//     credential and no BigLake governance; and
//
//   - a Storage Read API connector (the Spark BigQuery Connector's
//     DataSourceV2 role): the driver creates a read session, executors
//     read the streams in parallel, and — when statistics are enabled —
//     the planner uses the session's Big Metadata statistics for join
//     reordering and dynamic partition pruning (§3.4).
//
// The governance contrast of §3.2 falls out of the sources: the direct
// source sees raw files, the Read API source only ever receives
// filtered, masked batches.
package sparkle

import (
	"errors"
	"fmt"
	"strings"

	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/storageapi"
	"biglake/internal/vector"
)

// Errors returned by Sparkle.
var (
	ErrNoSource = errors.New("sparkle: frame has no source")
	ErrPlan     = errors.New("sparkle: invalid plan")
)

// Executors is Sparkle's task parallelism.
const Executors = 8

// Options tunes the Sparkle planner.
type Options struct {
	// UseSessionStats lets the planner consume CreateReadSession
	// statistics (join reordering + smaller build sides).
	UseSessionStats bool
	// EnableDPP turns on dynamic partition pruning across joins.
	EnableDPP bool
}

// Session is a Sparkle driver session.
type Session struct {
	Clock *sim.Clock
	Meter *sim.Meter
	Opts  Options
}

// NewSession creates a driver session.
func NewSession(clock *sim.Clock, opts Options) *Session {
	return &Session{Clock: clock, Meter: &sim.Meter{}, Opts: opts}
}

// Frame is a lazily-evaluated relation.
type Frame struct {
	sess  *Session
	src   source
	preds []colfmt.Predicate
	cols  []string
	join  *joinNode
	agg   *aggNode
}

type joinNode struct {
	left, right *Frame
	leftKey     string
	rightKey    string
}

// AggSpec is one aggregate output.
type AggSpec struct {
	Kind   vector.AggKind
	Column string
	As     string
}

type aggNode struct {
	input *Frame
	keys  []string
	aggs  []AggSpec
}

// source produces batches for leaf frames.
type source interface {
	// scan reads with pushdown predicates and projection.
	scan(sess *Session, preds []colfmt.Predicate, cols []string) (*vector.Batch, error)
	// estimate returns a post-pruning row estimate if statistics are
	// available.
	estimate(sess *Session, preds []colfmt.Predicate) (int64, bool)
}

// --- direct object-store source (baseline) ---

type directSource struct {
	store  *objstore.Store
	cred   objstore.Credential
	bucket string
	prefix string
}

// ReadFiles opens a frame over raw columnar files in object storage —
// the engine's own scan path with the user's credential.
func (s *Session) ReadFiles(store *objstore.Store, cred objstore.Credential, bucket, prefix string) *Frame {
	return &Frame{sess: s, src: &directSource{store: store, cred: cred, bucket: bucket, prefix: prefix}}
}

func (d *directSource) estimate(sess *Session, preds []colfmt.Predicate) (int64, bool) {
	return 0, false // no metadata service: the baseline plans blind
}

func (d *directSource) scan(sess *Session, preds []colfmt.Predicate, cols []string) (*vector.Batch, error) {
	infos, err := d.store.ListAll(d.cred, d.bucket, d.prefix)
	if err != nil {
		return nil, err
	}
	sess.Meter.Add("direct_list_calls", 1)

	// Footer peek per file for skippability, then read survivors —
	// all on the query's critical path, in executor parallel tracks.
	tracks := make([]*sim.Track, Executors)
	for i := range tracks {
		tracks[i] = sess.Clock.StartTrack()
	}
	var out *vector.Batch
	for i, info := range infos {
		tr := tracks[i%Executors]
		head, herr := d.store.HeadOn(tr, d.cred, d.bucket, info.Key)
		if herr != nil {
			return nil, herr
		}
		off := head.Size - 64*1024
		if off < 0 {
			off = 0
		}
		tail, _, terr := d.store.GetRangeOn(tr, d.cred, d.bucket, info.Key, off, -1)
		if terr != nil {
			return nil, terr
		}
		footer, ferr := colfmt.ReadFooter(tail)
		if ferr != nil {
			full, _, gerr := d.store.GetOn(tr, d.cred, d.bucket, info.Key)
			if gerr != nil {
				return nil, gerr
			}
			if footer, ferr = colfmt.ReadFooter(full); ferr != nil {
				return nil, ferr
			}
		}
		sess.Meter.Add("direct_footer_reads", 1)
		skip := false
		for _, p := range preds {
			if st, ok := footer.ColumnStatsFor(p.Column); ok && !p.StatsCanSatisfy(st) {
				skip = true
			}
		}
		if skip {
			continue
		}
		data, _, gerr := d.store.GetOn(tr, d.cred, d.bucket, info.Key)
		if gerr != nil {
			return nil, gerr
		}
		sess.Meter.Add("direct_bytes_read", int64(len(data)))
		r, rerr := colfmt.NewVectorizedReader(data, cols, preds)
		if rerr != nil {
			return nil, rerr
		}
		b, rerr := r.ReadAll()
		if rerr != nil {
			return nil, rerr
		}
		out, err = vector.AppendBatch(out, b)
		if err != nil {
			return nil, err
		}
	}
	for _, tr := range tracks {
		tr.Join()
	}
	if out == nil {
		return nil, fmt.Errorf("sparkle: no files under %s/%s", d.bucket, d.prefix)
	}
	return out, nil
}

// --- Read API source (the connector) ---

type readAPISource struct {
	server    *storageapi.Server
	principal security.Principal
	table     string
	// keepEnc keeps dict/RLE on the wire (A4).
	keepEnc bool
}

// ReadBigLake opens a frame over a BigLake (or managed) table through
// the Storage Read API.
func (s *Session) ReadBigLake(server *storageapi.Server, principal security.Principal, table string) *Frame {
	return &Frame{sess: s, src: &readAPISource{server: server, principal: principal, table: table}}
}

func (r *readAPISource) session(sess *Session, preds []colfmt.Predicate, cols []string) (*storageapi.ReadSession, error) {
	return r.server.CreateReadSession(storageapi.ReadSessionRequest{
		Table:           r.table,
		Principal:       r.principal,
		Columns:         cols,
		Predicates:      preds,
		SnapshotVersion: -1,
		MaxStreams:      Executors,
		KeepEncodings:   r.keepEnc,
	})
}

func (r *readAPISource) estimate(sess *Session, preds []colfmt.Predicate) (int64, bool) {
	if !sess.Opts.UseSessionStats {
		return 0, false
	}
	rs, err := r.session(sess, preds, nil)
	if err != nil {
		return 0, false
	}
	// File pruning already shrank EstimatedRows; refine with a
	// selectivity heuristic from the Big Metadata column statistics
	// (equality predicates divide by the distinct count, ranges by 3).
	est := rs.EstimatedRows
	for _, p := range preds {
		switch p.Op {
		case vector.EQ:
			if st, ok := rs.Stats.ColumnStats[p.Column]; ok && st.Distinct > 1 {
				est /= st.Distinct
			}
		case vector.LT, vector.LE, vector.GT, vector.GE:
			est /= 3
		}
	}
	if est < 1 {
		est = 1
	}
	return est, true
}

func (r *readAPISource) scan(sess *Session, preds []colfmt.Predicate, cols []string) (*vector.Batch, error) {
	rs, err := r.session(sess, preds, cols)
	if err != nil {
		return nil, err
	}
	if !rs.Reused {
		sess.Meter.Add("read_sessions", 1)
	}
	// Executors read streams in parallel tracks.
	tracks := make([]*sim.Track, len(rs.Streams))
	for i := range tracks {
		tracks[i] = sess.Clock.StartTrack()
	}
	var out *vector.Batch
	for i, stream := range rs.Streams {
		for {
			payload, err := r.server.ReadRowsOn(tracks[i], rs.ID, stream)
			if errors.Is(err, storageapi.ErrEndOfStream) {
				break
			}
			if err != nil {
				return nil, err
			}
			sess.Meter.Add("readapi_bytes", int64(len(payload)))
			b, err := vector.DecodeBatch(payload)
			if err != nil {
				return nil, err
			}
			// Arrow-native ingestion: decode once, no row conversion.
			out, err = vector.AppendBatch(out, b)
			if err != nil {
				return nil, err
			}
		}
	}
	for _, tr := range tracks {
		tr.Join()
	}
	if out == nil {
		out = vector.EmptyBatch(rs.Schema)
	}
	return out, nil
}

// --- frame operations ---

// Filter adds a pushdown predicate.
func (f *Frame) Filter(p colfmt.Predicate) *Frame {
	out := *f
	out.preds = append(append([]colfmt.Predicate(nil), f.preds...), p)
	return &out
}

// Select projects columns.
func (f *Frame) Select(cols ...string) *Frame {
	out := *f
	out.cols = cols
	return &out
}

// Join equi-joins this frame with other on leftKey = rightKey.
func (f *Frame) Join(other *Frame, leftKey, rightKey string) *Frame {
	return &Frame{sess: f.sess, join: &joinNode{left: f, right: other, leftKey: leftKey, rightKey: rightKey}}
}

// GroupBy starts an aggregation.
func (f *Frame) GroupBy(keys ...string) *Grouped {
	return &Grouped{frame: f, keys: keys}
}

// Grouped is a pending aggregation.
type Grouped struct {
	frame *Frame
	keys  []string
}

// Agg finishes the aggregation plan.
func (g *Grouped) Agg(aggs ...AggSpec) *Frame {
	return &Frame{sess: g.frame.sess, agg: &aggNode{input: g.frame, keys: g.keys, aggs: aggs}}
}

// Collect executes the plan and materializes the result.
func (f *Frame) Collect() (*vector.Batch, error) {
	switch {
	case f.agg != nil:
		return f.collectAgg()
	case f.join != nil:
		return f.collectJoin()
	case f.src != nil:
		return f.src.scan(f.sess, f.preds, f.cols)
	}
	return nil, ErrNoSource
}

func (f *Frame) collectAgg() (*vector.Batch, error) {
	in, err := f.agg.input.Collect()
	if err != nil {
		return nil, err
	}
	type group struct {
		key  []vector.Value
		rows []int
	}
	groups := map[string]*group{}
	var order []string
	keyIdx := make([]int, len(f.agg.keys))
	for i, k := range f.agg.keys {
		keyIdx[i] = in.Schema.Index(k)
		if keyIdx[i] < 0 {
			return nil, fmt.Errorf("%w: group key %q not in %v", ErrPlan, k, in.Schema)
		}
	}
	for _, a := range f.agg.aggs {
		if in.Schema.Index(a.Column) < 0 {
			return nil, fmt.Errorf("%w: aggregate column %q not in %v", ErrPlan, a.Column, in.Schema)
		}
	}
	for r := 0; r < in.N; r++ {
		var sb strings.Builder
		key := make([]vector.Value, len(keyIdx))
		for i, ki := range keyIdx {
			key[i] = in.Cols[ki].Value(r)
			fmt.Fprintf(&sb, "%s|", key[i])
		}
		ks := sb.String()
		g, ok := groups[ks]
		if !ok {
			g = &group{key: key}
			groups[ks] = g
			order = append(order, ks)
		}
		g.rows = append(g.rows, r)
	}
	if len(f.agg.keys) == 0 && len(groups) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	fields := make([]vector.Field, 0, len(f.agg.keys)+len(f.agg.aggs))
	for i, k := range f.agg.keys {
		fields = append(fields, vector.Field{Name: k, Type: in.Schema.Fields[keyIdx[i]].Type})
	}
	for _, a := range f.agg.aggs {
		t := vector.Int64
		if a.Kind == vector.AggSum || a.Kind == vector.AggMin || a.Kind == vector.AggMax {
			if ci := in.Schema.Index(a.Column); ci >= 0 {
				t = in.Schema.Fields[ci].Type
			}
		}
		fields = append(fields, vector.Field{Name: a.As, Type: t})
	}
	builder := vector.NewBuilder(vector.Schema{Fields: fields})
	for _, ks := range order {
		g := groups[ks]
		row := make([]vector.Value, 0, len(fields))
		row = append(row, g.key...)
		mask := make([]bool, in.N)
		for _, r := range g.rows {
			mask[r] = true
		}
		for _, a := range f.agg.aggs {
			ci := in.Schema.Index(a.Column)
			if ci < 0 {
				return nil, fmt.Errorf("%w: aggregate column %q not in %v", ErrPlan, a.Column, in.Schema)
			}
			row = append(row, vector.Aggregate(in.Cols[ci], a.Kind, mask))
		}
		builder.Append(row...)
	}
	return builder.Build(), nil
}

// collectJoin executes the join tree left-deep. With session
// statistics on, the planner scans the estimated-smaller side first
// and (with DPP) pushes its key range into the other side's read
// session.
func (f *Frame) collectJoin() (*vector.Batch, error) {
	j := f.join
	leftEst, leftOK := estimateFrame(j.left)
	rightEst, rightOK := estimateFrame(j.right)
	statsOn := f.sess.Opts.UseSessionStats && leftOK && rightOK

	scanWithDPP := func(first, second *Frame, firstKey, secondKey string) (*vector.Batch, *vector.Batch, error) {
		fb, err := first.Collect()
		if err != nil {
			return nil, nil, err
		}
		sec := second
		if f.sess.Opts.EnableDPP {
			if ci := fb.Schema.Index(firstKey); ci >= 0 {
				min, max, _ := vector.MinMax(fb.Cols[ci])
				if !min.IsNull() {
					sec = sec.Filter(colfmt.Predicate{Column: secondKey, Op: vector.GE, Value: min})
					sec = sec.Filter(colfmt.Predicate{Column: secondKey, Op: vector.LE, Value: max})
					f.sess.Meter.Add("dpp_applied", 1)
				}
			}
		}
		sb, err := sec.Collect()
		if err != nil {
			return nil, nil, err
		}
		return fb, sb, nil
	}

	var lb, rb *vector.Batch
	var err error
	if statsOn && rightEst < leftEst {
		rb, lb, err = scanWithDPP(j.right, j.left, j.rightKey, j.leftKey)
	} else if statsOn {
		lb, rb, err = scanWithDPP(j.left, j.right, j.leftKey, j.rightKey)
	} else {
		// Blind plan: scan both fully, in written order, no DPP.
		lb, err = j.left.Collect()
		if err == nil {
			rb, err = j.right.Collect()
		}
	}
	if err != nil {
		return nil, err
	}

	// Hash join; build on the (estimated or actual) smaller side.
	build, probe, buildKey, probeKey := rb, lb, j.rightKey, j.leftKey
	swapped := false
	if statsOn && lb.N < rb.N {
		build, probe, buildKey, probeKey = lb, rb, j.leftKey, j.rightKey
		swapped = true
	}
	bi := build.Schema.Index(buildKey)
	pi := probe.Schema.Index(probeKey)
	if bi < 0 || pi < 0 {
		return nil, fmt.Errorf("%w: join keys %q/%q not found", ErrPlan, j.leftKey, j.rightKey)
	}
	ht := make(map[string][]int, build.N)
	bk := build.Cols[bi].Decode()
	for r := 0; r < build.N; r++ {
		v := bk.Value(r)
		if v.IsNull() {
			continue
		}
		ht[v.String()] = append(ht[v.String()], r)
	}
	var probeIdx, buildIdx []int
	pk := probe.Cols[pi].Decode()
	for r := 0; r < probe.N; r++ {
		v := pk.Value(r)
		if v.IsNull() {
			continue
		}
		for _, br := range ht[v.String()] {
			probeIdx = append(probeIdx, r)
			buildIdx = append(buildIdx, br)
		}
	}
	leftB, leftIdx, rightB, rightIdx := probe, probeIdx, build, buildIdx
	if swapped {
		leftB, leftIdx, rightB, rightIdx = build, buildIdx, probe, probeIdx
	}
	fields := append(append([]vector.Field(nil), leftB.Schema.Fields...), rightB.Schema.Fields...)
	// Disambiguate duplicate names from the right side.
	seen := map[string]bool{}
	for i := range fields {
		name := fields[i].Name
		for seen[name] {
			name = name + "_r"
		}
		seen[name] = true
		fields[i].Name = name
	}
	cols := make([]*vector.Column, 0, len(fields))
	for _, c := range leftB.Cols {
		cols = append(cols, vector.Gather(c, leftIdx))
	}
	for _, c := range rightB.Cols {
		cols = append(cols, vector.Gather(c, rightIdx))
	}
	return vector.NewBatch(vector.Schema{Fields: fields}, cols)
}

func estimateFrame(f *Frame) (int64, bool) {
	if f.src != nil {
		return f.src.estimate(f.sess, f.preds)
	}
	if f.join != nil {
		l, lok := estimateFrame(f.join.left)
		r, rok := estimateFrame(f.join.right)
		if lok && rok {
			if l > r {
				return l, true
			}
			return r, true
		}
	}
	return 0, false
}
