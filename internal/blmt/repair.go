package blmt

import (
	"fmt"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/integrity"
)

// ReplicaFetch returns a surviving replica's bytes for a quarantined
// file — a cross-cloud copy, a backup bucket, a re-export — or an
// error when no replica exists. The repair path verifies whatever it
// returns before trusting it.
type ReplicaFetch func(t catalog.Table, f bigmeta.FileEntry) ([]byte, error)

// RepairReport summarizes one repair pass over a table's quarantine.
type RepairReport struct {
	// Quarantined is how many files were quarantined when the pass
	// started.
	Quarantined int
	// Reverified counts files whose primary copy verified clean on
	// re-read — the quarantine was stale (e.g. in-flight corruption
	// that slipped past the query path's single re-fetch) and is
	// simply lifted.
	Reverified int
	// Rewritten counts files restored by writing a verified replica
	// copy and atomically swapping it into the snapshot.
	Rewritten int
	// Orphaned counts quarantine marks whose file is no longer in the
	// live snapshot; their marks are lifted without any data movement.
	Orphaned int
	// Failed lists keys that stayed quarantined: the primary is still
	// corrupt and no clean replica was available.
	Failed []string
}

// verifyRepairSource runs full verification over candidate bytes: the
// colfmt CRC walk. Generation pinning does not apply — a repair mints
// a fresh generation by design.
func verifyRepairSource(table string, f bigmeta.FileEntry, data []byte) error {
	return integrity.Annotate(colfmt.Verify(data), table, f.Bucket, f.Key)
}

// Repair walks a table's quarantined files and restores availability:
//
//  1. re-verify the primary copy — if it reads clean now, the mark is
//     lifted (sealed Unquarantine commit) with no data movement;
//  2. otherwise fetch a replica via fetch, verify its checksums, PUT
//     it at a fresh repair key, and commit Removed(old)+Added(new) so
//     the swap is atomic for readers (removing the old key also clears
//     its quarantine mark);
//  3. files with no clean source stay quarantined and are reported in
//     Failed.
//
// fetch may be nil, in which case only the re-verify fast path runs.
func (m *Manager) Repair(principal, table string, fetch ReplicaFetch) (RepairReport, error) {
	t, store, cred, err := m.managedTable(table)
	if err != nil {
		return RepairReport{}, err
	}
	marks := m.Log.Quarantined(table)
	rep := RepairReport{Quarantined: len(marks)}
	if len(marks) == 0 {
		return rep, nil
	}
	files, version, err := m.Log.Snapshot(table, -1)
	if err != nil {
		return rep, err
	}
	live := make(map[string]bigmeta.FileEntry, len(files))
	for _, f := range files {
		live[f.Key] = f
	}
	for i, mark := range marks {
		f, ok := live[mark.Key]
		if !ok {
			// The file left the snapshot (compacted away, deleted) while
			// quarantined; nothing to repair, just drop the mark.
			if _, err := m.Log.Commit(principal, map[string]bigmeta.TableDelta{
				table: {Unquarantine: []string{mark.Key}},
			}); err != nil {
				return rep, err
			}
			rep.Orphaned++
			m.Meter.Add("repair_orphan_unquarantined", 1)
			continue
		}

		// Fast path: the primary may read clean now.
		data, info, gerr := store.Get(cred, f.Bucket, f.Key)
		if gerr == nil &&
			(f.Generation == 0 || info.Generation == f.Generation) &&
			int64(len(data)) == info.Size &&
			colfmt.Verify(data) == nil {
			if _, err := m.Log.Commit(principal, map[string]bigmeta.TableDelta{
				table: {Unquarantine: []string{mark.Key}},
			}); err != nil {
				return rep, err
			}
			rep.Reverified++
			m.Meter.Add("repair_reverified", 1)
			continue
		}

		if fetch == nil {
			rep.Failed = append(rep.Failed, mark.Key)
			m.Meter.Add("repair_failed", 1)
			continue
		}
		replica, ferr := fetch(t, f)
		if ferr != nil {
			rep.Failed = append(rep.Failed, mark.Key)
			m.Meter.Add("repair_failed", 1)
			continue
		}
		if verr := verifyRepairSource(table, f, replica); verr != nil {
			// The replica is rotten too — never swap in unverified bytes.
			rep.Failed = append(rep.Failed, mark.Key)
			m.Meter.Add("repair_replica_corrupt", 1)
			continue
		}
		key := fmt.Sprintf("%sdata/repair-v%06d-%03d.blk", t.Prefix, version, i)
		var entry bigmeta.FileEntry
		if err := m.Res.Do(m.Clock, nil, "PUT "+t.Bucket+"/"+key, func() error {
			pinfo, pe := store.Put(cred, t.Bucket, key, replica, "application/x-blk")
			if pe != nil {
				return pe
			}
			footer, fe := colfmt.ReadFooter(replica)
			if fe != nil {
				return fe
			}
			stats := make(map[string]colfmt.ColumnStats)
			for _, fld := range footer.Fields {
				if st, ok := footer.ColumnStatsFor(fld.Name); ok {
					stats[fld.Name] = st
				}
			}
			entry = bigmeta.FileEntry{
				Bucket: t.Bucket, Key: key, Size: pinfo.Size,
				Generation: pinfo.Generation,
				RowCount:   footer.Rows, ColumnStats: stats,
				Partition: f.Partition,
			}
			return nil
		}); err != nil {
			return rep, err
		}
		// One sealed commit swaps the rotten file for the restored copy;
		// Removed clears the quarantine mark as part of the same commit.
		if _, err := m.Log.Commit(principal, map[string]bigmeta.TableDelta{
			table: {Removed: []string{mark.Key}, Added: []bigmeta.FileEntry{entry}},
		}); err != nil {
			return rep, err
		}
		rep.Rewritten++
		m.Meter.Add("repair_rewritten", 1)
	}
	return rep, nil
}
