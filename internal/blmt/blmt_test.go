package blmt

import (
	"errors"
	"strings"
	"testing"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/iceberg"
	"biglake/internal/objstore"
	"biglake/internal/resilience"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

const adminP = security.Principal("admin@corp")

type env struct {
	clock *sim.Clock
	store *objstore.Store
	cat   *catalog.Catalog
	auth  *security.Authority
	log   *bigmeta.Log
	mgr   *Manager
	eng   *engine.Engine
	cred  objstore.Credential
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa@corp"}
	if err := store.CreateBucket(cred, "customer-bucket"); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	cat.CreateDataset(catalog.Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"})
	auth := security.NewAuthority("secret", adminP)
	auth.RegisterConnection(adminP, security.Connection{Name: "conn", ServiceAccount: cred, Cloud: "gcp"})
	log := bigmeta.NewLog(clock, nil)
	stores := map[string]*objstore.Store{"gcp": store}
	mgr := New(cat, auth, log, clock, stores)
	mgr.DefaultCloud, mgr.DefaultBucket, mgr.DefaultConnection = "gcp", "customer-bucket", "conn"
	meta := bigmeta.NewCache(clock, nil)
	eng := engine.New(cat, auth, meta, log, clock, stores, engine.DefaultOptions())
	eng.ManagedCred = cred
	eng.SetMutator(mgr)
	return &env{clock: clock, store: store, cat: cat, auth: auth, log: log, mgr: mgr, eng: eng, cred: cred}
}

func eventsSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "kind", Type: vector.String},
		vector.Field{Name: "value", Type: vector.Float64},
	)
}

func (ev *env) createEvents(t *testing.T) {
	t.Helper()
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "events", Type: catalog.Managed, Schema: eventsSchema(),
		Cloud: "gcp", Bucket: "customer-bucket", Prefix: "blmt/ds/events/", Connection: "conn",
	}); err != nil {
		t.Fatal(err)
	}
}

func (ev *env) sql(t *testing.T, q string) *engine.Result {
	t.Helper()
	res, err := ev.eng.Query(engine.NewContext(adminP, "q"), q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return res
}

func TestInsertAndQuery(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'click', 0.5), (2, 'view', 1.5)")
	res := ev.sql(t, "SELECT id, kind FROM ds.events ORDER BY id")
	if res.Batch.N != 2 || res.Batch.Row(0)[1].S != "click" {
		t.Fatalf("rows = %d %v", res.Batch.N, res.Batch.Row(0))
	}
	// Data files live on the customer bucket.
	if n := ev.store.ObjectCount("customer-bucket", "blmt/ds/events/data/"); n != 1 {
		t.Fatalf("data files = %d", n)
	}
}

func TestDeleteDML(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'click', 0.5), (2, 'view', 1.5), (3, 'click', 2.5)")
	res := ev.sql(t, "DELETE FROM ds.events WHERE kind = 'click'")
	if res.Batch.Column("rows_deleted").Value(0).AsInt() != 2 {
		t.Fatalf("deleted = %v", res.Batch.Row(0))
	}
	rest := ev.sql(t, "SELECT id FROM ds.events")
	if rest.Batch.N != 1 || rest.Batch.Column("id").Value(0).AsInt() != 2 {
		t.Fatalf("rest = %d", rest.Batch.N)
	}
}

func TestDeleteNoMatchIsNoop(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'click', 0.5)")
	before := ev.log.Version()
	res := ev.sql(t, "DELETE FROM ds.events WHERE id = 999")
	if res.Batch.Column("rows_deleted").Value(0).AsInt() != 0 {
		t.Fatal("deleted should be 0")
	}
	if ev.log.Version() != before {
		t.Fatal("no-op delete must not commit")
	}
}

func TestUpdateDML(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'click', 0.5), (2, 'view', 1.5)")
	res := ev.sql(t, "UPDATE ds.events SET value = value * 10 WHERE kind = 'click'")
	if res.Batch.Column("rows_updated").Value(0).AsInt() != 1 {
		t.Fatalf("updated = %v", res.Batch.Row(0))
	}
	check := ev.sql(t, "SELECT value FROM ds.events ORDER BY id")
	if check.Batch.Column("value").Value(0).AsFloat() != 5.0 {
		t.Fatalf("updated value = %v", check.Batch.Row(0))
	}
	if check.Batch.Column("value").Value(1).AsFloat() != 1.5 {
		t.Fatal("unmatched row changed")
	}
}

func TestCreateTableAs(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'click', 0.5), (2, 'view', 1.5)")
	ev.sql(t, "CREATE TABLE ds.clicks AS SELECT id, value FROM ds.events WHERE kind = 'click'")
	res := ev.sql(t, "SELECT * FROM ds.clicks")
	if res.Batch.N != 1 || res.Batch.Column("id").Value(0).AsInt() != 1 {
		t.Fatalf("ctas rows = %d", res.Batch.N)
	}
	// Plain CREATE on an existing table fails; OR REPLACE succeeds.
	if _, err := ev.eng.Query(engine.NewContext(adminP, "q"), "CREATE TABLE ds.clicks AS SELECT 1 AS one"); !errors.Is(err, catalog.ErrAlreadyExists) {
		t.Fatalf("dup ctas: %v", err)
	}
	ev.sql(t, "CREATE OR REPLACE TABLE ds.clicks AS SELECT 42 AS answer")
	res = ev.sql(t, "SELECT answer FROM ds.clicks")
	if res.Batch.Column("answer").Value(0).AsInt() != 42 {
		t.Fatal("replace lost")
	}
}

func TestDMLRequiresManagedTable(t *testing.T) {
	ev := newEnv(t)
	ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "ext", Type: catalog.BigLake, Schema: eventsSchema(),
		Cloud: "gcp", Bucket: "customer-bucket", Prefix: "ext/", Connection: "conn",
	})
	_, err := ev.eng.Query(engine.NewContext(adminP, "q"), "DELETE FROM ds.ext")
	if !errors.Is(err, ErrNotManaged) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertSchemaMismatch(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	// Wrong type for kind.
	_, err := ev.eng.Query(engine.NewContext(adminP, "q"), "INSERT INTO ds.events (id, kind) VALUES (1, 2)")
	if err == nil {
		t.Fatal("type mismatch should fail")
	}
	// Partial column list: missing columns become NULL.
	ev.sql(t, "INSERT INTO ds.events (id, kind) VALUES (7, 'x')")
	res := ev.sql(t, "SELECT value FROM ds.events")
	if !res.Batch.Column("value").Value(0).IsNull() {
		t.Fatal("missing column should be NULL")
	}
}

func TestOptimizeCoalescesSmallFiles(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	// Many small inserts -> many small files.
	for i := 0; i < 10; i++ {
		ev.sql(t, "INSERT INTO ds.events VALUES (1, 'k', 1.0)")
	}
	files, _, _ := ev.log.Snapshot("ds.events", -1)
	if len(files) != 10 {
		t.Fatalf("files before = %d", len(files))
	}
	rep, err := ev.mgr.Optimize(string(adminP), "ds.events", "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesAfter >= rep.FilesBefore || rep.FilesAfter != 1 {
		t.Fatalf("report = %+v", rep)
	}
	res := ev.sql(t, "SELECT COUNT(*) AS n FROM ds.events")
	if res.Batch.Column("n").Value(0).AsInt() != 10 {
		t.Fatal("optimize lost rows")
	}
}

func TestOptimizeRecluster(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (3, 'c', 1.0), (1, 'a', 1.0)")
	ev.sql(t, "INSERT INTO ds.events VALUES (2, 'b', 1.0)")
	rep, err := ev.mgr.Optimize(string(adminP), "ds.events", "id")
	if err != nil || !rep.Reclustered {
		t.Fatalf("recluster: %+v %v", rep, err)
	}
	res := ev.sql(t, "SELECT id FROM ds.events")
	// After clustering, rows come back id-sorted even without ORDER BY.
	for i := 0; i < res.Batch.N; i++ {
		if res.Batch.Column("id").Value(i).AsInt() != int64(i+1) {
			t.Fatalf("row %d = %v (not clustered)", i, res.Batch.Row(i))
		}
	}
}

func TestGarbageCollect(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'a', 1.0)")
	ev.sql(t, "INSERT INTO ds.events VALUES (2, 'b', 1.0)")
	// DELETE rewrites files, leaving the old objects as garbage.
	ev.sql(t, "DELETE FROM ds.events WHERE id = 1")
	objects := ev.store.ObjectCount("customer-bucket", "blmt/ds/events/data/")
	live, _, _ := ev.log.Snapshot("ds.events", -1)
	if objects <= len(live) {
		t.Fatalf("expected garbage: %d objects, %d live", objects, len(live))
	}
	// Too-young garbage is kept.
	n, err := ev.mgr.GarbageCollect("ds.events", time.Hour)
	if err != nil || n != 0 {
		t.Fatalf("young gc: %d %v", n, err)
	}
	ev.clock.Advance(2 * time.Hour)
	n, err = ev.mgr.GarbageCollect("ds.events", time.Hour)
	if err != nil || n == 0 {
		t.Fatalf("gc: %d %v", n, err)
	}
	if got := ev.store.ObjectCount("customer-bucket", "blmt/ds/events/data/"); got != len(live) {
		t.Fatalf("after gc: %d objects, want %d", got, len(live))
	}
	// Queries still work.
	res := ev.sql(t, "SELECT COUNT(*) AS n FROM ds.events")
	if res.Batch.Column("n").Value(0).AsInt() != 1 {
		t.Fatal("gc broke the table")
	}
}

func TestIcebergExportRoundTrip(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
	ev.sql(t, "INSERT INTO ds.events VALUES (3, 'c', 3.0)")
	metaKey, err := ev.mgr.ExportIceberg("ds.events")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metaKey, "metadata.json") {
		t.Fatalf("metaKey = %q", metaKey)
	}
	// An external engine reads the snapshot directly from storage.
	files, schema, err := iceberg.ReadTable(ev.store, ev.cred, "customer-bucket", metaKey)
	if err != nil {
		t.Fatal(err)
	}
	fc, rc := iceberg.Stats(files)
	if fc != 2 || rc != 3 {
		t.Fatalf("snapshot stats = %d files %d rows", fc, rc)
	}
	if schema.Index("kind") < 0 {
		t.Fatalf("schema = %v", schema)
	}
	if files[0].LowerBounds["id"] == "" {
		t.Fatal("bounds missing from manifest")
	}
	// version-hint discovery.
	hint, err := iceberg.LatestMetadataKey(ev.store, ev.cred, "customer-bucket", "blmt/ds/events/")
	if err != nil || hint != metaKey {
		t.Fatalf("hint = %q, %v", hint, err)
	}
}

func TestAutoIcebergOnCommit(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	ev.mgr.AutoIceberg = true
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'a', 1.0)")
	if n := ev.store.ObjectCount("customer-bucket", "blmt/ds/events/metadata/"); n == 0 {
		t.Fatal("auto iceberg export did not run")
	}
}

func TestSnapshotTimeTravelAfterDML(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
	v1 := ev.log.Version()
	ev.sql(t, "DELETE FROM ds.events WHERE id = 1")
	old, _, err := ev.log.Snapshot("ds.events", v1)
	if err != nil {
		t.Fatal(err)
	}
	var oldRows int64
	for _, f := range old {
		oldRows += f.RowCount
	}
	if oldRows != 2 {
		t.Fatalf("snapshot@v1 rows = %d", oldRows)
	}
}

func TestTamperProofHistory(t *testing.T) {
	ev := newEnv(t)
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'a', 1.0)")
	ev.sql(t, "DELETE FROM ds.events WHERE id = 1")
	hist := ev.log.History("ds.events")
	if len(hist) != 2 {
		t.Fatalf("history = %d", len(hist))
	}
	if hist[0].Principal != string(adminP) {
		t.Fatalf("audit principal = %q", hist[0].Principal)
	}
	// Versions are strictly increasing.
	if hist[1].Version <= hist[0].Version {
		t.Fatal("versions not monotonic")
	}
}

func TestCommitThroughputExceedsIcebergOnObjectStore(t *testing.T) {
	// The §3.5 comparison at test scale: 20 BLMT inserts vs 20
	// store-committed snapshots of an Iceberg-style table.
	ev := newEnv(t)
	ev.createEvents(t)
	start := ev.clock.Now()
	for i := 0; i < 20; i++ {
		ev.sql(t, "INSERT INTO ds.events VALUES (1, 'a', 1.0)")
	}
	blmtTime := ev.clock.Now() - start

	// Iceberg-on-object-store: each commit must CAS the metadata
	// pointer object.
	gen := int64(0)
	start = ev.clock.Now()
	for i := 0; i < 20; i++ {
		info, err := ev.store.PutIfGeneration(ev.cred, "customer-bucket", "iceberg-table/metadata.json", []byte("snap"), "", gen)
		if err != nil {
			t.Fatal(err)
		}
		gen = info.Generation
	}
	storeTime := ev.clock.Now() - start
	if blmtTime*2 >= storeTime {
		t.Fatalf("BLMT commits %v should be well under store-committed %v", blmtTime, storeTime)
	}
}

func TestFailedInsertLeavesNoPartialState(t *testing.T) {
	ev := newEnv(t)
	ev.mgr.Res = resilience.NoRetry() // surface the raw fault
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'a', 1.0)")
	versionBefore := ev.log.Version()

	ev.store.FailNext(1) // the data-file PUT fails
	if _, err := ev.eng.Query(engine.NewContext(adminP, "q"),
		"INSERT INTO ds.events VALUES (2, 'b', 2.0)"); !errors.Is(err, objstore.ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	if ev.log.Version() != versionBefore {
		t.Fatal("failed insert must not commit")
	}
	res := ev.sql(t, "SELECT COUNT(*) AS n FROM ds.events")
	if res.Batch.Column("n").Value(0).AsInt() != 1 {
		t.Fatal("table corrupted by failed insert")
	}
	// Retry succeeds.
	ev.sql(t, "INSERT INTO ds.events VALUES (2, 'b', 2.0)")
	res = ev.sql(t, "SELECT COUNT(*) AS n FROM ds.events")
	if res.Batch.Column("n").Value(0).AsInt() != 2 {
		t.Fatal("retry failed")
	}
}

func TestFailedDeleteLeavesTableReadable(t *testing.T) {
	ev := newEnv(t)
	ev.mgr.Res = resilience.NoRetry() // surface the raw fault
	ev.createEvents(t)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
	ev.store.FailNext(1) // reading the file back fails mid-rewrite
	if _, err := ev.eng.Query(engine.NewContext(adminP, "q"), "DELETE FROM ds.events WHERE id = 1"); !errors.Is(err, objstore.ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	res := ev.sql(t, "SELECT COUNT(*) AS n FROM ds.events")
	if res.Batch.Column("n").Value(0).AsInt() != 2 {
		t.Fatal("failed delete mutated the table")
	}
}

func TestRetriesAbsorbTransientInsertFault(t *testing.T) {
	// Under the default policy the same single PUT fault never reaches
	// the caller: the write retries and commits.
	ev := newEnv(t)
	ev.createEvents(t)
	ev.store.FailNext(1)
	ev.sql(t, "INSERT INTO ds.events VALUES (1, 'a', 1.0)")
	res := ev.sql(t, "SELECT COUNT(*) AS n FROM ds.events")
	if res.Batch.Column("n").Value(0).AsInt() != 1 {
		t.Fatal("insert did not survive the transient fault")
	}
	if ev.mgr.Meter.Get("retries") == 0 {
		t.Fatal("expected a metered retry")
	}
}
