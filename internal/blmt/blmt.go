// Package blmt implements BigLake Managed Tables (§3.5): fully managed
// tables storing open-format data files on customer-owned buckets
// while keeping metadata in the Big Metadata transaction log. BLMTs
// support DML (through the engine's Mutator interface), streaming
// ingest (via the Write API, which commits to the same log),
// background storage optimization — adaptive file sizing, clustering,
// coalescing, and garbage collection — and Iceberg snapshot export so
// any Iceberg-capable engine can query the data directly.
package blmt

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/crashpoint"
	"biglake/internal/engine"
	"biglake/internal/iceberg"
	"biglake/internal/objstore"
	"biglake/internal/resilience"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/vector"
	"biglake/internal/wal"
)

// ErrNotManaged reports DML against a non-managed table.
var ErrNotManaged = errors.New("blmt: table is not managed")

// TargetFileBytes is the adaptive-file-sizing target: background
// coalescing merges files until they approach this size.
const TargetFileBytes = 4 * sim.MB

// Manager owns the managed-table lifecycle for one deployment and
// implements engine.Mutator.
type Manager struct {
	Catalog *catalog.Catalog
	Auth    *security.Authority
	Log     *bigmeta.Log
	Clock   *sim.Clock
	Stores  map[string]*objstore.Store

	// CTAS defaults: where CREATE TABLE AS SELECT materializes new
	// managed tables.
	DefaultCloud      string
	DefaultBucket     string
	DefaultConnection string

	// AutoIceberg exports an Iceberg snapshot asynchronously after
	// every commit (the §3.5 "future" behaviour, implemented).
	AutoIceberg bool

	// Res is the retry policy for data-file reads/writes and the
	// Iceberg export commit CAS. Nil behaves like resilience.NoRetry.
	Res *resilience.Policy
	// Meter records the manager's retry/fault counters.
	Meter *sim.Meter

	// Journal, when set, opens a durable intent before every DML /
	// compaction transaction's data-file PUTs, so a crash mid-protocol
	// leaves reclaimable debris instead of invisible orphans. The same
	// journal must be attached to Log as its commit sink.
	Journal *wal.Journal
	// Crash marks the DML/compaction/export crash points (nil = none).
	Crash *crashpoint.Injector

	seq int64
}

// dmlTxn derives the idempotency ID for one DML operation of one
// query. The envelope only exists under a durable journal — without
// one there is nothing for a recovered process to replay against, and
// treating a reused query ID as a replay would surprise callers that
// never opted into journaling. Queries without an ID likewise get no
// envelope (and no crash-exactly-once guarantee); their commits are
// still journaled.
func (m *Manager) dmlTxn(queryID, op, table string) string {
	if m.Journal == nil || queryID == "" {
		return ""
	}
	return fmt.Sprintf("q-%s-%s-%s", queryID, op, table)
}

// sanitizeTxn makes a txn ID usable inside an object key.
func sanitizeTxn(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c == '/' || c == ':' {
			out[i] = '-'
		}
	}
	return string(out)
}

// txDataKey is the deterministic key of the idx-th data file a
// transaction writes. Retried transactions re-mint identical keys and
// overwrite their crashed predecessor's files instead of stranding
// them; keys never derive from in-memory counters, which reset across
// recovery.
func txDataKey(t catalog.Table, txnID string, idx int) string {
	return fmt.Sprintf("%sdata/%s-%06d.blk", t.Prefix, sanitizeTxn(txnID), idx)
}

// intent durably declares a transaction's data-file keys before any
// PUT. No-op without a journal or txn ID.
func (m *Manager) intent(txnID, principal string, keys []string) (int64, error) {
	if m.Journal == nil || txnID == "" {
		return 0, nil
	}
	return m.Journal.AppendIntent(txnID, principal, keys)
}

var _ engine.Mutator = (*Manager)(nil)

// New assembles a Manager.
func New(cat *catalog.Catalog, auth *security.Authority, log *bigmeta.Log, clock *sim.Clock, stores map[string]*objstore.Store) *Manager {
	meter := &sim.Meter{}
	res := resilience.DefaultPolicy()
	res.Meter = meter
	return &Manager{Catalog: cat, Auth: auth, Log: log, Clock: clock, Stores: stores, Res: res, Meter: meter}
}

func (m *Manager) store(cloud string) (*objstore.Store, error) {
	st, ok := m.Stores[cloud]
	if !ok {
		return nil, fmt.Errorf("blmt: no object store for cloud %q", cloud)
	}
	return st, nil
}

func (m *Manager) credFor(t catalog.Table) (objstore.Credential, error) {
	conn, err := m.Auth.Connection(t.Connection)
	if err != nil {
		return objstore.Credential{}, err
	}
	return conn.ServiceAccount, nil
}

func (m *Manager) managedTable(name string) (catalog.Table, *objstore.Store, objstore.Credential, error) {
	t, err := m.Catalog.Table(name)
	if err != nil {
		return catalog.Table{}, nil, objstore.Credential{}, err
	}
	if t.Type != catalog.Managed && t.Type != catalog.Native {
		return catalog.Table{}, nil, objstore.Credential{}, fmt.Errorf("%w: %s is %v", ErrNotManaged, name, t.Type)
	}
	store, err := m.store(t.Cloud)
	if err != nil {
		return catalog.Table{}, nil, objstore.Credential{}, err
	}
	cred, err := m.credFor(t)
	if err != nil {
		return catalog.Table{}, nil, objstore.Credential{}, err
	}
	return t, store, cred, nil
}

// writeDataFile materializes a batch as one data file and returns its
// metadata entry. The PUT retries under the manager's policy against
// bud (nil = no per-query budget).
func (m *Manager) writeDataFile(t catalog.Table, store *objstore.Store, cred objstore.Credential, bud *resilience.Budget, rows *vector.Batch, tag string) (bigmeta.FileEntry, error) {
	m.seq++
	key := fmt.Sprintf("%sdata/%s-%06d.blk", t.Prefix, tag, m.seq)
	return m.writeDataFileAt(t, store, cred, bud, rows, key)
}

// writeDataFileAt is writeDataFile with an explicit (deterministic)
// key — the crash-consistent path, bracketed by blmt.before_put /
// blmt.after_put crash points.
func (m *Manager) writeDataFileAt(t catalog.Table, store *objstore.Store, cred objstore.Credential, bud *resilience.Budget, rows *vector.Batch, key string) (bigmeta.FileEntry, error) {
	file, err := colfmt.WriteFile(rows, colfmt.WriterOptions{})
	if err != nil {
		return bigmeta.FileEntry{}, err
	}
	m.Crash.At("blmt.before_put")
	var info objstore.ObjectInfo
	if err := m.Res.Do(m.Clock, bud, "PUT "+t.Bucket+"/"+key, func() error {
		var pe error
		info, pe = store.Put(cred, t.Bucket, key, file, "application/x-blk")
		return pe
	}); err != nil {
		return bigmeta.FileEntry{}, err
	}
	m.Crash.At("blmt.after_put")
	footer, err := colfmt.ReadFooter(file)
	if err != nil {
		return bigmeta.FileEntry{}, err
	}
	stats := make(map[string]colfmt.ColumnStats)
	for _, f := range footer.Fields {
		if st, ok := footer.ColumnStatsFor(f.Name); ok {
			stats[f.Name] = st
		}
	}
	return bigmeta.FileEntry{
		Bucket: t.Bucket, Key: key, Size: info.Size,
		Generation: info.Generation,
		RowCount:   footer.Rows, ColumnStats: stats,
	}, nil
}

func (m *Manager) commit(principal string, table string, tx bigmeta.TxOptions, delta bigmeta.TableDelta, t catalog.Table) error {
	if _, err := m.Log.CommitTx(principal, tx, map[string]bigmeta.TableDelta{table: delta}); err != nil {
		return err
	}
	m.Crash.At("blmt.after_commit")
	if m.AutoIceberg && t.Type == catalog.Managed {
		// The export publishes *after* the sealed log commit, so the
		// version hint only ever points at sealed versions; a crash
		// anywhere in here leaves a stale hint that the recovery
		// re-export converges.
		if _, err := m.ExportIceberg(table); err != nil {
			return fmt.Errorf("blmt: auto iceberg export: %w", err)
		}
	}
	return nil
}

// Insert appends rows to a managed table (engine.Mutator). The
// protocol is crash-consistent: durable intent → data PUT at a
// txn-derived key → sealed commit; a replay of an already-sealed
// insert (same query ID) is an exact no-op.
func (m *Manager) Insert(ctx *engine.QueryContext, table string, rows *vector.Batch) error {
	t, store, cred, err := m.managedTable(table)
	if err != nil {
		return err
	}
	txnID := m.dmlTxn(ctx.QueryID, "ins", table)
	if _, done := m.Log.AppliedTx(txnID); done {
		return nil
	}
	// Align inserted columns with the declared schema (missing
	// columns become NULL).
	aligned, err := AlignToSchema(rows, t.Schema)
	if err != nil {
		return err
	}
	var entry bigmeta.FileEntry
	var intentSeq int64
	if txnID != "" {
		key := txDataKey(t, txnID, 0)
		if intentSeq, err = m.intent(txnID, string(ctx.Principal), []string{key}); err != nil {
			return err
		}
		entry, err = m.writeDataFileAt(t, store, cred, ctx.Budget, aligned, key)
	} else {
		entry, err = m.writeDataFile(t, store, cred, ctx.Budget, aligned, "insert")
	}
	if err != nil {
		return err
	}
	return m.commit(string(ctx.Principal), table,
		bigmeta.TxOptions{TxnID: txnID, IntentSeq: intentSeq},
		bigmeta.TableDelta{Added: []bigmeta.FileEntry{entry}}, t)
}

// AlignToSchema aligns a batch's columns with a declared table schema:
// matching columns are type-checked, missing columns become all-NULL.
// Shared with internal/txn, whose buffered writes must align exactly
// like a direct insert.
func AlignToSchema(rows *vector.Batch, schema vector.Schema) (*vector.Batch, error) {
	if rows.Schema.Equal(schema) {
		return rows, nil
	}
	cols := make([]*vector.Column, schema.Len())
	for i, f := range schema.Fields {
		if j := rows.Schema.Index(f.Name); j >= 0 {
			c := rows.Cols[j]
			if c.Type != f.Type {
				return nil, fmt.Errorf("blmt: column %q type %v != declared %v", f.Name, c.Type, f.Type)
			}
			cols[i] = c
			continue
		}
		// Missing column: all NULL.
		null := &vector.Column{Type: f.Type, Len: rows.N, Enc: vector.Plain, Nulls: make([]bool, rows.N)}
		for k := range null.Nulls {
			null.Nulls[k] = true
		}
		switch f.Type {
		case vector.Int64, vector.Timestamp:
			null.Ints = make([]int64, rows.N)
		case vector.Float64:
			null.Floats = make([]float64, rows.N)
		case vector.Bool:
			null.Bools = make([]bool, rows.N)
		case vector.String, vector.Bytes:
			null.Strs = make([]string, rows.N)
		}
		cols[i] = null
	}
	return vector.NewBatch(schema, cols)
}

// rewrite applies a per-file transform: files whose transform returns
// a nil batch are dropped; non-nil batches replace the file
// (copy-on-write DML).
func (m *Manager) rewrite(ctx *engine.QueryContext, table, tag string, transform func(*vector.Batch) (*vector.Batch, bool, error)) (int64, error) {
	t, store, cred, err := m.managedTable(table)
	if err != nil {
		return 0, err
	}
	txnID := m.dmlTxn(ctx.QueryID, tag, table)
	if _, done := m.Log.AppliedTx(txnID); done {
		// A crashed predecessor sealed this DML; re-running the (often
		// non-idempotent) transform would double-apply it.
		return 0, nil
	}
	files, _, err := m.Log.Snapshot(table, -1)
	if err != nil {
		return 0, err
	}
	// Phase 1 — read and transform everything before writing anything,
	// so the full set of output keys is known for the journal intent.
	var delta bigmeta.TableDelta
	var outs []*vector.Batch
	var affected int64
	for _, f := range files {
		var data []byte
		if err := m.Res.Do(m.Clock, ctx.Budget, "GET "+f.Bucket+"/"+f.Key, func() error {
			var ge error
			data, _, ge = store.Get(cred, f.Bucket, f.Key)
			return ge
		}); err != nil {
			return 0, err
		}
		r, err := colfmt.NewVectorizedReader(data, nil, nil)
		if err != nil {
			return 0, err
		}
		batch, err := r.ReadAll()
		if err != nil {
			return 0, err
		}
		out, changed, err := transform(batch)
		if err != nil {
			return 0, err
		}
		if !changed {
			continue
		}
		affected += int64(batch.N)
		if out != nil {
			affected -= int64(out.N)
		}
		delta.Removed = append(delta.Removed, f.Key)
		if out != nil && out.N > 0 {
			outs = append(outs, out)
		}
	}
	if len(delta.Removed) == 0 && len(outs) == 0 {
		return 0, nil
	}
	// Phase 2 — declare every output key durably, then PUT at those
	// deterministic keys (a retry overwrites its crashed predecessor).
	var keys []string
	if txnID != "" {
		for i := range outs {
			keys = append(keys, txDataKey(t, txnID, i))
		}
	}
	intentSeq, err := m.intent(txnID, string(ctx.Principal), keys)
	if err != nil {
		return 0, err
	}
	for i, out := range outs {
		var entry bigmeta.FileEntry
		if txnID != "" {
			entry, err = m.writeDataFileAt(t, store, cred, ctx.Budget, out, keys[i])
		} else {
			entry, err = m.writeDataFile(t, store, cred, ctx.Budget, out, tag)
		}
		if err != nil {
			return 0, err
		}
		delta.Added = append(delta.Added, entry)
	}
	// Phase 3 — one sealed commit swaps old files for new atomically.
	if err := m.commit(string(ctx.Principal), table,
		bigmeta.TxOptions{TxnID: txnID, IntentSeq: intentSeq}, delta, t); err != nil {
		return 0, err
	}
	return affected, nil
}

// Delete removes rows matching where (engine.Mutator).
func (m *Manager) Delete(ctx *engine.QueryContext, table string, where func(*vector.Batch) ([]bool, error)) (int64, error) {
	return m.rewrite(ctx, table, "delete", func(b *vector.Batch) (*vector.Batch, bool, error) {
		mask, err := where(b)
		if err != nil {
			return nil, false, err
		}
		n := vector.CountMask(mask)
		if n == 0 {
			return nil, false, nil
		}
		kept, err := vector.Filter(b, vector.Not(mask))
		if err != nil {
			return nil, false, err
		}
		return kept, true, nil
	})
}

// Update rewrites rows matching where with set applied
// (engine.Mutator).
func (m *Manager) Update(ctx *engine.QueryContext, table string, set func(*vector.Batch) (*vector.Batch, error), where func(*vector.Batch) ([]bool, error)) (int64, error) {
	var updated int64
	_, err := m.rewrite(ctx, table, "update", func(b *vector.Batch) (*vector.Batch, bool, error) {
		mask, err := where(b)
		if err != nil {
			return nil, false, err
		}
		n := vector.CountMask(mask)
		if n == 0 {
			return nil, false, nil
		}
		updated += int64(n)
		transformed, err := set(b)
		if err != nil {
			return nil, false, err
		}
		out, err := MergeMasked(b, transformed, mask)
		if err != nil {
			return nil, false, err
		}
		return out, true, nil
	})
	return updated, err
}

// MergeMasked merges two same-schema batches row-wise: masked rows
// come from upd, others from orig — the UPDATE copy-on-write merge.
// Shared with internal/txn, whose buffered updates merge identically.
func MergeMasked(orig, upd *vector.Batch, mask []bool) (*vector.Batch, error) {
	cols := make([]*vector.Column, len(orig.Cols))
	for ci := range orig.Cols {
		o, u := orig.Cols[ci].Decode(), upd.Cols[ci].Decode()
		builder := vector.NewBuilder(vector.NewSchema(orig.Schema.Fields[ci]))
		for r := 0; r < orig.N; r++ {
			if mask[r] {
				builder.Append(u.Value(r))
			} else {
				builder.Append(o.Value(r))
			}
		}
		cols[ci] = builder.Build().Cols[0]
	}
	return vector.NewBatch(orig.Schema, cols)
}

// CreateTableAs materializes a query result as a new managed table
// (engine.Mutator).
func (m *Manager) CreateTableAs(ctx *engine.QueryContext, table string, orReplace bool, rows *vector.Batch) error {
	if _, err := m.Catalog.Table(table); err == nil {
		if !orReplace {
			return fmt.Errorf("%w: table %q", catalog.ErrAlreadyExists, table)
		}
		if err := m.Catalog.DropTable(table); err != nil {
			return err
		}
		// Retire the replaced table's files from the log so the new
		// table starts empty.
		if old, _, err := m.Log.Snapshot(table, -1); err == nil && len(old) > 0 {
			removed := make([]string, len(old))
			for i, f := range old {
				removed[i] = f.Key
			}
			if _, err := m.Log.CommitTx(string(ctx.Principal),
				bigmeta.TxOptions{TxnID: m.dmlTxn(ctx.QueryID, "retire", table)},
				map[string]bigmeta.TableDelta{table: {Removed: removed}}); err != nil {
				return err
			}
		}
	}
	dot := -1
	for i, c := range table {
		if c == '.' {
			dot = i
		}
	}
	if dot < 0 {
		return fmt.Errorf("blmt: CTAS target %q must be dataset.table", table)
	}
	t := catalog.Table{
		Dataset: table[:dot], Name: table[dot+1:], Type: catalog.Managed,
		Schema: rows.Schema, Cloud: m.DefaultCloud, Bucket: m.DefaultBucket,
		Prefix:     fmt.Sprintf("blmt/%s/%s/", table[:dot], table[dot+1:]),
		Connection: m.DefaultConnection,
		CreatedAt:  m.Clock.Now(),
	}
	if err := m.Catalog.CreateTable(t); err != nil {
		return err
	}
	// Creator becomes owner.
	if err := m.Auth.GrantTable(ctx.Principal, table, ctx.Principal, security.RoleOwner); err != nil {
		// Non-admin creators: have an admin bootstrap handled by core;
		// grant through the authority's admin if the principal cannot.
		return err
	}
	if rows.N == 0 {
		return nil
	}
	return m.Insert(ctx, table, rows)
}

// Optimize runs the §3.5 background storage optimizations for one
// table: coalesce small files toward TargetFileBytes (adaptive file
// sizing), optionally recluster rows by a column, and report what
// changed. It is safe to run concurrently with readers: the rewrite
// commits atomically through the log.
func (m *Manager) Optimize(principal, table, clusterBy string) (OptimizeReport, error) {
	t, store, cred, err := m.managedTable(table)
	if err != nil {
		return OptimizeReport{}, err
	}
	files, version, err := m.Log.Snapshot(table, -1)
	if err != nil {
		return OptimizeReport{}, err
	}
	// The idempotency ID binds this pass to the version it read: a
	// crashed-then-retried pass either replays as a no-op (seal was
	// durable) or re-runs cleanly against the same input set.
	txnID := fmt.Sprintf("optimize:%s:v%d", table, version)
	if _, done := m.Log.AppliedTx(txnID); done {
		after, _, _ := m.Log.Snapshot(table, -1)
		return OptimizeReport{FilesBefore: len(files), FilesAfter: len(after)}, nil
	}
	var small []bigmeta.FileEntry
	for _, f := range files {
		if f.Size < TargetFileBytes/2 {
			small = append(small, f)
		}
	}
	if len(small) < 2 && clusterBy == "" {
		return OptimizeReport{FilesBefore: len(files), FilesAfter: len(files)}, nil
	}
	merge := small
	if clusterBy != "" {
		merge = files // reclustering rewrites everything
	}

	var combined *vector.Batch
	var delta bigmeta.TableDelta
	for _, f := range merge {
		var data []byte
		if err := m.Res.Do(m.Clock, nil, "GET "+f.Bucket+"/"+f.Key, func() error {
			var ge error
			data, _, ge = store.Get(cred, f.Bucket, f.Key)
			return ge
		}); err != nil {
			return OptimizeReport{}, err
		}
		r, err := colfmt.NewVectorizedReader(data, nil, nil)
		if err != nil {
			return OptimizeReport{}, err
		}
		b, err := r.ReadAll()
		if err != nil {
			return OptimizeReport{}, err
		}
		combined, err = vector.AppendBatch(combined, b)
		if err != nil {
			return OptimizeReport{}, err
		}
		delta.Removed = append(delta.Removed, f.Key)
	}
	if combined == nil {
		return OptimizeReport{FilesBefore: len(files), FilesAfter: len(files)}, nil
	}
	if clusterBy != "" {
		combined, err = sortBatchBy(combined, clusterBy)
		if err != nil {
			return OptimizeReport{}, err
		}
	}
	// Split into target-size chunks.
	rowBytes := int64(1)
	if combined.N > 0 {
		var total int64
		for _, f := range merge {
			total += f.Size
		}
		rowBytes = total/int64(combined.N) + 1
	}
	rowsPerFile := int(TargetFileBytes / rowBytes)
	if rowsPerFile < 1 {
		rowsPerFile = combined.N
	}
	// Chunk count is known before any PUT, so every output key can be
	// declared in the journal intent up front.
	nChunks := (combined.N + rowsPerFile - 1) / rowsPerFile
	keys := make([]string, nChunks)
	for i := range keys {
		keys[i] = txDataKey(t, txnID, i)
	}
	intentSeq, err := m.intent(txnID, principal, keys)
	if err != nil {
		return OptimizeReport{}, err
	}
	for start := 0; start < combined.N; start += rowsPerFile {
		end := start + rowsPerFile
		if end > combined.N {
			end = combined.N
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		cols := make([]*vector.Column, len(combined.Cols))
		for i, c := range combined.Cols {
			cols[i] = vector.Gather(c, idx)
		}
		chunk, err := vector.NewBatch(combined.Schema, cols)
		if err != nil {
			return OptimizeReport{}, err
		}
		entry, err := m.writeDataFileAt(t, store, cred, nil, chunk, keys[start/rowsPerFile])
		if err != nil {
			return OptimizeReport{}, err
		}
		delta.Added = append(delta.Added, entry)
	}
	if err := m.commit(principal, table,
		bigmeta.TxOptions{TxnID: txnID, IntentSeq: intentSeq}, delta, t); err != nil {
		return OptimizeReport{}, err
	}
	after, _, _ := m.Log.Snapshot(table, -1)
	return OptimizeReport{
		FilesBefore: len(files), FilesAfter: len(after),
		FilesCoalesced: len(merge), Reclustered: clusterBy != "",
	}, nil
}

// OptimizeReport summarizes a background optimization pass.
type OptimizeReport struct {
	FilesBefore    int
	FilesAfter     int
	FilesCoalesced int
	Reclustered    bool
	GarbageDeleted int
}

func sortBatchBy(b *vector.Batch, col string) (*vector.Batch, error) {
	ci := b.Schema.Index(col)
	if ci < 0 {
		return nil, fmt.Errorf("blmt: cluster column %q not in schema", col)
	}
	idx := make([]int, b.N)
	for i := range idx {
		idx[i] = i
	}
	key := b.Cols[ci].Decode()
	sort.SliceStable(idx, func(x, y int) bool {
		a, bb := key.Value(idx[x]), key.Value(idx[y])
		if a.IsNull() {
			return !bb.IsNull()
		}
		if bb.IsNull() {
			return false
		}
		return a.Compare(bb) < 0
	})
	cols := make([]*vector.Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = vector.Gather(c, idx)
	}
	return vector.NewBatch(b.Schema, cols)
}

// GarbageCollect deletes data objects under the table prefix that are
// no longer referenced by the current snapshot and are older than
// minAge (simulated time), returning the number deleted.
func (m *Manager) GarbageCollect(table string, minAge time.Duration) (int, error) {
	t, store, cred, err := m.managedTable(table)
	if err != nil {
		return 0, err
	}
	files, _, err := m.Log.Snapshot(table, -1)
	if err != nil {
		return 0, err
	}
	live := make(map[string]bool, len(files))
	for _, f := range files {
		live[f.Key] = true
	}
	infos, err := resilience.ListAll(m.Res, m.Clock, nil, store, cred, t.Bucket, t.Prefix+"data/")
	if err != nil {
		return 0, err
	}
	deleted := 0
	now := m.Clock.Now()
	for _, info := range infos {
		if live[info.Key] {
			continue
		}
		if now-info.Updated < minAge {
			continue
		}
		key := info.Key
		if err := m.Res.Do(m.Clock, nil, "DELETE "+t.Bucket+"/"+key, func() error {
			return store.Delete(cred, t.Bucket, key)
		}); err != nil {
			return deleted, err
		}
		deleted++
	}
	return deleted, nil
}

// ExportIceberg writes an Iceberg snapshot of the table's current
// state into its bucket and returns the metadata file key (§3.5).
func (m *Manager) ExportIceberg(table string) (string, error) {
	t, store, cred, err := m.managedTable(table)
	if err != nil {
		return "", err
	}
	files, version, err := m.Log.Snapshot(table, -1)
	if err != nil {
		return "", err
	}
	return iceberg.ExportWithCrash(m.Crash, m.Res, store, cred, t.Bucket, t.Prefix, table, t.Schema, files, version)
}
