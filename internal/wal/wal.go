// Package wal is the durable write-ahead commit journal behind
// bigmeta.Log. The paper's BLMT commits live in a replicated
// small-state store (Spanner); this package plays that role with the
// only durable substrate the simulation has — the object store —
// persisting every transaction as sequenced JSON records under a
// journal prefix:
//
//	_journal/000000000001-intent.rec   {txn, declared data-file keys}
//	_journal/000000000002-commit.rec   {sealed bigmeta.TxCommit}
//	_journal/000000000003-abort.rec    {txn}
//
// The protocol is intent → data-file PUTs → sealed commit. The sealed
// commit record is the commit point: bigmeta.Log writes it through
// AppendCommit *before* mutating memory, so after any crash the
// journal alone decides what happened. Recovery (Recover) replays
// sealed commits into a fresh Log in version order, discards intents
// that never sealed, and reconstructs exactly-once Write API stream
// state from the last sealed commit that carried it. GCOrphans then
// deletes data objects that no sealed commit ever referenced — the
// debris of transactions that died between PUT and seal.
//
// Journal records are created with a generation-0 conditional PUT, so
// two writers racing for the same sequence slot cannot silently
// overwrite each other; the loser re-reads the tail and retries at the
// next slot.
package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"biglake/internal/bigmeta"
	"biglake/internal/integrity"
	"biglake/internal/objstore"
	"biglake/internal/sim"
)

// DefaultPrefix is where the journal lives inside a lake bucket,
// deliberately outside any table's data/ prefix so orphan GC never
// scans it.
const DefaultPrefix = "_journal/"

// Record kinds.
const (
	KindIntent = "intent"
	KindCommit = "commit"
	KindAbort  = "abort"
)

// Record is one sequenced journal entry.
type Record struct {
	Seq  int64  `json:"seq"`
	Kind string `json:"kind"`
	// TxnID labels intent and abort records; commit records carry it
	// inside Commit.
	TxnID     string `json:"txn_id,omitempty"`
	Principal string `json:"principal,omitempty"`
	// Keys are the data-file keys an intent declares it may PUT. A
	// transaction that dies before sealing leaves exactly these (or a
	// prefix of them) behind for orphan GC.
	Keys []string `json:"keys,omitempty"`
	// IntentSeq links an abort back to the intent it cancels.
	IntentSeq int64 `json:"intent_seq,omitempty"`
	// Commit is the sealed transaction payload (KindCommit only).
	Commit *bigmeta.TxCommit `json:"commit,omitempty"`
	// Sum is the CRC-32C of the record's JSON encoding with Sum itself
	// zeroed — the torn-write detector. A record whose bytes were
	// truncated or bit-flipped between PUT and read fails verification
	// and is never rolled forward as a sealed commit.
	Sum uint32 `json:"sum,omitempty"`
}

// sealRecord computes the record's checksum and returns its final
// durable encoding. The sum covers the canonical JSON with Sum zeroed,
// so verification is re-marshal + compare.
func sealRecord(rec Record) ([]byte, error) {
	rec.Sum = 0
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: marshal: %w", err)
	}
	rec.Sum = integrity.Checksum(body)
	return json.Marshal(rec)
}

// verifyRecord parses and checksum-verifies one durable record. Both
// failure modes — unparseable bytes (torn write) and a parseable record
// whose canonical re-encoding mismatches the embedded sum (bit flip) —
// surface as typed integrity errors.
func verifyRecord(data []byte) (Record, error) {
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, &integrity.Error{Source: "wal.record",
			Detail: "unparseable record (torn write?): " + err.Error()}
	}
	want := rec.Sum
	clean := rec
	clean.Sum = 0
	body, err := json.Marshal(clean)
	if err != nil {
		return Record{}, fmt.Errorf("wal: re-marshal: %w", err)
	}
	if got := integrity.Checksum(body); got != want {
		return Record{}, &integrity.Error{Source: "wal.record",
			Block:  fmt.Sprintf("seq=%d", rec.Seq),
			Detail: fmt.Sprintf("record checksum mismatch: got %08x want %08x", got, want)}
	}
	return rec, nil
}

// Journal is a durable, sequenced record log in one bucket. It
// implements bigmeta.CommitSink.
type Journal struct {
	Store  *objstore.Store
	Cred   objstore.Credential
	Bucket string
	Prefix string

	mu  sync.Mutex
	seq int64 // last sequence number written or observed
}

// Open attaches to (or starts) the journal under prefix, scanning
// existing records to find the next sequence slot.
func Open(store *objstore.Store, cred objstore.Credential, bucket, prefix string) (*Journal, error) {
	if prefix == "" {
		prefix = DefaultPrefix
	}
	j := &Journal{Store: store, Cred: cred, Bucket: bucket, Prefix: prefix}
	infos, err := store.ListAll(cred, bucket, prefix)
	if err != nil && !errors.Is(err, objstore.ErrNoSuchBucket) {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	for _, info := range infos {
		if n, ok := j.parseSeq(info.Key); ok && n > j.seq {
			j.seq = n
		}
	}
	return j, nil
}

func (j *Journal) key(seq int64, kind string) string {
	return fmt.Sprintf("%s%012d-%s.rec", j.Prefix, seq, kind)
}

func (j *Journal) parseSeq(key string) (int64, bool) {
	rest := strings.TrimPrefix(key, j.Prefix)
	if !strings.HasSuffix(rest, ".rec") {
		return 0, false
	}
	var n int64
	if _, err := fmt.Sscanf(rest, "%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// append writes rec at the next free sequence slot with a create-only
// conditional PUT, retrying past slots another writer claimed first.
func (j *Journal) append(rec Record) (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		seq := j.seq + 1
		rec.Seq = seq
		data, err := sealRecord(rec)
		if err != nil {
			return 0, err
		}
		_, err = j.Store.PutIfGeneration(j.Cred, j.Bucket, j.key(seq, rec.Kind), data, "application/json", 0)
		if err == nil {
			j.seq = seq
			return seq, nil
		}
		if errors.Is(err, objstore.ErrPreconditionFail) {
			// Lost the slot race; skip past it.
			j.seq = seq
			continue
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
}

// AppendIntent opens a transaction: it durably declares the txn ID and
// every data-file key the transaction may PUT, before any PUT happens.
// Returns the intent's sequence number for the matching commit/abort.
func (j *Journal) AppendIntent(txnID, principal string, keys []string) (int64, error) {
	return j.append(Record{Kind: KindIntent, TxnID: txnID, Principal: principal, Keys: append([]string(nil), keys...)})
}

// AppendCommit seals a transaction. This is the commit point: a
// transaction whose commit record is durable is rolled forward by
// recovery; one without it never happened. Implements
// bigmeta.CommitSink.
func (j *Journal) AppendCommit(rec bigmeta.TxCommit) error {
	c := rec
	_, err := j.append(Record{Kind: KindCommit, Commit: &c})
	return err
}

// AppendAbort cancels an intent whose transaction failed cleanly (no
// crash), handing its declared keys to orphan GC eagerly.
func (j *Journal) AppendAbort(txnID string, intentSeq int64) error {
	_, err := j.append(Record{Kind: KindAbort, TxnID: txnID, IntentSeq: intentSeq})
	return err
}

// Seq reports the last sequence number written or observed.
func (j *Journal) Seq() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Records reads, decodes, and checksum-verifies the whole journal in
// sequence order. Any record failing verification is a typed integrity
// error; recovery uses the lenient records() below instead so a torn
// tail write doesn't block replay.
func (j *Journal) Records() ([]Record, error) {
	recs, corrupt, err := j.records()
	if err != nil {
		return nil, err
	}
	if len(corrupt) > 0 {
		return nil, corrupt[0].Err
	}
	return recs, nil
}

// corruptRec is one journal object that failed checksum verification.
// Kind and Seq come from the key name — the payload is untrusted.
type corruptRec struct {
	Key  string
	Seq  int64
	Kind string
	Err  error
}

// records reads the journal leniently: verified records in sequence
// order plus the list of corrupt objects, keyed by filename so the
// caller can reason about *which protocol step* was damaged even when
// the payload is garbage.
func (j *Journal) records() ([]Record, []corruptRec, error) {
	infos, err := j.Store.ListAll(j.Cred, j.Bucket, j.Prefix)
	if err != nil {
		if errors.Is(err, objstore.ErrNoSuchBucket) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("wal: list: %w", err)
	}
	recs := make([]Record, 0, len(infos))
	var corrupt []corruptRec
	for _, info := range infos {
		seq, ok := j.parseSeq(info.Key)
		if !ok {
			continue
		}
		data, _, err := j.Store.Get(j.Cred, j.Bucket, info.Key)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read %s: %w", info.Key, err)
		}
		rec, err := verifyRecord(data)
		if err != nil {
			kind := ""
			if base := strings.TrimSuffix(strings.TrimPrefix(info.Key, j.Prefix), ".rec"); strings.Contains(base, "-") {
				kind = base[strings.Index(base, "-")+1:]
			}
			corrupt = append(corrupt, corruptRec{Key: info.Key, Seq: seq, Kind: kind,
				Err: integrity.Annotate(err, "", j.Bucket, info.Key)})
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq })
	sort.Slice(corrupt, func(a, b int) bool { return corrupt[a].Seq < corrupt[b].Seq })
	return recs, corrupt, nil
}

// RecoveryReport summarizes one journal replay.
type RecoveryReport struct {
	// Commits is the number of sealed commits rolled forward.
	Commits int
	// UnsealedIntents are the txn IDs of intents with no sealed commit
	// and no abort — transactions killed mid-protocol, discarded.
	UnsealedIntents []string
	// AbortedIntents are txn IDs that aborted cleanly.
	AbortedIntents []string
	// OrphanCandidates are the data-file keys declared by unsealed or
	// aborted intents: the places GC should expect debris.
	OrphanCandidates []string
	// CorruptRecords are journal keys that failed checksum
	// verification, in sequence order.
	CorruptRecords []string
	// DemotedCommits is how many checksum-failed commit records in the
	// torn tail were demoted: their transactions recover as unsealed
	// intents instead of rolling forward garbage.
	DemotedCommits int
}

// Recovered is a post-crash world rebuilt from the journal alone.
type Recovered struct {
	// Log is a fresh bigmeta.Log with every sealed commit rolled
	// forward in version order and the journal re-attached, so the
	// recovered process keeps write-ahead semantics.
	Log *bigmeta.Log
	// Streams is the durable Write API stream state: for each stream
	// that ever sealed state into a commit, the last sealed snapshot.
	// Clients resume AppendRows at exactly these offsets.
	Streams map[string]bigmeta.StreamState
	Report  RecoveryReport
}

// Recover replays the journal into a fresh Log: sealed commits roll
// forward, unsealed intents are discarded, and exactly-once stream
// offsets are restored from the last commit that carried each stream.
//
// Checksum-failed records are handled by position. A corrupt commit in
// the torn tail — at a sequence past every verified record — is the
// signature of a crash mid-seal: the commit never durably happened, so
// it is demoted and its transaction recovers as an unsealed intent
// (orphan GC then reclaims its data files). A corrupt commit *behind*
// verified records is not a torn write, it is history damage — rolling
// past it would silently drop a committed transaction, so recovery
// refuses with a typed integrity error and the journal object must be
// repaired first. Corrupt intents and aborts are dropped either way:
// losing one can only make GC more conservative, never lose a commit.
func Recover(j *Journal, clock *sim.Clock, meter *sim.Meter) (*Recovered, error) {
	recs, corrupt, err := j.records()
	if err != nil {
		return nil, err
	}
	tailStart := int64(0) // highest verified sequence number
	for _, rec := range recs {
		if rec.Seq > tailStart {
			tailStart = rec.Seq
		}
	}
	rep := RecoveryReport{}
	for _, c := range corrupt {
		rep.CorruptRecords = append(rep.CorruptRecords, c.Key)
		if c.Kind == KindCommit {
			if c.Seq <= tailStart {
				return nil, c.Err
			}
			rep.DemotedCommits++
		}
	}
	var commits []bigmeta.TxCommit
	intents := map[string]Record{} // txnID → intent
	sealed := map[string]bool{}
	aborted := map[string]bool{}
	for _, rec := range recs {
		switch rec.Kind {
		case KindIntent:
			intents[rec.TxnID] = rec
		case KindAbort:
			aborted[rec.TxnID] = true
		case KindCommit:
			if rec.Commit == nil {
				return nil, fmt.Errorf("wal: commit record %d has no payload", rec.Seq)
			}
			commits = append(commits, *rec.Commit)
			if rec.Commit.TxnID != "" {
				sealed[rec.Commit.TxnID] = true
			}
		}
	}
	sort.Slice(commits, func(a, b int) bool { return commits[a].Version < commits[b].Version })

	log := bigmeta.NewLog(clock, meter)
	if err := log.Restore(commits); err != nil {
		return nil, err
	}
	log.AttachJournal(j)
	log.UseObs(j.Store.Obs())

	streams := map[string]bigmeta.StreamState{}
	for _, c := range commits {
		for id, st := range c.Streams {
			streams[id] = st
		}
	}

	rep.Commits = len(commits)
	for id, in := range intents {
		switch {
		case sealed[id]:
		case aborted[id]:
			rep.AbortedIntents = append(rep.AbortedIntents, id)
			rep.OrphanCandidates = append(rep.OrphanCandidates, in.Keys...)
		default:
			rep.UnsealedIntents = append(rep.UnsealedIntents, id)
			rep.OrphanCandidates = append(rep.OrphanCandidates, in.Keys...)
		}
	}
	sort.Strings(rep.UnsealedIntents)
	sort.Strings(rep.AbortedIntents)
	sort.Strings(rep.OrphanCandidates)
	// Recovery statistics land in the store registry under "wal.*".
	reg := j.Store.Obs()
	reg.Add("wal.recover.runs", 1)
	reg.Add("wal.recover.commits", int64(len(commits)))
	reg.Add("wal.recover.unsealed_intents", int64(len(rep.UnsealedIntents)))
	reg.Add("wal.recover.aborted_intents", int64(len(rep.AbortedIntents)))
	reg.Add("wal.recover.orphan_candidates", int64(len(rep.OrphanCandidates)))
	if n := len(rep.CorruptRecords); n > 0 {
		reg.Add("integrity.detected.wal", int64(n))
		reg.Add("wal.recover.demoted_commits", int64(rep.DemotedCommits))
	}
	return &Recovered{Log: log, Streams: streams, Report: rep}, nil
}

// GCReport summarizes one orphan-GC sweep.
type GCReport struct {
	Scanned int
	Deleted []string
	Bytes   int64
}

// GCOrphans deletes data objects under the given prefixes that no
// sealed commit in the log's history ever referenced — files PUT by
// transactions that died or aborted before sealing. Files referenced
// by *any* historical commit are kept even if a later commit removed
// them: they back time-travel reads, and retiring them on age is
// blmt's separate GarbageCollect job.
func GCOrphans(store *objstore.Store, cred objstore.Credential, bucket string, prefixes []string, log *bigmeta.Log) (GCReport, error) {
	referenced := map[string]bool{}
	for _, rec := range log.History("") {
		for _, d := range rec.Deltas {
			for _, f := range d.Added {
				referenced[f.Key] = true
			}
		}
	}
	var rep GCReport
	for _, prefix := range prefixes {
		infos, err := store.ListAll(cred, bucket, prefix)
		if err != nil {
			return rep, fmt.Errorf("wal: gc list %s: %w", prefix, err)
		}
		for _, info := range infos {
			rep.Scanned++
			if referenced[info.Key] {
				continue
			}
			if err := store.Delete(cred, bucket, info.Key); err != nil {
				return rep, fmt.Errorf("wal: gc delete %s: %w", info.Key, err)
			}
			rep.Deleted = append(rep.Deleted, info.Key)
			rep.Bytes += info.Size
		}
	}
	sort.Strings(rep.Deleted)
	reg := store.Obs()
	reg.Add("wal.gc.scanned", int64(rep.Scanned))
	reg.Add("wal.gc.deleted", int64(len(rep.Deleted)))
	reg.Add("wal.gc.bytes", rep.Bytes)
	return rep, nil
}
