package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"biglake/internal/bigmeta"
	"biglake/internal/integrity"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/sim"
)

func testWorld(t *testing.T) (*objstore.Store, objstore.Credential, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.ProfileFor("gcp"), clock, nil)
	cred := objstore.Credential{Principal: "admin@corp"}
	if err := store.CreateBucket(cred, "lake"); err != nil {
		t.Fatal(err)
	}
	return store, cred, clock
}

func TestJournalRoundTrip(t *testing.T) {
	store, cred, clock := testWorld(t)
	j, err := Open(store, cred, "lake", "")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := j.AppendIntent("tx-1", "alice@corp", []string{"t/data/a.blk"})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCommit(bigmeta.TxCommit{
		TxnID: "tx-1", IntentSeq: seq, Principal: "alice@corp", Version: 1,
		Deltas: map[string]bigmeta.TableDelta{"t": {Added: []bigmeta.FileEntry{{Bucket: "lake", Key: "t/data/a.blk", Size: 3}}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendIntent("tx-2", "alice@corp", []string{"t/data/b.blk"}); err != nil {
		t.Fatal(err)
	}

	// A second Open resumes at the right slot.
	j2, err := Open(store, cred, "lake", "")
	if err != nil {
		t.Fatal(err)
	}
	if j2.Seq() != 3 {
		t.Fatalf("reopened Seq = %d, want 3", j2.Seq())
	}
	recs, err := j2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Kind != KindIntent || recs[1].Kind != KindCommit || recs[2].Kind != KindIntent {
		t.Fatalf("records = %+v", recs)
	}

	rec, err := Recover(j2, clock, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Log.Version() != 1 {
		t.Fatalf("recovered version = %d", rec.Log.Version())
	}
	if v, ok := rec.Log.AppliedTx("tx-1"); !ok || v != 1 {
		t.Fatalf("AppliedTx(tx-1) = %d,%v", v, ok)
	}
	if got := rec.Report.UnsealedIntents; len(got) != 1 || got[0] != "tx-2" {
		t.Fatalf("unsealed = %v", got)
	}
	if got := rec.Report.OrphanCandidates; len(got) != 1 || got[0] != "t/data/b.blk" {
		t.Fatalf("orphan candidates = %v", got)
	}
}

func TestGCOrphansKeepsHistoryReferencedFiles(t *testing.T) {
	store, cred, clock := testWorld(t)
	put := func(key string) {
		t.Helper()
		if _, err := store.Put(cred, "lake", key, []byte("xyz"), "application/x-blk"); err != nil {
			t.Fatal(err)
		}
	}
	put("t/data/live.blk")
	put("t/data/rewritten.blk") // referenced, later removed by compaction
	put("t/data/orphan.blk")    // PUT by a crashed tx, never sealed

	log := bigmeta.NewLog(clock, nil)
	if _, err := log.Commit("a@corp", map[string]bigmeta.TableDelta{"t": {Added: []bigmeta.FileEntry{
		{Bucket: "lake", Key: "t/data/live.blk", Size: 3},
		{Bucket: "lake", Key: "t/data/rewritten.blk", Size: 3},
	}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Commit("a@corp", map[string]bigmeta.TableDelta{"t": {Removed: []string{"t/data/rewritten.blk"}}}); err != nil {
		t.Fatal(err)
	}

	rep, err := GCOrphans(store, cred, "lake", []string{"t/data/"}, log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 3 {
		t.Fatalf("scanned = %d", rep.Scanned)
	}
	if len(rep.Deleted) != 1 || rep.Deleted[0] != "t/data/orphan.blk" || rep.Bytes != 3 {
		t.Fatalf("deleted = %v bytes = %d", rep.Deleted, rep.Bytes)
	}
	// The time-travel file survives even though the latest snapshot
	// removed it.
	if _, err := store.Head(cred, "lake", "t/data/rewritten.blk"); err != nil {
		t.Fatalf("rewritten.blk was GC'd: %v", err)
	}
}

func TestReplayedCommitIsExactNoop(t *testing.T) {
	store, cred, clock := testWorld(t)
	j, err := Open(store, cred, "lake", "")
	if err != nil {
		t.Fatal(err)
	}
	log := bigmeta.NewLog(clock, nil)
	log.AttachJournal(j)
	deltas := map[string]bigmeta.TableDelta{"t": {Added: []bigmeta.FileEntry{{Bucket: "lake", Key: "t/data/a.blk"}}}}
	v1, err := log.CommitTx("a@corp", bigmeta.TxOptions{TxnID: "tx-dup"}, deltas)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := log.CommitTx("a@corp", bigmeta.TxOptions{TxnID: "tx-dup"}, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || log.Version() != v1 {
		t.Fatalf("replay not a no-op: v1=%d v2=%d version=%d", v1, v2, log.Version())
	}
	// The journal must hold exactly one sealed commit.
	recs, err := j.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("journal has %d records, want 1", len(recs))
	}
}

// tornWorld builds a journal with two fully sealed transactions, each
// of which PUT its declared data file before sealing:
//
//	seq 1  intent tx-a {t/data/a.blk}
//	seq 2  commit tx-a (version 1)
//	seq 3  intent tx-b {t/data/b.blk}
//	seq 4  commit tx-b (version 2)   <- the tail, damaged by the tests
//
// It returns the journal plus the key of the tail commit record.
func tornWorld(t *testing.T) (*objstore.Store, objstore.Credential, *sim.Clock, *Journal, string) {
	t.Helper()
	store, cred, clock := testWorld(t)
	j, err := Open(store, cred, "lake", "")
	if err != nil {
		t.Fatal(err)
	}
	seal := func(txn, key string, version int64) {
		t.Helper()
		seq, err := j.AppendIntent(txn, "alice@corp", []string{key})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := store.Put(cred, "lake", key, []byte("data-"+txn), "application/x-blk"); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendCommit(bigmeta.TxCommit{
			TxnID: txn, IntentSeq: seq, Principal: "alice@corp", Version: version,
			Deltas: map[string]bigmeta.TableDelta{"t": {Added: []bigmeta.FileEntry{{Bucket: "lake", Key: key, Size: int64(len("data-" + txn))}}}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	seal("tx-a", "t/data/a.blk", 1)
	seal("tx-b", "t/data/b.blk", 2)
	return store, cred, clock, j, j.key(4, KindCommit)
}

// checkDemotedTail asserts the shared outcome of both torn-tail
// corruption modes: the damaged sealed commit is demoted, its
// transaction recovers as an unsealed intent, orphan GC reclaims its
// data file leaving zero orphans, and the integrity counters fired.
func checkDemotedTail(t *testing.T, store *objstore.Store, cred objstore.Credential, clock *sim.Clock, j *Journal, reg *obs.Registry, tailKey string) {
	t.Helper()
	rec, err := Recover(j, clock, nil)
	if err != nil {
		t.Fatalf("recovery must survive a torn tail: %v", err)
	}
	rep := rec.Report
	if rep.DemotedCommits != 1 {
		t.Fatalf("DemotedCommits = %d, want 1 (report %+v)", rep.DemotedCommits, rep)
	}
	if len(rep.CorruptRecords) != 1 || rep.CorruptRecords[0] != tailKey {
		t.Fatalf("CorruptRecords = %v, want [%s]", rep.CorruptRecords, tailKey)
	}
	// tx-a rolled forward; tx-b's commit never durably happened.
	if rep.Commits != 1 || rec.Log.Version() != 1 {
		t.Fatalf("commits = %d version = %d, want 1/1", rep.Commits, rec.Log.Version())
	}
	if _, ok := rec.Log.AppliedTx("tx-a"); !ok {
		t.Fatal("tx-a lost")
	}
	if _, ok := rec.Log.AppliedTx("tx-b"); ok {
		t.Fatal("demoted tx-b rolled forward anyway")
	}
	if len(rep.UnsealedIntents) != 1 || rep.UnsealedIntents[0] != "tx-b" {
		t.Fatalf("UnsealedIntents = %v, want [tx-b]", rep.UnsealedIntents)
	}
	if len(rep.OrphanCandidates) != 1 || rep.OrphanCandidates[0] != "t/data/b.blk" {
		t.Fatalf("OrphanCandidates = %v, want [t/data/b.blk]", rep.OrphanCandidates)
	}

	// Orphan GC reclaims exactly the demoted transaction's debris...
	gc, err := GCOrphans(store, cred, "lake", []string{"t/data/"}, rec.Log)
	if err != nil {
		t.Fatal(err)
	}
	if len(gc.Deleted) != 1 || gc.Deleted[0] != "t/data/b.blk" {
		t.Fatalf("GC deleted %v, want [t/data/b.blk]", gc.Deleted)
	}
	if _, err := store.Head(cred, "lake", "t/data/a.blk"); err != nil {
		t.Fatalf("committed file a.blk was GC'd: %v", err)
	}
	// ...and a second sweep finds nothing: zero orphans remain.
	gc2, err := GCOrphans(store, cred, "lake", []string{"t/data/"}, rec.Log)
	if err != nil {
		t.Fatal(err)
	}
	if len(gc2.Deleted) != 0 {
		t.Fatalf("orphans remain after GC: %v", gc2.Deleted)
	}

	snap := reg.Snapshot()
	if snap.Counters["integrity.detected.wal"] == 0 {
		t.Fatal("integrity.detected.wal never incremented")
	}
	if snap.Counters["wal.recover.demoted_commits"] != 1 {
		t.Fatalf("wal.recover.demoted_commits = %d, want 1", snap.Counters["wal.recover.demoted_commits"])
	}
}

// TestRecoverTornTailTruncated: a sealed commit whose durable bytes
// were cut short (crash mid-PUT) must recover as a dropped intent, not
// roll forward garbage and not block replay.
func TestRecoverTornTailTruncated(t *testing.T) {
	store, cred, clock, j, tailKey := tornWorld(t)
	reg := obs.NewRegistry()
	store.UseObs(reg)

	data, _, err := store.Get(cred, "lake", tailKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put(cred, "lake", tailKey, data[:len(data)/2], "application/json"); err != nil {
		t.Fatal(err)
	}
	checkDemotedTail(t, store, cred, clock, j, reg, tailKey)
}

// TestRecoverTornTailBitFlip: same contract when the record parses but
// its embedded checksum no longer matches.
func TestRecoverTornTailBitFlip(t *testing.T) {
	store, cred, clock, j, tailKey := tornWorld(t)
	reg := obs.NewRegistry()
	store.UseObs(reg)

	// Bit 83 lands mid-payload: the JSON may or may not still parse,
	// and either way verification must fail.
	if err := store.FlipStoredBit("lake", tailKey, 83); err != nil {
		t.Fatal(err)
	}
	checkDemotedTail(t, store, cred, clock, j, reg, tailKey)
}

// TestRecoverCorruptHistoryCommitRefuses: a checksum-failed commit
// BEHIND verified records is history damage, not a torn tail — rolling
// past it would silently drop a committed transaction, so recovery
// must refuse with a typed integrity error.
func TestRecoverCorruptHistoryCommitRefuses(t *testing.T) {
	store, _, clock, j, _ := tornWorld(t)
	reg := obs.NewRegistry()
	store.UseObs(reg)

	// Damage tx-a's commit (seq 2); tx-b's verified records sit after it.
	if err := store.FlipStoredBit("lake", j.key(2, KindCommit), 83); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(j, clock, nil); err == nil {
		t.Fatal("recovery rolled past a corrupt non-tail commit")
	} else if !errors.Is(err, integrity.ErrCorrupt) {
		t.Fatalf("history damage surfaced untyped: %v", err)
	}
}

// TestRecoverCorruptIntentIsDropped: a corrupt intent (tail or not)
// only makes GC more conservative — recovery proceeds, the sealed
// commits all roll forward, and the record is counted corrupt without
// being demoted (demotion is commit-only).
func TestRecoverCorruptIntentIsDropped(t *testing.T) {
	store, _, clock, j, _ := tornWorld(t)
	reg := obs.NewRegistry()
	store.UseObs(reg)

	if err := store.FlipStoredBit("lake", j.key(3, KindIntent), 83); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(j, clock, nil)
	if err != nil {
		t.Fatalf("recovery must survive a corrupt intent: %v", err)
	}
	if rec.Report.Commits != 2 || rec.Log.Version() != 2 {
		t.Fatalf("commits = %d version = %d, want 2/2", rec.Report.Commits, rec.Log.Version())
	}
	if rec.Report.DemotedCommits != 0 {
		t.Fatalf("DemotedCommits = %d, want 0", rec.Report.DemotedCommits)
	}
	if len(rec.Report.CorruptRecords) != 1 {
		t.Fatalf("CorruptRecords = %v", rec.Report.CorruptRecords)
	}
	if reg.Snapshot().Counters["integrity.detected.wal"] == 0 {
		t.Fatal("integrity.detected.wal never incremented")
	}
}

// TestRecoveryEquivalenceProperty is the S4 property test: for random
// DML histories, SnapshotByReplay on a journal-recovered log is
// bit-identical to Snapshot on the original at every historical
// version, including versions older than a compaction baseline.
func TestRecoveryEquivalenceProperty(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			store, cred, clock := testWorld(t)
			j, err := Open(store, cred, "lake", "")
			if err != nil {
				t.Fatal(err)
			}
			log := bigmeta.NewLog(clock, nil)
			log.BaselineEvery = 7 // force auto-compaction mid-history
			log.AttachJournal(j)

			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			tables := []string{"orders", "lineitem", "nation"}
			live := map[string][]string{}
			nextKey := 0
			for i := 0; i < 40; i++ {
				table := tables[rng.Intn(len(tables))]
				d := bigmeta.TableDelta{}
				for n := rng.Intn(3) + 1; n > 0; n-- {
					key := fmt.Sprintf("%s/data/f%04d.blk", table, nextKey)
					nextKey++
					d.Added = append(d.Added, bigmeta.FileEntry{
						Bucket: "lake", Key: key, Size: int64(rng.Intn(4096)),
						RowCount:  int64(rng.Intn(1000)),
						Partition: map[string]string{"date": fmt.Sprintf("2024-01-%02d", rng.Intn(28)+1)},
					})
					live[table] = append(live[table], key)
				}
				// Sometimes remove a previously added file (UPDATE/DELETE
				// rewrites).
				if ks := live[table]; len(ks) > 2 && rng.Intn(3) == 0 {
					idx := rng.Intn(len(ks))
					d.Removed = append(d.Removed, ks[idx])
					live[table] = append(ks[:idx:idx], ks[idx+1:]...)
				}
				opts := bigmeta.TxOptions{TxnID: fmt.Sprintf("trial%d-tx%d", trial, i)}
				if rng.Intn(4) == 0 {
					opts.TxnID = "" // some commits skip idempotency IDs
				}
				if _, err := log.CommitTx("a@corp", opts, map[string]bigmeta.TableDelta{table: d}); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(10) == 0 {
					log.Compact()
				}
			}
			log.Compact() // ensure at least one baseline is in play

			rec, err := Recover(j, clock, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Log.Version() != log.Version() {
				t.Fatalf("recovered version %d != original %d", rec.Log.Version(), log.Version())
			}
			for v := int64(1); v <= log.Version(); v++ {
				for _, table := range tables {
					want, _, err := log.Snapshot(table, v)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := rec.Log.SnapshotByReplay(table, v)
					if err != nil {
						t.Fatal(err)
					}
					wb, _ := json.Marshal(want)
					gb, _ := json.Marshal(got)
					if !reflect.DeepEqual(wb, gb) {
						t.Fatalf("table %s version %d diverges:\n orig: %s\n rcvd: %s", table, v, wb, gb)
					}
				}
			}
		})
	}
}
