package wal

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"biglake/internal/bigmeta"
	"biglake/internal/objstore"
	"biglake/internal/sim"
)

func testWorld(t *testing.T) (*objstore.Store, objstore.Credential, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.ProfileFor("gcp"), clock, nil)
	cred := objstore.Credential{Principal: "admin@corp"}
	if err := store.CreateBucket(cred, "lake"); err != nil {
		t.Fatal(err)
	}
	return store, cred, clock
}

func TestJournalRoundTrip(t *testing.T) {
	store, cred, clock := testWorld(t)
	j, err := Open(store, cred, "lake", "")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := j.AppendIntent("tx-1", "alice@corp", []string{"t/data/a.blk"})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCommit(bigmeta.TxCommit{
		TxnID: "tx-1", IntentSeq: seq, Principal: "alice@corp", Version: 1,
		Deltas: map[string]bigmeta.TableDelta{"t": {Added: []bigmeta.FileEntry{{Bucket: "lake", Key: "t/data/a.blk", Size: 3}}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendIntent("tx-2", "alice@corp", []string{"t/data/b.blk"}); err != nil {
		t.Fatal(err)
	}

	// A second Open resumes at the right slot.
	j2, err := Open(store, cred, "lake", "")
	if err != nil {
		t.Fatal(err)
	}
	if j2.Seq() != 3 {
		t.Fatalf("reopened Seq = %d, want 3", j2.Seq())
	}
	recs, err := j2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Kind != KindIntent || recs[1].Kind != KindCommit || recs[2].Kind != KindIntent {
		t.Fatalf("records = %+v", recs)
	}

	rec, err := Recover(j2, clock, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Log.Version() != 1 {
		t.Fatalf("recovered version = %d", rec.Log.Version())
	}
	if v, ok := rec.Log.AppliedTx("tx-1"); !ok || v != 1 {
		t.Fatalf("AppliedTx(tx-1) = %d,%v", v, ok)
	}
	if got := rec.Report.UnsealedIntents; len(got) != 1 || got[0] != "tx-2" {
		t.Fatalf("unsealed = %v", got)
	}
	if got := rec.Report.OrphanCandidates; len(got) != 1 || got[0] != "t/data/b.blk" {
		t.Fatalf("orphan candidates = %v", got)
	}
}

func TestGCOrphansKeepsHistoryReferencedFiles(t *testing.T) {
	store, cred, clock := testWorld(t)
	put := func(key string) {
		t.Helper()
		if _, err := store.Put(cred, "lake", key, []byte("xyz"), "application/x-blk"); err != nil {
			t.Fatal(err)
		}
	}
	put("t/data/live.blk")
	put("t/data/rewritten.blk") // referenced, later removed by compaction
	put("t/data/orphan.blk")    // PUT by a crashed tx, never sealed

	log := bigmeta.NewLog(clock, nil)
	if _, err := log.Commit("a@corp", map[string]bigmeta.TableDelta{"t": {Added: []bigmeta.FileEntry{
		{Bucket: "lake", Key: "t/data/live.blk", Size: 3},
		{Bucket: "lake", Key: "t/data/rewritten.blk", Size: 3},
	}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Commit("a@corp", map[string]bigmeta.TableDelta{"t": {Removed: []string{"t/data/rewritten.blk"}}}); err != nil {
		t.Fatal(err)
	}

	rep, err := GCOrphans(store, cred, "lake", []string{"t/data/"}, log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 3 {
		t.Fatalf("scanned = %d", rep.Scanned)
	}
	if len(rep.Deleted) != 1 || rep.Deleted[0] != "t/data/orphan.blk" || rep.Bytes != 3 {
		t.Fatalf("deleted = %v bytes = %d", rep.Deleted, rep.Bytes)
	}
	// The time-travel file survives even though the latest snapshot
	// removed it.
	if _, err := store.Head(cred, "lake", "t/data/rewritten.blk"); err != nil {
		t.Fatalf("rewritten.blk was GC'd: %v", err)
	}
}

func TestReplayedCommitIsExactNoop(t *testing.T) {
	store, cred, clock := testWorld(t)
	j, err := Open(store, cred, "lake", "")
	if err != nil {
		t.Fatal(err)
	}
	log := bigmeta.NewLog(clock, nil)
	log.AttachJournal(j)
	deltas := map[string]bigmeta.TableDelta{"t": {Added: []bigmeta.FileEntry{{Bucket: "lake", Key: "t/data/a.blk"}}}}
	v1, err := log.CommitTx("a@corp", bigmeta.TxOptions{TxnID: "tx-dup"}, deltas)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := log.CommitTx("a@corp", bigmeta.TxOptions{TxnID: "tx-dup"}, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || log.Version() != v1 {
		t.Fatalf("replay not a no-op: v1=%d v2=%d version=%d", v1, v2, log.Version())
	}
	// The journal must hold exactly one sealed commit.
	recs, err := j.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("journal has %d records, want 1", len(recs))
	}
}

// TestRecoveryEquivalenceProperty is the S4 property test: for random
// DML histories, SnapshotByReplay on a journal-recovered log is
// bit-identical to Snapshot on the original at every historical
// version, including versions older than a compaction baseline.
func TestRecoveryEquivalenceProperty(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			store, cred, clock := testWorld(t)
			j, err := Open(store, cred, "lake", "")
			if err != nil {
				t.Fatal(err)
			}
			log := bigmeta.NewLog(clock, nil)
			log.BaselineEvery = 7 // force auto-compaction mid-history
			log.AttachJournal(j)

			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			tables := []string{"orders", "lineitem", "nation"}
			live := map[string][]string{}
			nextKey := 0
			for i := 0; i < 40; i++ {
				table := tables[rng.Intn(len(tables))]
				d := bigmeta.TableDelta{}
				for n := rng.Intn(3) + 1; n > 0; n-- {
					key := fmt.Sprintf("%s/data/f%04d.blk", table, nextKey)
					nextKey++
					d.Added = append(d.Added, bigmeta.FileEntry{
						Bucket: "lake", Key: key, Size: int64(rng.Intn(4096)),
						RowCount:  int64(rng.Intn(1000)),
						Partition: map[string]string{"date": fmt.Sprintf("2024-01-%02d", rng.Intn(28)+1)},
					})
					live[table] = append(live[table], key)
				}
				// Sometimes remove a previously added file (UPDATE/DELETE
				// rewrites).
				if ks := live[table]; len(ks) > 2 && rng.Intn(3) == 0 {
					idx := rng.Intn(len(ks))
					d.Removed = append(d.Removed, ks[idx])
					live[table] = append(ks[:idx:idx], ks[idx+1:]...)
				}
				opts := bigmeta.TxOptions{TxnID: fmt.Sprintf("trial%d-tx%d", trial, i)}
				if rng.Intn(4) == 0 {
					opts.TxnID = "" // some commits skip idempotency IDs
				}
				if _, err := log.CommitTx("a@corp", opts, map[string]bigmeta.TableDelta{table: d}); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(10) == 0 {
					log.Compact()
				}
			}
			log.Compact() // ensure at least one baseline is in play

			rec, err := Recover(j, clock, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Log.Version() != log.Version() {
				t.Fatalf("recovered version %d != original %d", rec.Log.Version(), log.Version())
			}
			for v := int64(1); v <= log.Version(); v++ {
				for _, table := range tables {
					want, _, err := log.Snapshot(table, v)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := rec.Log.SnapshotByReplay(table, v)
					if err != nil {
						t.Fatal(err)
					}
					wb, _ := json.Marshal(want)
					gb, _ := json.Marshal(got)
					if !reflect.DeepEqual(wb, gb) {
						t.Fatalf("table %s version %d diverges:\n orig: %s\n rcvd: %s", table, v, wb, gb)
					}
				}
			}
		})
	}
}
