// Package iceberg implements the Apache Iceberg-format snapshot
// export of §3.5: BLMTs keep their source of truth in Big Metadata,
// but can export an Iceberg-compatible snapshot of table metadata to
// cloud storage so "any engine capable of understanding Iceberg can
// query the data directly". The layout follows Iceberg's structure —
// a table-metadata JSON pointing at a manifest list, which points at
// manifests, which enumerate data files with per-column bounds.
package iceberg

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/crashpoint"
	"biglake/internal/objstore"
	"biglake/internal/resilience"
	"biglake/internal/vector"
)

// ErrNotIceberg reports a metadata object that is not an Iceberg
// table-metadata file.
var ErrNotIceberg = errors.New("iceberg: not an iceberg table metadata file")

// FormatVersion is the Iceberg spec version the export claims.
const FormatVersion = 2

// TableMetadata is the root metadata document.
type TableMetadata struct {
	FormatVersion     int         `json:"format-version"`
	TableUUID         string      `json:"table-uuid"`
	Location          string      `json:"location"`
	LastUpdatedMillis int64       `json:"last-updated-ms"`
	CurrentSnapshotID int64       `json:"current-snapshot-id"`
	Schemas           []SchemaDoc `json:"schemas"`
	Snapshots         []Snapshot  `json:"snapshots"`
}

// SchemaDoc is one schema revision.
type SchemaDoc struct {
	SchemaID int        `json:"schema-id"`
	Fields   []FieldDoc `json:"fields"`
}

// FieldDoc is one column.
type FieldDoc struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	Required bool   `json:"required"`
	Type     string `json:"type"`
}

// Snapshot points at a manifest list.
type Snapshot struct {
	SnapshotID   int64  `json:"snapshot-id"`
	TimestampMS  int64  `json:"timestamp-ms"`
	ManifestList string `json:"manifest-list"`
	Summary      struct {
		Operation  string `json:"operation"`
		TotalFiles int64  `json:"total-data-files,string"`
		TotalRows  int64  `json:"total-records,string"`
	} `json:"summary"`
}

// ManifestList enumerates manifests.
type ManifestList struct {
	Entries []ManifestEntry `json:"entries"`
}

// ManifestEntry points at one manifest file.
type ManifestEntry struct {
	ManifestPath string `json:"manifest_path"`
	AddedFiles   int64  `json:"added_data_files_count"`
}

// Manifest enumerates data files.
type Manifest struct {
	DataFiles []DataFile `json:"data_files"`
}

// DataFile describes one data file with pruning bounds.
type DataFile struct {
	Path        string            `json:"file_path"`
	Format      string            `json:"file_format"`
	RecordCount int64             `json:"record_count"`
	FileSize    int64             `json:"file_size_in_bytes"`
	Partition   map[string]string `json:"partition,omitempty"`
	LowerBounds map[string]string `json:"lower_bounds,omitempty"`
	UpperBounds map[string]string `json:"upper_bounds,omitempty"`
	NullCounts  map[string]int64  `json:"null_value_counts,omitempty"`
}

func icebergType(t vector.Type) string {
	switch t {
	case vector.Int64:
		return "long"
	case vector.Float64:
		return "double"
	case vector.Bool:
		return "boolean"
	case vector.Timestamp:
		return "timestamptz"
	case vector.Bytes:
		return "binary"
	default:
		return "string"
	}
}

// Export writes an Iceberg snapshot of the given file entries into
// bucket under prefix ("metadata/..."), returning the key of the
// table-metadata JSON. snapshotID should be the Big Metadata log
// version the snapshot reflects.
//
// Metadata writes retry under res (nil = no retries). The version-hint
// object — the pointer concurrent exporters race on — is written with
// a generation precondition and a bounded reload-and-re-CAS loop, so
// contention between exporters surfaces as a clean ordered outcome
// rather than a fatal ErrPreconditionFail.
func Export(res *resilience.Policy, store *objstore.Store, cred objstore.Credential, bucket, prefix, tableName string, schema vector.Schema, files []bigmeta.FileEntry, snapshotID int64) (string, error) {
	return ExportWithCrash(nil, res, store, cred, bucket, prefix, tableName, schema, files, snapshotID)
}

// ExportWithCrash is Export with crash points marking each step of the
// export protocol. Export is idempotent and runs *after* the sealed
// log commit, so a crash at any of these points leaves at worst
// partially-written (key-versioned, never-referenced) metadata objects
// and a stale version hint — the next export of the same version
// overwrites them and converges the hint.
func ExportWithCrash(crash *crashpoint.Injector, res *resilience.Policy, store *objstore.Store, cred objstore.Credential, bucket, prefix, tableName string, schema vector.Schema, files []bigmeta.FileEntry, snapshotID int64) (string, error) {
	now := int64(store.Clock().Now() / time.Millisecond)

	manifest := Manifest{}
	var totalRows int64
	for _, f := range files {
		df := DataFile{
			Path:        fmt.Sprintf("%s/%s", f.Bucket, f.Key),
			Format:      "BLK", // this repo's columnar format; PARQUET in production
			RecordCount: f.RowCount,
			FileSize:    f.Size,
			Partition:   f.Partition,
		}
		if len(f.ColumnStats) > 0 {
			df.LowerBounds = map[string]string{}
			df.UpperBounds = map[string]string{}
			df.NullCounts = map[string]int64{}
			for col, st := range f.ColumnStats {
				df.LowerBounds[col] = st.Min.ToValue().String()
				df.UpperBounds[col] = st.Max.ToValue().String()
				df.NullCounts[col] = st.Nulls
			}
		}
		manifest.DataFiles = append(manifest.DataFiles, df)
		totalRows += f.RowCount
	}

	manifestKey := fmt.Sprintf("%smetadata/snap-%d-manifest.json", prefix, snapshotID)
	manifestJSON, err := json.Marshal(manifest)
	if err != nil {
		return "", err
	}
	crash.At("iceberg.before_manifest")
	if err := res.Do(store.Clock(), nil, "PUT "+bucket+"/"+manifestKey, func() error {
		_, e := store.Put(cred, bucket, manifestKey, manifestJSON, "application/json")
		return e
	}); err != nil {
		return "", err
	}
	crash.At("iceberg.after_manifest")

	listKey := fmt.Sprintf("%smetadata/snap-%d-manifest-list.json", prefix, snapshotID)
	listJSON, err := json.Marshal(ManifestList{Entries: []ManifestEntry{{
		ManifestPath: manifestKey,
		AddedFiles:   int64(len(files)),
	}}})
	if err != nil {
		return "", err
	}
	if err := res.Do(store.Clock(), nil, "PUT "+bucket+"/"+listKey, func() error {
		_, e := store.Put(cred, bucket, listKey, listJSON, "application/json")
		return e
	}); err != nil {
		return "", err
	}

	snap := Snapshot{SnapshotID: snapshotID, TimestampMS: now, ManifestList: listKey}
	snap.Summary.Operation = "append"
	snap.Summary.TotalFiles = int64(len(files))
	snap.Summary.TotalRows = totalRows

	schemaDoc := SchemaDoc{SchemaID: 0}
	for i, f := range schema.Fields {
		schemaDoc.Fields = append(schemaDoc.Fields, FieldDoc{ID: i + 1, Name: f.Name, Type: icebergType(f.Type)})
	}
	meta := TableMetadata{
		FormatVersion:     FormatVersion,
		TableUUID:         fmt.Sprintf("uuid-%s-%d", tableName, snapshotID),
		Location:          fmt.Sprintf("%s/%s", bucket, prefix),
		LastUpdatedMillis: now,
		CurrentSnapshotID: snapshotID,
		Schemas:           []SchemaDoc{schemaDoc},
		Snapshots:         []Snapshot{snap},
	}
	metaJSON, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return "", err
	}
	metaKey := fmt.Sprintf("%smetadata/v%d.metadata.json", prefix, snapshotID)
	if err := res.Do(store.Clock(), nil, "PUT "+bucket+"/"+metaKey, func() error {
		_, e := store.Put(cred, bucket, metaKey, metaJSON, "application/json")
		return e
	}); err != nil {
		return "", err
	}
	crash.At("iceberg.after_metadata")
	// version-hint lets engines discover the latest metadata file. It is
	// the one object concurrent exporters overwrite, so it commits via
	// compare-and-swap on the observed generation; on conflict the loop
	// reloads the generation and re-CASes (bounded attempts).
	hintKey := prefix + "metadata/version-hint.text"
	var hintGen int64
	loadGen := func() error {
		return res.Do(store.Clock(), nil, "HEAD "+bucket+"/"+hintKey, func() error {
			info, err := store.Head(cred, bucket, hintKey)
			if errors.Is(err, objstore.ErrNoSuchObject) {
				hintGen = 0
				return nil
			}
			if err != nil {
				return err
			}
			hintGen = info.Generation
			return nil
		})
	}
	if err := loadGen(); err != nil {
		return "", err
	}
	if err := res.DoCAS(store.Clock(), nil, "PUT "+bucket+"/"+hintKey, func() error {
		_, e := store.PutIfGeneration(cred, bucket, hintKey, []byte(metaKey), "text/plain", hintGen)
		return e
	}, loadGen); err != nil {
		return "", err
	}
	crash.At("iceberg.after_hint")
	return metaKey, nil
}

// ReadTable loads an exported snapshot the way an external Iceberg
// reader would: metadata JSON -> manifest list -> manifests -> data
// files. It returns the data-file entries and the snapshot's schema.
func ReadTable(store *objstore.Store, cred objstore.Credential, bucket, metadataKey string) ([]DataFile, vector.Schema, error) {
	metaJSON, _, err := store.Get(cred, bucket, metadataKey)
	if err != nil {
		return nil, vector.Schema{}, err
	}
	var meta TableMetadata
	if err := json.Unmarshal(metaJSON, &meta); err != nil || meta.FormatVersion == 0 {
		return nil, vector.Schema{}, fmt.Errorf("%w: %s", ErrNotIceberg, metadataKey)
	}
	var current *Snapshot
	for i := range meta.Snapshots {
		if meta.Snapshots[i].SnapshotID == meta.CurrentSnapshotID {
			current = &meta.Snapshots[i]
		}
	}
	if current == nil {
		return nil, vector.Schema{}, fmt.Errorf("iceberg: metadata %s has no current snapshot", metadataKey)
	}
	listJSON, _, err := store.Get(cred, bucket, current.ManifestList)
	if err != nil {
		return nil, vector.Schema{}, err
	}
	var list ManifestList
	if err := json.Unmarshal(listJSON, &list); err != nil {
		return nil, vector.Schema{}, err
	}
	var out []DataFile
	for _, entry := range list.Entries {
		manJSON, _, err := store.Get(cred, bucket, entry.ManifestPath)
		if err != nil {
			return nil, vector.Schema{}, err
		}
		var man Manifest
		if err := json.Unmarshal(manJSON, &man); err != nil {
			return nil, vector.Schema{}, err
		}
		out = append(out, man.DataFiles...)
	}
	schema := vector.Schema{}
	if len(meta.Schemas) > 0 {
		for _, f := range meta.Schemas[len(meta.Schemas)-1].Fields {
			schema.Fields = append(schema.Fields, vector.Field{Name: f.Name, Type: fromIcebergType(f.Type)})
		}
	}
	return out, schema, nil
}

func fromIcebergType(s string) vector.Type {
	switch s {
	case "long", "int":
		return vector.Int64
	case "double", "float":
		return vector.Float64
	case "boolean":
		return vector.Bool
	case "timestamptz", "timestamp":
		return vector.Timestamp
	case "binary":
		return vector.Bytes
	default:
		return vector.String
	}
}

// LatestMetadataKey resolves the version hint to the current metadata
// file key.
func LatestMetadataKey(store *objstore.Store, cred objstore.Credential, bucket, prefix string) (string, error) {
	hint, _, err := store.Get(cred, bucket, prefix+"metadata/version-hint.text")
	if err != nil {
		return "", err
	}
	return string(hint), nil
}

// Stats summarizes an exported snapshot for tests and the harness.
func Stats(files []DataFile) (fileCount, rowCount int64) {
	for _, f := range files {
		fileCount++
		rowCount += f.RecordCount
	}
	return fileCount, rowCount
}
