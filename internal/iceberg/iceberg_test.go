package iceberg

import (
	"errors"
	"testing"

	"biglake/internal/bigmeta"
	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

func testStore(t *testing.T) (*objstore.Store, objstore.Credential) {
	t.Helper()
	clock := sim.NewClock()
	st := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa@test"}
	if err := st.CreateBucket(cred, "lake"); err != nil {
		t.Fatal(err)
	}
	return st, cred
}

func sampleSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "name", Type: vector.String},
		vector.Field{Name: "score", Type: vector.Float64},
		vector.Field{Name: "ok", Type: vector.Bool},
		vector.Field{Name: "ts", Type: vector.Timestamp},
	)
}

func sampleFiles() []bigmeta.FileEntry {
	return []bigmeta.FileEntry{
		{
			Bucket: "lake", Key: "t/data/f1.blk", Size: 100, RowCount: 10,
			Partition: map[string]string{"date": "2024-01-01"},
			ColumnStats: map[string]colfmt.ColumnStats{
				"id": {Min: colfmt.FromValue(vector.IntValue(1)), Max: colfmt.FromValue(vector.IntValue(10)), Nulls: 0},
			},
		},
		{Bucket: "lake", Key: "t/data/f2.blk", Size: 200, RowCount: 20},
	}
}

func TestExportAndReadBack(t *testing.T) {
	st, cred := testStore(t)
	metaKey, err := Export(nil, st, cred, "lake", "t/", "ds.t", sampleSchema(), sampleFiles(), 7)
	if err != nil {
		t.Fatal(err)
	}
	files, schema, err := ReadTable(st, cred, "lake", metaKey)
	if err != nil {
		t.Fatal(err)
	}
	fc, rc := Stats(files)
	if fc != 2 || rc != 30 {
		t.Fatalf("stats = %d files %d rows", fc, rc)
	}
	if files[0].Partition["date"] != "2024-01-01" {
		t.Fatalf("partition = %v", files[0].Partition)
	}
	if files[0].LowerBounds["id"] != "1" || files[0].UpperBounds["id"] != "10" {
		t.Fatalf("bounds = %v / %v", files[0].LowerBounds, files[0].UpperBounds)
	}
	if !schema.Equal(sampleSchema()) {
		t.Fatalf("schema round trip = %v", schema)
	}
}

func TestVersionHint(t *testing.T) {
	st, cred := testStore(t)
	k1, err := Export(nil, st, cred, "lake", "t/", "ds.t", sampleSchema(), sampleFiles(), 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Export(nil, st, cred, "lake", "t/", "ds.t", sampleSchema(), sampleFiles(), 2)
	if err != nil {
		t.Fatal(err)
	}
	hint, err := LatestMetadataKey(st, cred, "lake", "t/")
	if err != nil {
		t.Fatal(err)
	}
	if hint != k2 || hint == k1 {
		t.Fatalf("hint = %q", hint)
	}
}

func TestTypeMapping(t *testing.T) {
	cases := map[vector.Type]string{
		vector.Int64: "long", vector.Float64: "double", vector.Bool: "boolean",
		vector.Timestamp: "timestamptz", vector.Bytes: "binary", vector.String: "string",
	}
	for vt, it := range cases {
		if got := icebergType(vt); got != it {
			t.Errorf("icebergType(%v) = %q", vt, got)
		}
		if got := fromIcebergType(it); got != vt {
			t.Errorf("fromIcebergType(%q) = %v", it, got)
		}
	}
	if fromIcebergType("int") != vector.Int64 || fromIcebergType("decimal(10,2)") != vector.String {
		t.Fatal("iceberg type aliases")
	}
}

func TestReadTableRejectsNonIceberg(t *testing.T) {
	st, cred := testStore(t)
	st.Put(cred, "lake", "junk.json", []byte("{}"), "application/json")
	if _, _, err := ReadTable(st, cred, "lake", "junk.json"); !errors.Is(err, ErrNotIceberg) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := ReadTable(st, cred, "lake", "missing.json"); err == nil {
		t.Fatal("missing metadata should fail")
	}
}

func TestReadTableMissingSnapshot(t *testing.T) {
	st, cred := testStore(t)
	// Hand-craft metadata whose current snapshot id matches nothing.
	meta := `{"format-version":2,"current-snapshot-id":99,"snapshots":[]}`
	st.Put(cred, "lake", "bad.metadata.json", []byte(meta), "application/json")
	if _, _, err := ReadTable(st, cred, "lake", "bad.metadata.json"); err == nil {
		t.Fatal("metadata without current snapshot should fail")
	}
}

func TestExportEmptyTable(t *testing.T) {
	st, cred := testStore(t)
	metaKey, err := Export(nil, st, cred, "lake", "t/", "ds.t", sampleSchema(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	files, _, err := ReadTable(st, cred, "lake", metaKey)
	if err != nil || len(files) != 0 {
		t.Fatalf("empty export: %d files, %v", len(files), err)
	}
}
