// Package shuffle implements BigQuery's disaggregated in-memory
// shuffle tier (§2, §5.4): a service separate from compute workers
// that buffers partitioned intermediate results, provides query
// checkpointing for dynamic re-optimization, and (on Omni) replaces
// its Spanner state tracking with a local small-state store.
package shuffle

import (
	"errors"
	"fmt"
	"sync"

	"biglake/internal/sim"
)

// Errors returned by the shuffle service.
var (
	ErrNoSession    = errors.New("shuffle: no such session")
	ErrBadPartition = errors.New("shuffle: partition out of range")
	ErrSealed       = errors.New("shuffle: session sealed")
)

// Service is one region's shuffle tier. Payloads are opaque byte
// slices (serialized vector batches).
type Service struct {
	clock *sim.Clock
	meter *sim.Meter

	mu       sync.Mutex
	sessions map[string]*session
	seq      int
}

type session struct {
	partitions [][][]byte
	sealed     bool
	checkpoint [][][]byte
}

// New returns an empty shuffle service.
func New(clock *sim.Clock, meter *sim.Meter) *Service {
	if meter == nil {
		meter = &sim.Meter{}
	}
	return &Service{clock: clock, meter: meter, sessions: make(map[string]*session)}
}

// CreateSession allocates a shuffle session with n partitions and
// returns its id.
func (s *Service) CreateSession(n int) (string, error) {
	if n <= 0 {
		return "", fmt.Errorf("shuffle: need at least 1 partition, got %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := fmt.Sprintf("shuffle-%d", s.seq)
	s.sessions[id] = &session{partitions: make([][][]byte, n)}
	return id, nil
}

// Write appends a payload to one partition of a session. Concurrent
// writers are supported.
func (s *Service) Write(id string, partition int, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, id)
	}
	if sess.sealed {
		return fmt.Errorf("%w: %s", ErrSealed, id)
	}
	if partition < 0 || partition >= len(sess.partitions) {
		return fmt.Errorf("%w: %d of %d", ErrBadPartition, partition, len(sess.partitions))
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	sess.partitions[partition] = append(sess.partitions[partition], cp)
	s.meter.Add("shuffle_bytes", int64(len(payload)))
	return nil
}

// Seal marks a session read-only; readers may then drain partitions.
func (s *Service) Seal(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, id)
	}
	sess.sealed = true
	return nil
}

// Read returns all payloads for one partition. The session must be
// sealed (shuffle consumers start after producers finish a stage).
func (s *Service) Read(id string, partition int) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSession, id)
	}
	if !sess.sealed {
		return nil, fmt.Errorf("shuffle: session %s not sealed", id)
	}
	if partition < 0 || partition >= len(sess.partitions) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadPartition, partition, len(sess.partitions))
	}
	return sess.partitions[partition], nil
}

// Checkpoint snapshots the session's current contents; Restore rolls
// back to it. Dremel uses shuffle checkpoints for dynamic query
// re-optimization (§2).
func (s *Service) Checkpoint(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, id)
	}
	cp := make([][][]byte, len(sess.partitions))
	for i, part := range sess.partitions {
		cp[i] = append([][]byte(nil), part...)
	}
	sess.checkpoint = cp
	return nil
}

// Restore rolls the session back to its last checkpoint.
func (s *Service) Restore(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, id)
	}
	if sess.checkpoint == nil {
		return fmt.Errorf("shuffle: session %s has no checkpoint", id)
	}
	sess.partitions = make([][][]byte, len(sess.checkpoint))
	for i, part := range sess.checkpoint {
		sess.partitions[i] = append([][]byte(nil), part...)
	}
	sess.sealed = false
	return nil
}

// Drop releases a session's memory.
func (s *Service) Drop(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, id)
}

// Partitions reports the partition count of a session.
func (s *Service) Partitions(id string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSession, id)
	}
	return len(sess.partitions), nil
}
