package shuffle

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"biglake/internal/sim"
)

func newSvc() *Service { return New(sim.NewClock(), nil) }

func TestSessionLifecycle(t *testing.T) {
	s := newSvc()
	id, err := s.CreateSession(4)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Partitions(id); n != 4 {
		t.Fatalf("partitions = %d", n)
	}
	if err := s.Write(id, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, 1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	// Reads before seal fail.
	if _, err := s.Read(id, 1); err == nil {
		t.Fatal("read before seal should fail")
	}
	s.Seal(id)
	got, err := s.Read(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "a" || string(got[1]) != "b" {
		t.Fatalf("read = %q", got)
	}
	empty, _ := s.Read(id, 0)
	if len(empty) != 0 {
		t.Fatal("untouched partition should be empty")
	}
}

func TestWriteAfterSealFails(t *testing.T) {
	s := newSvc()
	id, _ := s.CreateSession(1)
	s.Seal(id)
	if err := s.Write(id, 0, []byte("x")); !errors.Is(err, ErrSealed) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadSessionAndPartition(t *testing.T) {
	s := newSvc()
	if _, err := s.CreateSession(0); err == nil {
		t.Fatal("zero partitions should fail")
	}
	if err := s.Write("ghost", 0, nil); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
	id, _ := s.CreateSession(2)
	if err := s.Write(id, 5, nil); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("err = %v", err)
	}
	s.Seal(id)
	if _, err := s.Read(id, -1); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Read("ghost", 0); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
}

func TestPayloadsAreCopied(t *testing.T) {
	s := newSvc()
	id, _ := s.CreateSession(1)
	buf := []byte("hello")
	s.Write(id, 0, buf)
	buf[0] = 'X'
	s.Seal(id)
	got, _ := s.Read(id, 0)
	if string(got[0]) != "hello" {
		t.Fatal("shuffle must copy payloads")
	}
}

func TestCheckpointRestore(t *testing.T) {
	s := newSvc()
	id, _ := s.CreateSession(2)
	s.Write(id, 0, []byte("keep"))
	if err := s.Checkpoint(id); err != nil {
		t.Fatal(err)
	}
	s.Write(id, 0, []byte("discard"))
	s.Write(id, 1, []byte("discard2"))
	if err := s.Restore(id); err != nil {
		t.Fatal(err)
	}
	s.Seal(id)
	p0, _ := s.Read(id, 0)
	p1, _ := s.Read(id, 1)
	if len(p0) != 1 || string(p0[0]) != "keep" || len(p1) != 0 {
		t.Fatalf("restore: p0=%q p1=%q", p0, p1)
	}
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	s := newSvc()
	id, _ := s.CreateSession(1)
	if err := s.Restore(id); err == nil {
		t.Fatal("restore without checkpoint should fail")
	}
	if err := s.Checkpoint("ghost"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
}

func TestRestoreUnseals(t *testing.T) {
	s := newSvc()
	id, _ := s.CreateSession(1)
	s.Checkpoint(id)
	s.Seal(id)
	s.Restore(id)
	if err := s.Write(id, 0, []byte("x")); err != nil {
		t.Fatalf("write after restore: %v", err)
	}
}

func TestDrop(t *testing.T) {
	s := newSvc()
	id, _ := s.CreateSession(1)
	s.Drop(id)
	if _, err := s.Partitions(id); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	s := newSvc()
	id, _ := s.CreateSession(8)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := s.Write(id, (w+i)%8, []byte(fmt.Sprintf("%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Seal(id)
	total := 0
	for p := 0; p < 8; p++ {
		got, err := s.Read(id, p)
		if err != nil {
			t.Fatal(err)
		}
		total += len(got)
	}
	if total != 1600 {
		t.Fatalf("total payloads = %d", total)
	}
}
