// Package workload provides the synthetic benchmark substrates for
// the paper's evaluations: a TPC-DS-like star schema (store_sales fact
// plus date/item/customer/store dimensions) and a TPC-H-like schema
// (lineitem/orders/customer), with loaders that materialize them as
// BigLake tables on simulated object storage and query sets shaped
// like the power runs of §3.3/§3.4/§5.4. Scale factors are laptop
// sized; the paper's results are relative, and the pruning/stats
// behaviour that produces them is scale-invariant in shape.
package workload

import (
	"fmt"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// Env bundles the deployment services a loader needs.
type Env struct {
	Catalog *catalog.Catalog
	Auth    *security.Authority
	Store   *objstore.Store
	Log     *bigmeta.Log
	Clock   *sim.Clock
	// Cred is the delegated connection's service account; it must
	// already have write access to Bucket.
	Cred objstore.Credential
	// Connection is the catalog connection name for created tables.
	Connection string
	Bucket     string
	Cloud      string
	// Dataset receives the created tables.
	Dataset string
	// Admin grants table access after creation.
	Admin security.Principal
}

// Query is one benchmark query.
type Query struct {
	ID   string
	SQL  string
	Kind string // "prunable", "star-join", "scan", "aggregate"
}

// TPCDSConfig scales the star schema.
type TPCDSConfig struct {
	Dates        int // distinct sold-date partitions
	FilesPerDate int
	RowsPerFile  int
	Items        int
	Customers    int
	Stores       int
	Seed         uint64
}

// DefaultTPCDS returns a laptop-scale configuration; scale linearly
// multiplies the fact volume.
func DefaultTPCDS(scale int) TPCDSConfig {
	if scale < 1 {
		scale = 1
	}
	return TPCDSConfig{
		Dates:        10,
		FilesPerDate: 2 * scale,
		RowsPerFile:  500,
		Items:        200,
		Customers:    300,
		Stores:       10,
		Seed:         2024,
	}
}

// StoreSalesSchema is the fact table schema. sold_date is the hive
// partition key (files live under d=<yyyymmdd>/ prefixes).
func StoreSalesSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "sold_date", Type: vector.Int64},
		vector.Field{Name: "item_sk", Type: vector.Int64},
		vector.Field{Name: "customer_sk", Type: vector.Int64},
		vector.Field{Name: "store_sk", Type: vector.Int64},
		vector.Field{Name: "quantity", Type: vector.Int64},
		vector.Field{Name: "sales_price", Type: vector.Float64},
	)
}

// DateDimSchema is the date dimension.
func DateDimSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "d_date_sk", Type: vector.Int64},
		vector.Field{Name: "d_year", Type: vector.Int64},
		vector.Field{Name: "d_moy", Type: vector.Int64},
	)
}

// ItemSchema is the item dimension.
func ItemSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "i_item_sk", Type: vector.Int64},
		vector.Field{Name: "i_category", Type: vector.String},
		vector.Field{Name: "i_brand", Type: vector.String},
	)
}

// CustomerSchema is the customer dimension.
func CustomerSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "c_customer_sk", Type: vector.Int64},
		vector.Field{Name: "c_region", Type: vector.String},
	)
}

// StoreSchema is the store dimension.
func StoreSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "s_store_sk", Type: vector.Int64},
		vector.Field{Name: "s_state", Type: vector.String},
	)
}

var (
	categories = []string{"Books", "Electronics", "Home", "Sports", "Music", "Jewelry", "Shoes", "Toys"}
	regions    = []string{"amer", "emea", "apac"}
	states     = []string{"CA", "NY", "TX", "WA", "OR"}
)

// dateSK converts a date ordinal to the yyyymmdd-style surrogate key.
func dateSK(i int) int64 { return 20240100 + int64(i) + 1 }

// LoadTPCDS materializes the star schema: the fact as a
// hive-partitioned BigLake table, the dimensions as native tables
// registered in the Big Metadata log, and access grants for Admin.
func LoadTPCDS(env *Env, cfg TPCDSConfig) error {
	rng := sim.NewRNG(cfg.Seed)
	fact := catalog.Table{
		Dataset: env.Dataset, Name: "store_sales", Type: catalog.BigLake,
		Schema: StoreSalesSchema(), Cloud: env.Cloud, Bucket: env.Bucket,
		Prefix: "tpcds/store_sales/", Connection: env.Connection,
		PartitionColumn: "sold_date", MetadataCaching: true,
	}
	if err := env.Catalog.CreateTable(fact); err != nil {
		return err
	}
	for d := 0; d < cfg.Dates; d++ {
		for f := 0; f < cfg.FilesPerDate; f++ {
			// Within each date, files are range-clustered on item_sk
			// (the common "fact sorted by item" layout), which is what
			// lets per-file column statistics and dynamic partition
			// pruning skip whole files.
			itemLo := f * cfg.Items / cfg.FilesPerDate
			itemHi := (f + 1) * cfg.Items / cfg.FilesPerDate
			if itemHi <= itemLo {
				itemHi = itemLo + 1
			}
			bl := vector.NewBuilder(StoreSalesSchema())
			for r := 0; r < cfg.RowsPerFile; r++ {
				bl.Append(
					vector.IntValue(dateSK(d)),
					vector.IntValue(int64(itemLo+rng.Intn(itemHi-itemLo))),
					vector.IntValue(int64(rng.Intn(cfg.Customers))),
					vector.IntValue(int64(rng.Intn(cfg.Stores))),
					vector.IntValue(int64(1+rng.Intn(10))),
					vector.FloatValue(float64(rng.Intn(10000))/100),
				)
			}
			file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
			if err != nil {
				return err
			}
			key := fmt.Sprintf("tpcds/store_sales/sold_date=%d/part-%03d.blk", dateSK(d), f)
			if _, err := env.Store.Put(env.Cred, env.Bucket, key, file, "application/x-blk"); err != nil {
				return err
			}
		}
	}

	dims := []struct {
		name   string
		schema vector.Schema
		rows   func(bl *vector.Builder)
	}{
		{"date_dim", DateDimSchema(), func(bl *vector.Builder) {
			for d := 0; d < cfg.Dates; d++ {
				bl.Append(vector.IntValue(dateSK(d)), vector.IntValue(2024), vector.IntValue(int64(d%12)+1))
			}
		}},
		{"item", ItemSchema(), func(bl *vector.Builder) {
			// Category and brand are block-assigned over the item key
			// space, so a category filter selects a contiguous
			// item_sk range (the property DPP exploits).
			for i := 0; i < cfg.Items; i++ {
				bl.Append(vector.IntValue(int64(i)),
					vector.StringValue(categories[i*len(categories)/cfg.Items]),
					vector.StringValue(fmt.Sprintf("brand_%02d", i*30/cfg.Items)))
			}
		}},
		{"customer", CustomerSchema(), func(bl *vector.Builder) {
			for i := 0; i < cfg.Customers; i++ {
				bl.Append(vector.IntValue(int64(i)), vector.StringValue(regions[i%len(regions)]))
			}
		}},
		{"store", StoreSchema(), func(bl *vector.Builder) {
			for i := 0; i < cfg.Stores; i++ {
				bl.Append(vector.IntValue(int64(i)), vector.StringValue(states[i%len(states)]))
			}
		}},
	}
	for _, dim := range dims {
		if err := loadNative(env, dim.name, dim.schema, dim.rows); err != nil {
			return err
		}
	}

	for _, name := range []string{"store_sales", "date_dim", "item", "customer", "store"} {
		full := env.Dataset + "." + name
		if err := env.Auth.GrantTable(env.Admin, full, env.Admin, security.RoleOwner); err != nil {
			return err
		}
	}
	return nil
}

// loadNative writes a one-file native table committed through the log.
func loadNative(env *Env, name string, schema vector.Schema, fill func(*vector.Builder)) error {
	bl := vector.NewBuilder(schema)
	fill(bl)
	batch := bl.Build()
	file, err := colfmt.WriteFile(batch, colfmt.WriterOptions{})
	if err != nil {
		return err
	}
	key := fmt.Sprintf("native/%s/part-000.blk", name)
	info, err := env.Store.Put(env.Cred, env.Bucket, key, file, "application/x-blk")
	if err != nil {
		return err
	}
	if err := env.Catalog.CreateTable(catalog.Table{
		Dataset: env.Dataset, Name: name, Type: catalog.Native,
		Schema: schema, Cloud: env.Cloud, Bucket: env.Bucket,
		Prefix: fmt.Sprintf("native/%s/", name),
	}); err != nil {
		return err
	}
	footer, err := colfmt.ReadFooter(file)
	if err != nil {
		return err
	}
	stats := make(map[string]colfmt.ColumnStats)
	for _, f := range footer.Fields {
		if st, ok := footer.ColumnStatsFor(f.Name); ok {
			stats[f.Name] = st
		}
	}
	_, err = env.Log.Commit("loader", map[string]bigmeta.TableDelta{
		env.Dataset + "." + name: {Added: []bigmeta.FileEntry{{
			Bucket: env.Bucket, Key: key, Size: info.Size,
			RowCount: footer.Rows, ColumnStats: stats,
		}}},
	})
	return err
}

// TPCDSQueries returns the power-run query set over dataset ds. The
// mix mirrors Figure 4's spread: date-prunable scans (big cache
// speedups), snowflake joins with selective dimension filters
// (DPP-friendly), and unprunable full scans (small speedups).
func TPCDSQueries(ds string, cfg TPCDSConfig) []Query {
	day := dateSK(cfg.Dates / 2)
	lastDay := dateSK(cfg.Dates - 1)
	return []Query{
		{ID: "q01", Kind: "prunable", SQL: fmt.Sprintf(
			`SELECT COUNT(*) AS cnt, SUM(sales_price) AS revenue FROM %s.store_sales WHERE sold_date = %d`, ds, day)},
		{ID: "q02", Kind: "prunable", SQL: fmt.Sprintf(
			`SELECT store_sk, SUM(quantity) AS qty FROM %s.store_sales WHERE sold_date = %d GROUP BY store_sk ORDER BY qty DESC`, ds, lastDay)},
		{ID: "q03", Kind: "prunable", SQL: fmt.Sprintf(
			`SELECT AVG(sales_price) AS avg_price FROM %s.store_sales WHERE sold_date >= %d AND sold_date <= %d`, ds, day, dateSK(cfg.Dates/2+1))},
		{ID: "q04", Kind: "star-join", SQL: fmt.Sprintf(
			`SELECT i.i_category, SUM(ss.sales_price) AS revenue
			 FROM %s.store_sales AS ss JOIN %s.item AS i ON ss.item_sk = i.i_item_sk
			 WHERE ss.sold_date = %d GROUP BY i.i_category ORDER BY revenue DESC`, ds, ds, day)},
		{ID: "q05", Kind: "star-join", SQL: fmt.Sprintf(
			`SELECT c.c_region, COUNT(*) AS sales
			 FROM %s.store_sales AS ss JOIN %s.customer AS c ON ss.customer_sk = c.c_customer_sk
			 WHERE ss.sold_date >= %d GROUP BY c.c_region`, ds, ds, lastDay)},
		{ID: "q06", Kind: "star-join", SQL: fmt.Sprintf(
			`SELECT s.s_state, SUM(ss.quantity) AS qty
			 FROM %s.store_sales AS ss JOIN %s.store AS s ON ss.store_sk = s.s_store_sk
			 WHERE ss.sold_date = %d AND s.s_state = 'CA' GROUP BY s.s_state`, ds, ds, day)},
		{ID: "q07", Kind: "scan", SQL: fmt.Sprintf(
			`SELECT COUNT(*) AS cnt FROM %s.store_sales WHERE quantity >= 1`, ds)},
		{ID: "q08", Kind: "scan", SQL: fmt.Sprintf(
			`SELECT MAX(sales_price) AS mx, MIN(sales_price) AS mn FROM %s.store_sales`, ds)},
		{ID: "q09", Kind: "aggregate", SQL: fmt.Sprintf(
			`SELECT sold_date, COUNT(*) AS cnt FROM %s.store_sales GROUP BY sold_date ORDER BY sold_date`, ds)},
		{ID: "q10", Kind: "prunable", SQL: fmt.Sprintf(
			`SELECT SUM(quantity) AS qty FROM %s.store_sales WHERE sold_date = %d AND sales_price > 50.0`, ds, dateSK(0))},
		{ID: "q11", Kind: "star-join", SQL: fmt.Sprintf(
			`SELECT d.d_moy, SUM(ss.sales_price) AS revenue
			 FROM %s.store_sales AS ss JOIN %s.date_dim AS d ON ss.sold_date = d.d_date_sk
			 WHERE d.d_moy = 1 GROUP BY d.d_moy`, ds, ds)},
		{ID: "q12", Kind: "prunable", SQL: fmt.Sprintf(
			`SELECT item_sk, SUM(sales_price) AS rev FROM %s.store_sales WHERE sold_date = %d GROUP BY item_sk ORDER BY rev DESC LIMIT 10`, ds, day)},
	}
}
