package workload

// Golden-answer fixtures for the TPC-H workload: the exact rows every
// query returns at scale 1 are checked in, and any drift — however
// plausible-looking — fails this test. The ratio-based benchmark
// assertions cannot see a silently wrong answer; this can.
//
// Regenerate after an intentional semantic change with:
//
//	go test ./internal/workload -run TestTPCHGolden -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"biglake/internal/engine"
	"biglake/internal/vector"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

const goldenPath = "testdata/tpch_golden.txt"

// renderGolden gives results a stable, type-tagged textual form.
func renderGolden(qid string, b *vector.Batch) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s\n", qid)
	cols := make([]string, len(b.Schema.Fields))
	for i, f := range b.Schema.Fields {
		cols[i] = fmt.Sprintf("%s:%d", f.Name, f.Type)
	}
	fmt.Fprintf(&sb, "# %s\n", strings.Join(cols, " | "))
	for r := 0; r < b.N; r++ {
		row := b.Row(r)
		parts := make([]string, len(row))
		for i, v := range row {
			if v.IsNull() {
				parts[i] = "NULL"
			} else {
				parts[i] = v.String()
			}
		}
		sb.WriteString(strings.Join(parts, " | ") + "\n")
	}
	return sb.String()
}

func TestTPCHGolden(t *testing.T) {
	env, eng := newEnv(t)
	if err := LoadTPCH(env, DefaultTPCH(1)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, q := range TPCHQueries("bench") {
		res, err := eng.Query(engine.NewContext(adminP, q.ID), q.SQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		sb.WriteString(renderGolden(q.ID, res.Batch))
	}
	got := sb.String()

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("TPC-H answer drift at %s:%d\n  got:  %s\n  want: %s", goldenPath, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("TPC-H answer drift: %d lines vs %d in %s", len(gl), len(wl), goldenPath)
}
