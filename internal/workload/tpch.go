package workload

import (
	"fmt"

	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// TPCHConfig scales the TPC-H-like schema.
type TPCHConfig struct {
	Orders       int
	LinesPerFile int
	LineFiles    int
	Customers    int
	Seed         uint64
}

// DefaultTPCH returns a laptop-scale configuration.
func DefaultTPCH(scale int) TPCHConfig {
	if scale < 1 {
		scale = 1
	}
	return TPCHConfig{
		Orders:       600 * scale,
		LinesPerFile: 600,
		LineFiles:    4 * scale,
		Customers:    150,
		Seed:         1992,
	}
}

// LineitemSchema is the TPC-H fact.
func LineitemSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "l_orderkey", Type: vector.Int64},
		vector.Field{Name: "l_partkey", Type: vector.Int64},
		vector.Field{Name: "l_quantity", Type: vector.Int64},
		vector.Field{Name: "l_price", Type: vector.Float64},
		vector.Field{Name: "l_shipdate", Type: vector.Int64},
	)
}

// OrdersSchema is the TPC-H orders table.
func OrdersSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "o_orderkey", Type: vector.Int64},
		vector.Field{Name: "o_custkey", Type: vector.Int64},
		vector.Field{Name: "o_totalprice", Type: vector.Float64},
		vector.Field{Name: "o_orderdate", Type: vector.Int64},
	)
}

// TPCHCustomerSchema is the TPC-H customer table.
func TPCHCustomerSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "c_custkey", Type: vector.Int64},
		vector.Field{Name: "c_mktsegment", Type: vector.String},
	)
}

var segments = []string{"BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"}

// synthDate produces a yyyymmdd integer in [1992-01-01, 1997-12-28].
func synthDate(rng *sim.RNG) int64 {
	y := 1992 + rng.Intn(6)
	m := 1 + rng.Intn(12)
	d := 1 + rng.Intn(28)
	return int64(y)*10000 + int64(m)*100 + int64(d)
}

// LoadTPCH materializes lineitem as a BigLake table plus orders and
// customer as BigLake tables (all open-format files on the bucket), so
// external engines can run both the direct and Read API paths over
// them (E4).
func LoadTPCH(env *Env, cfg TPCHConfig) error {
	rng := sim.NewRNG(cfg.Seed)

	// lineitem: several files, orderkeys ascending for prunability.
	if err := env.Catalog.CreateTable(catalog.Table{
		Dataset: env.Dataset, Name: "lineitem", Type: catalog.BigLake,
		Schema: LineitemSchema(), Cloud: env.Cloud, Bucket: env.Bucket,
		Prefix: "tpch/lineitem/", Connection: env.Connection, MetadataCaching: true,
	}); err != nil {
		return err
	}
	next := int64(0)
	for f := 0; f < cfg.LineFiles; f++ {
		bl := vector.NewBuilder(LineitemSchema())
		for r := 0; r < cfg.LinesPerFile; r++ {
			bl.Append(
				vector.IntValue(next%int64(cfg.Orders)),
				vector.IntValue(int64(rng.Intn(500))),
				vector.IntValue(int64(1+rng.Intn(50))),
				vector.FloatValue(float64(rng.Intn(100000))/100),
				vector.IntValue(synthDate(rng)),
			)
			next++
		}
		file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			return err
		}
		key := fmt.Sprintf("tpch/lineitem/part-%03d.blk", f)
		if _, err := env.Store.Put(env.Cred, env.Bucket, key, file, "application/x-blk"); err != nil {
			return err
		}
	}

	// orders + customer as single-file BigLake tables.
	singles := []struct {
		name   string
		schema vector.Schema
		fill   func(*vector.Builder)
	}{
		{"orders", OrdersSchema(), func(bl *vector.Builder) {
			for i := 0; i < cfg.Orders; i++ {
				bl.Append(vector.IntValue(int64(i)),
					vector.IntValue(int64(i%cfg.Customers)),
					vector.FloatValue(float64(rng.Intn(500000))/100),
					vector.IntValue(synthDate(rng)))
			}
		}},
		{"customer", TPCHCustomerSchema(), func(bl *vector.Builder) {
			for i := 0; i < cfg.Customers; i++ {
				bl.Append(vector.IntValue(int64(i)), vector.StringValue(segments[i%len(segments)]))
			}
		}},
	}
	for _, s := range singles {
		if err := env.Catalog.CreateTable(catalog.Table{
			Dataset: env.Dataset, Name: s.name, Type: catalog.BigLake,
			Schema: s.schema, Cloud: env.Cloud, Bucket: env.Bucket,
			Prefix: fmt.Sprintf("tpch/%s/", s.name), Connection: env.Connection, MetadataCaching: true,
		}); err != nil {
			return err
		}
		bl := vector.NewBuilder(s.schema)
		s.fill(bl)
		file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			return err
		}
		key := fmt.Sprintf("tpch/%s/part-000.blk", s.name)
		if _, err := env.Store.Put(env.Cred, env.Bucket, key, file, "application/x-blk"); err != nil {
			return err
		}
	}
	for _, name := range []string{"lineitem", "orders", "customer"} {
		full := env.Dataset + "." + name
		if err := env.Auth.GrantTable(env.Admin, full, env.Admin, security.RoleOwner); err != nil {
			return err
		}
	}
	return nil
}

// TPCHQueries is the SQL query set for engine-side runs (E9).
func TPCHQueries(ds string) []Query {
	return []Query{
		{ID: "h01", Kind: "aggregate", SQL: fmt.Sprintf(
			`SELECT l_quantity, COUNT(*) AS cnt, SUM(l_price) AS total
			 FROM %s.lineitem WHERE l_shipdate <= 19930101 GROUP BY l_quantity ORDER BY l_quantity LIMIT 10`, ds)},
		{ID: "h03", Kind: "star-join", SQL: fmt.Sprintf(
			`SELECT o.o_orderkey, SUM(l.l_price) AS revenue
			 FROM %s.lineitem AS l JOIN %s.orders AS o ON l.l_orderkey = o.o_orderkey
			 WHERE o.o_totalprice > 4000.0 GROUP BY o.o_orderkey ORDER BY revenue DESC LIMIT 10`, ds, ds)},
		{ID: "h05", Kind: "star-join", SQL: fmt.Sprintf(
			`SELECT c.c_mktsegment, SUM(o.o_totalprice) AS total
			 FROM %s.orders AS o JOIN %s.customer AS c ON o.o_custkey = c.c_custkey
			 GROUP BY c.c_mktsegment ORDER BY total DESC`, ds, ds)},
		{ID: "h06", Kind: "prunable", SQL: fmt.Sprintf(
			`SELECT SUM(l_price) AS revenue FROM %s.lineitem
			 WHERE l_shipdate >= 19930101 AND l_quantity < 25`, ds)},
		{ID: "h12", Kind: "scan", SQL: fmt.Sprintf(
			`SELECT COUNT(*) AS cnt FROM %s.lineitem WHERE l_partkey >= 0`, ds)},
	}
}
