package workload

import (
	"testing"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/sim"
)

const adminP = security.Principal("admin@corp")

func newEnv(t *testing.T) (*Env, *engine.Engine) {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa@corp"}
	if err := store.CreateBucket(cred, "bench"); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	if err := cat.CreateDataset(catalog.Dataset{Name: "bench", Region: "gcp-us", Cloud: "gcp"}); err != nil {
		t.Fatal(err)
	}
	auth := security.NewAuthority("secret", adminP)
	auth.RegisterConnection(adminP, security.Connection{Name: "conn", ServiceAccount: cred, Cloud: "gcp"})
	log := bigmeta.NewLog(clock, nil)
	meta := bigmeta.NewCache(clock, nil)
	env := &Env{
		Catalog: cat, Auth: auth, Store: store, Log: log, Clock: clock,
		Cred: cred, Connection: "conn", Bucket: "bench", Cloud: "gcp",
		Dataset: "bench", Admin: adminP,
	}
	eng := engine.New(cat, auth, meta, log, clock, map[string]*objstore.Store{"gcp": store}, engine.DefaultOptions())
	eng.ManagedCred = cred
	return env, eng
}

func TestLoadTPCDSAndRunAllQueries(t *testing.T) {
	env, eng := newEnv(t)
	cfg := DefaultTPCDS(1)
	if err := LoadTPCDS(env, cfg); err != nil {
		t.Fatal(err)
	}
	// Fact files on the bucket, one prefix per date partition.
	if n := env.Store.ObjectCount("bench", "tpcds/store_sales/"); n != cfg.Dates*cfg.FilesPerDate {
		t.Fatalf("fact files = %d", n)
	}
	for _, q := range TPCDSQueries("bench", cfg) {
		res, err := eng.Query(engine.NewContext(adminP, q.ID), q.SQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if res.Batch.N == 0 && q.Kind != "prunable" {
			t.Fatalf("%s returned no rows", q.ID)
		}
	}
}

func TestTPCDSPrunableQueriesPrune(t *testing.T) {
	env, eng := newEnv(t)
	cfg := DefaultTPCDS(1)
	if err := LoadTPCDS(env, cfg); err != nil {
		t.Fatal(err)
	}
	q := TPCDSQueries("bench", cfg)[0] // q01: single-date
	res, err := eng.Query(engine.NewContext(adminP, "q"), q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FilesPruned == 0 {
		t.Fatal("q01 should prune partitions")
	}
	if res.Stats.FilesScanned != int64(cfg.FilesPerDate) {
		t.Fatalf("scanned %d files, want %d", res.Stats.FilesScanned, cfg.FilesPerDate)
	}
	// Row counts are exact: one date partition's worth.
	if got := res.Batch.Column("cnt").Value(0).AsInt(); got != int64(cfg.FilesPerDate*cfg.RowsPerFile) {
		t.Fatalf("cnt = %d", got)
	}
}

func TestTPCDSDeterministic(t *testing.T) {
	env1, eng1 := newEnv(t)
	env2, eng2 := newEnv(t)
	cfg := DefaultTPCDS(1)
	if err := LoadTPCDS(env1, cfg); err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCDS(env2, cfg); err != nil {
		t.Fatal(err)
	}
	q := TPCDSQueries("bench", cfg)[7] // q08 min/max
	r1, err := eng1.Query(engine.NewContext(adminP, "q"), q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng2.Query(engine.NewContext(adminP, "q"), q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Batch.Row(0)[0].AsFloat() != r2.Batch.Row(0)[0].AsFloat() {
		t.Fatal("generator is not deterministic")
	}
}

func TestLoadTPCHAndRunAllQueries(t *testing.T) {
	env, eng := newEnv(t)
	cfg := DefaultTPCH(1)
	if err := LoadTPCH(env, cfg); err != nil {
		t.Fatal(err)
	}
	for _, q := range TPCHQueries("bench") {
		res, err := eng.Query(engine.NewContext(adminP, q.ID), q.SQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if res.Batch.N == 0 {
			t.Fatalf("%s returned no rows", q.ID)
		}
	}
}

func TestTPCHRowCounts(t *testing.T) {
	env, eng := newEnv(t)
	cfg := DefaultTPCH(1)
	if err := LoadTPCH(env, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(engine.NewContext(adminP, "q"), "SELECT COUNT(*) AS n FROM bench.lineitem")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.LineFiles * cfg.LinesPerFile)
	if res.Batch.Column("n").Value(0).AsInt() != want {
		t.Fatalf("lineitem rows = %v, want %d", res.Batch.Row(0), want)
	}
	res, _ = eng.Query(engine.NewContext(adminP, "q"), "SELECT COUNT(*) AS n FROM bench.orders")
	if res.Batch.Column("n").Value(0).AsInt() != int64(cfg.Orders) {
		t.Fatalf("orders rows = %v", res.Batch.Row(0))
	}
}

func TestScaleGrowsVolume(t *testing.T) {
	c1, c2 := DefaultTPCDS(1), DefaultTPCDS(3)
	if c2.FilesPerDate <= c1.FilesPerDate {
		t.Fatal("scale should grow fact volume")
	}
	if DefaultTPCDS(0).FilesPerDate != c1.FilesPerDate {
		t.Fatal("scale 0 should clamp to 1")
	}
	if DefaultTPCH(2).LineFiles <= DefaultTPCH(1).LineFiles {
		t.Fatal("tpch scale")
	}
}

func TestQueryKindsCovered(t *testing.T) {
	kinds := map[string]int{}
	for _, q := range TPCDSQueries("d", DefaultTPCDS(1)) {
		kinds[q.Kind]++
	}
	for _, want := range []string{"prunable", "star-join", "scan", "aggregate"} {
		if kinds[want] == 0 {
			t.Fatalf("no %s queries in the set", want)
		}
	}
}
