// Package engine implements the Dremel stand-in: BigQuery's massively
// parallel in-situ query engine (§2.1). It parses GoogleSQL (via
// internal/sqlparse), plans scans with metadata-cache-driven partition
// and file pruning (§3.3), enforces governance on every scan through
// the shared security.Authority implementation (§3.2), executes joins,
// aggregation and ordering over vectorized batches, supports dynamic
// partition pruning from dimension filters (§3.4), and dispatches the
// ML table-valued functions of §4.2 to a registered inference runtime.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"biglake/internal/arena"
	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/security"
	"biglake/internal/shuffle"
	"biglake/internal/sim"
	"biglake/internal/sqlparse"
	"biglake/internal/systables"
	"biglake/internal/vector"
)

// Errors returned by query execution.
var (
	ErrUnsupported = errors.New("engine: unsupported")
	ErrNoSuchFunc  = errors.New("engine: unknown function")
	ErrSemantic    = errors.New("engine: semantic error")
	// ErrNoTxn reports BEGIN/COMMIT/ROLLBACK reaching the bare engine:
	// transaction control only has meaning inside an interactive
	// session (internal/txn), which intercepts these statements before
	// dispatching to Execute.
	ErrNoTxn = errors.New("engine: transaction control requires an interactive transaction session")
)

// ScanWorkers is the per-scan parallelism of the worker pool.
const ScanWorkers = 16

// QueryRetryBudget is the total number of object-store retries one
// query may spend across all its operations; past it, faults surface
// even if individual operations still have attempts left.
const QueryRetryBudget = 64

// ScalarFunc implements a registered scalar function (e.g.
// ML.DECODE_IMAGE). It receives evaluated argument columns and the
// query context and returns a result column of b.N rows.
type ScalarFunc func(ctx *QueryContext, args []*vector.Column) (*vector.Column, error)

// TVFFunc implements a registered table-valued function (e.g.
// ML.PREDICT): it receives the evaluated input relation and returns
// the output relation.
type TVFFunc func(ctx *QueryContext, model string, input *vector.Batch) (*vector.Batch, error)

// TxnView is the engine-facing surface of an interactive transaction
// session (internal/txn). When a QueryContext carries one, every
// managed-table scan is pinned to the transaction's snapshot version,
// overlaid with the session's buffered (uncommitted) writes, and
// reported back as part of the file-level read set used for optimistic
// conflict detection at commit.
type TxnView interface {
	// SnapshotVersion is the log version every read inside the
	// transaction is pinned to, across all tables.
	SnapshotVersion() int64
	// Overlay returns the session's buffered effect on one table: keys
	// the transaction logically removed (skipped during scan) and
	// batches it logically added (appended after the scan, before the
	// residual WHERE re-check).
	Overlay(table string) (removed map[string]bool, added []*vector.Batch)
	// ObserveRead records the snapshot files a scan consumed, feeding
	// the transaction's read set.
	ObserveRead(table string, files []bigmeta.FileEntry)
}

// Mutator handles DML against managed storage (wired to internal/blmt
// by the top-level client to avoid an import cycle).
type Mutator interface {
	Insert(ctx *QueryContext, table string, rows *vector.Batch) error
	Delete(ctx *QueryContext, table string, where func(*vector.Batch) ([]bool, error)) (int64, error)
	Update(ctx *QueryContext, table string, set func(*vector.Batch) (*vector.Batch, error), where func(*vector.Batch) ([]bool, error)) (int64, error)
	CreateTableAs(ctx *QueryContext, table string, orReplace bool, rows *vector.Batch) error
}

// Options tunes engine behaviour for experiments.
type Options struct {
	// UseMetadataCache enables §3.3 acceleration for tables that have
	// it configured (E1's on/off switch).
	UseMetadataCache bool
	// EnableDPP turns on dynamic partition pruning: selective
	// dimension filters are turned into range predicates on the fact
	// scan (§3.4).
	EnableDPP bool
	// PruneGranularity selects partition-only vs file-level pruning
	// (ablation A1).
	PruneGranularity bigmeta.PruneGranularity
	// MorselWorkers bounds the CPU parallelism of the vectorized join
	// and aggregation kernels. 0 means runtime.GOMAXPROCS capped at 8.
	// Results are bit-identical for every worker count.
	MorselWorkers int
	// EnableScanCache turns on the generation-keyed decoded-file cache:
	// repeated scans of an unchanged object skip both the GET and the
	// decode. Off by default — experiments opt in.
	EnableScanCache bool
	// ScanCacheBytes is the cache's decoded-byte budget (0 = default).
	ScanCacheBytes int64
	// RowAtATimeExec forces the historical row-at-a-time join and
	// aggregation paths; kept as the baseline for the E15 speedup
	// comparison and as the reference arm of differential tests.
	RowAtATimeExec bool
	// SkipQuarantined lets scans skip integrity-quarantined files with
	// a warning event ("integrity.warnings") instead of failing the
	// query with a typed error — an explicit opt-in for
	// availability-over-completeness workloads. Off by default: wrong
	// is worse than down, and silently narrowing results must be a
	// conscious choice.
	SkipQuarantined bool
	// GCLean runs the vectorized path with a recycled per-query arena
	// and dictionary late materialization: kernel scratch and outputs
	// are carved from pooled slabs instead of the heap, and string
	// columns stay dictionary codes through filter/join/group/order,
	// decoding only at result emission. Results are bit-identical to
	// the eager heap path (the oracle matrix runs with it on); it is
	// the baseline-off arm of E20. Ignored under RowAtATimeExec.
	GCLean bool
	// ArenaRetainBytes caps how much slab capacity one recycled arena
	// may keep between queries (0 = arena.DefaultRetainBytes). Size it
	// to the workload's per-query peak: a query whose working set
	// exceeds the cap still runs, but its arena is trimmed back on
	// release and the excess is re-made from the heap next time.
	ArenaRetainBytes int64
}

// DefaultOptions is the production configuration.
func DefaultOptions() Options {
	return Options{
		UseMetadataCache: true,
		EnableDPP:        true,
		PruneGranularity: bigmeta.PruneFiles,
		GCLean:           true,
	}
}

// execWorkers resolves the effective morsel worker count.
func (e *Engine) execWorkers() int {
	if e.Opts.MorselWorkers > 0 {
		return e.Opts.MorselWorkers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Engine is one region's query engine instance.
type Engine struct {
	Catalog *catalog.Catalog
	Auth    *security.Authority
	Meta    *bigmeta.Cache
	Log     *bigmeta.Log
	Clock   *sim.Clock
	Shuffle *shuffle.Service
	Meter   *sim.Meter
	Opts    Options
	// Obs is the unified metrics registry the engine publishes into
	// ("engine.*" counters, "resilience.*" via the policy tee). New
	// creates a private one; UseObs installs a shared one.
	Obs *obs.Registry
	// Tracer, when set, records a trace-span tree for every query that
	// does not arrive with one already attached. Nil disables tracing
	// at near-zero cost (nil-span fast paths).
	Tracer *obs.Tracer
	// Res is the retry/hedging policy applied to every object-store
	// operation the engine issues. Nil behaves like resilience.NoRetry.
	Res *resilience.Policy

	// Stores maps cloud name -> that cloud's object store.
	Stores map[string]*objstore.Store

	// Sys serves the virtual "system" dataset: live telemetry
	// (system.jobs, system.metrics, system.slo, ...) synthesized as
	// columnar batches at scan time. Execute records a job record per
	// statement unless the context opts out (the serve layer does, and
	// records at cursor close instead).
	Sys *systables.Provider

	// ManagedCred is the internal credential for BigQuery managed
	// storage (native tables).
	ManagedCred objstore.Credential

	mu      sync.RWMutex
	scalars map[string]ScalarFunc
	tvfs    map[string]TVFFunc
	mutator Mutator

	// ec holds pre-resolved registry handles for the hot mirror path.
	ec engCounters

	// scanCache holds decoded file contents keyed by object generation;
	// nil unless Options.EnableScanCache is set.
	scanCache *scanCache

	// arenas recycles per-query execution arenas when Options.GCLean is
	// set; stats are mirrored into the registry after every query.
	arenas *arena.Pool

	// stmts caches parsed statements by SQL text when Options.GCLean is
	// set. Parsed ASTs are immutable once built — the executor never
	// writes into a statement node — so a repeated statement (the
	// prepared-statement and dashboard pattern) skips the lexer and
	// parser entirely and allocates nothing.
	stmtMu sync.Mutex
	stmts  map[string]sqlparse.Statement
}

// stmtCacheCap bounds the statement cache. Overflow resets the whole
// map rather than tracking recency: the cache exists to make repeated
// statements allocation-free, and an LRU list would put allocations
// back on the hit path it is trying to clear.
const stmtCacheCap = 1024

// New assembles an engine.
func New(cat *catalog.Catalog, auth *security.Authority, meta *bigmeta.Cache, log *bigmeta.Log, clock *sim.Clock, stores map[string]*objstore.Store, opts Options) *Engine {
	meter := &sim.Meter{}
	reg := obs.NewRegistry()
	res := resilience.DefaultPolicy()
	// Retry/hedge counters land in the legacy meter under their short
	// names and in the registry under "resilience.*".
	res.Meter = obs.Tee(meter, reg.Prefixed("resilience."))
	eng := &Engine{
		Catalog: cat,
		Auth:    auth,
		Meta:    meta,
		Log:     log,
		Clock:   clock,
		Shuffle: shuffle.New(clock, nil),
		Meter:   meter,
		Opts:    opts,
		Obs:     reg,
		Res:     res,
		Stores:  stores,
		scalars: make(map[string]ScalarFunc),
		tvfs:    make(map[string]TVFFunc),
		ec:      resolveEngCounters(reg),
		arenas:  arena.NewPoolSized(0, opts.ArenaRetainBytes),
		Sys:     systables.NewProvider(clock, reg, log),
	}
	if opts.EnableScanCache {
		eng.scanCache = newScanCache(opts.ScanCacheBytes)
		eng.scanCache.observe(eng.ec.cacheEntries, eng.ec.cacheBytes)
	}
	return eng
}

// RegisterScalar installs a scalar function under an upper-case name.
func (e *Engine) RegisterScalar(name string, fn ScalarFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.scalars[name] = fn
}

// RegisterTVF installs a table-valued function.
func (e *Engine) RegisterTVF(name string, fn TVFFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tvfs[name] = fn
}

// SetMutator wires the DML handler.
func (e *Engine) SetMutator(m Mutator) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mutator = m
}

func (e *Engine) scalar(name string) (ScalarFunc, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	fn, ok := e.scalars[name]
	return fn, ok
}

func (e *Engine) tvf(name string) (TVFFunc, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	fn, ok := e.tvfs[name]
	return fn, ok
}

// ExecStats records observable execution behaviour for experiments.
type ExecStats struct {
	FilesScanned int64
	FilesPruned  int64
	ListCalls    int64
	FooterReads  int64
	BytesScanned int64
	RowsScanned  int64
	// CacheHits / CacheMisses count scan-cache lookups: a hit serves a
	// file's decoded batch without re-fetching or re-decoding it.
	CacheHits   int64
	CacheMisses int64
	// QuarantineSkips counts quarantined files the scan omitted under
	// Options.SkipQuarantined (each omission also logs a warning).
	QuarantineSkips int64
	SimStart        time.Duration
	SimElapsed      time.Duration
}

// QueryContext carries per-query identity and accounting.
type QueryContext struct {
	Principal security.Principal
	QueryID   string
	Region    string
	// Scope, when set, narrows every delegated credential used by this
	// query to the given object-path prefixes — Omni's per-query
	// credential scoping (§5.3.1), limiting the blast radius of a
	// compromised worker to the paths the query legitimately needs.
	Scope []string
	// Deadline, when > 0, bounds the query to that much simulated time
	// from execution start; once it passes, every further object-store
	// operation fails with resilience.ErrDeadlineExceeded, so a retry
	// storm cannot run unbounded.
	Deadline time.Duration
	// Budget is the per-query retry budget; Execute seeds one from the
	// query ID when unset.
	Budget *resilience.Budget
	Stats  ExecStats
	// Trace is the query's span tree. The code path that starts it owns
	// it: Execute finishes only traces it started itself, so a caller
	// (omni, ExplainAnalyze) that pre-attaches one keeps control of its
	// lifetime.
	Trace *obs.Trace
	// Span is the current parent span; operators nest children under it
	// and restore it on exit. Nil when tracing is off — every span call
	// is nil-safe and allocation-free in that state.
	Span *obs.Span
	// Txn, when set, pins scans to a transaction snapshot and overlays
	// the session's buffered writes (see TxnView).
	Txn TxnView
	// Mutator, when set, overrides the engine's installed DML handler
	// for this query — transaction sessions route DML into their write
	// buffer this way.
	Mutator Mutator

	// SQLText is the statement's source text, recorded into
	// system.jobs. Query sets it; callers that Parse themselves (the
	// serve layer) set it before Execute.
	SQLText string
	// SkipJobRecord suppresses Execute's job recording for this
	// statement. The serve layer sets it and records at cursor close,
	// so every statement lands in system.jobs exactly once.
	SkipJobRecord bool

	// mem is the query's memory policy: the arena every kernel draws
	// scratch and outputs from, plus the late-materialization flag.
	// Execute installs it for the statement's duration and resets it
	// before releasing the arena, so a context reused across statements
	// (txn sessions) never carries a recycled allocator.
	mem vector.Mem
}

// NewContext builds a query context.
func NewContext(p security.Principal, queryID string) *QueryContext {
	return &QueryContext{Principal: p, QueryID: queryID}
}

// Cancel cooperatively kills the query by collapsing its retry budget:
// the next deadline check any operation performs fails with
// resilience.ErrCanceled. Callers that need to cancel from another
// goroutine must seed Budget before execution starts (the serve layer
// does); with a nil Budget this is a no-op.
func (ctx *QueryContext) Cancel() { ctx.Budget.Cancel() }

// Result is a completed query.
type Result struct {
	Batch *vector.Batch
	Stats ExecStats
}

// Query parses and executes one SQL statement on behalf of the
// context's principal.
func (e *Engine) Query(ctx *QueryContext, sql string) (*Result, error) {
	if e.ensureTrace(ctx) {
		defer ctx.Trace.Finish()
	}
	var psp *obs.Span
	if ctx.Span != nil {
		psp = ctx.Span.Child("parse")
	}
	stmt, hit, err := e.Parse(sql)
	if hit && psp != nil {
		psp.SetStr("cache", "hit")
	}
	psp.End()
	if err != nil {
		return nil, err
	}
	if ctx.SQLText == "" {
		ctx.SQLText = sql
	}
	return e.Execute(ctx, stmt)
}

// Parse returns the statement for one SQL text, serving repeats from
// the GC-lean statement cache (hit reports whether it did). Callers
// must treat the returned AST as immutable — it may be shared with
// concurrent queries.
func (e *Engine) Parse(sql string) (stmt sqlparse.Statement, hit bool, err error) {
	if !e.Opts.GCLean {
		stmt, err = sqlparse.Parse(sql)
		return stmt, false, err
	}
	e.stmtMu.Lock()
	stmt, hit = e.stmts[sql]
	e.stmtMu.Unlock()
	if hit {
		return stmt, true, nil
	}
	stmt, err = sqlparse.Parse(sql)
	if err != nil {
		return nil, false, err
	}
	e.stmtMu.Lock()
	if e.stmts == nil || len(e.stmts) >= stmtCacheCap {
		e.stmts = make(map[string]sqlparse.Statement, 64)
	}
	e.stmts[sql] = stmt
	e.stmtMu.Unlock()
	return stmt, false, nil
}

// Execute runs a parsed statement and, unless the context opts out,
// records its terminal state into the system.jobs ring. Recording
// happens strictly after execution returns, so a statement scanning
// system.jobs sees the ring as of before itself — never a partial
// record of its own run (the self-observation rule).
func (e *Engine) Execute(ctx *QueryContext, stmt sqlparse.Statement) (*Result, error) {
	if ctx.SkipJobRecord || !e.Sys.Enabled() {
		return e.executeStmt(ctx, stmt)
	}
	pre := ctx.Stats
	wallStart := time.Now()
	res, err := e.executeStmt(ctx, stmt)
	rec := systables.JobRecord{
		QueryID:         ctx.QueryID,
		Principal:       string(ctx.Principal),
		SQL:             ctx.SQLText,
		Kind:            sqlparse.Kind(stmt),
		Class:           QueryClass(stmt),
		State:           systables.StateDone,
		Start:           ctx.Stats.SimStart,
		ExecSim:         ctx.Stats.SimElapsed,
		Wall:            time.Since(wallStart),
		RowsScanned:     ctx.Stats.RowsScanned - pre.RowsScanned,
		BytesScanned:    ctx.Stats.BytesScanned - pre.BytesScanned,
		CacheHits:       ctx.Stats.CacheHits - pre.CacheHits,
		QuarantineSkips: ctx.Stats.QuarantineSkips - pre.QuarantineSkips,
	}
	if err != nil {
		rec.ErrorClass = systables.ClassifyError(err)
		if rec.ErrorClass == "cancelled" {
			rec.State = systables.StateCancelled
		} else {
			rec.State = systables.StateFailed
		}
	} else if res != nil && res.Batch != nil {
		rec.RowsReturned = int64(res.Batch.N)
	}
	e.Sys.RecordJob(rec)
	return res, err
}

// QueryClass buckets a statement for SLO accounting: selects with
// grouping, joins, or aggregates are "olap", other selects "point",
// DML "dml", transaction control "txn".
func QueryClass(stmt sqlparse.Statement) string {
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		if len(s.GroupBy) > 0 || len(s.Joins) > 0 {
			return "olap"
		}
		for _, it := range s.Items {
			if !it.Star && sqlparse.IsAggregate(it.Expr) {
				return "olap"
			}
		}
		return "point"
	case *sqlparse.InsertStmt, *sqlparse.UpdateStmt, *sqlparse.DeleteStmt, *sqlparse.CreateTableAsStmt:
		return "dml"
	case *sqlparse.BeginStmt, *sqlparse.CommitStmt, *sqlparse.RollbackStmt:
		return "txn"
	}
	return "other"
}

func (e *Engine) executeStmt(ctx *QueryContext, stmt sqlparse.Statement) (*Result, error) {
	owned := e.ensureTrace(ctx)
	pre := ctx.Stats
	parentSpan := ctx.Span
	var exec *obs.Span
	if parentSpan != nil {
		exec = parentSpan.Child("execute")
		ctx.Span = exec
	}
	ctx.Stats.SimStart = e.Clock.Now()
	defer func() {
		ctx.Stats.SimElapsed = e.Clock.Now() - ctx.Stats.SimStart
		exec.End()
		ctx.Span = parentSpan
		e.mirrorStats(pre, ctx.Stats)
		if owned {
			ctx.Trace.Finish()
		}
	}()
	if e.Opts.GCLean && !e.Opts.RowAtATimeExec && ctx.mem.Al == nil && e.arenas != nil {
		ar := e.arenas.Get()
		ctx.mem = vector.Mem{Al: ar, LateMat: true}
		// Runs before the span-ending defer above (LIFO), so the arena
		// footprint lands on the execute span for EXPLAIN ANALYZE.
		defer func() {
			if exec != nil {
				exec.SetInt("arena_bytes", ar.Bytes())
			}
			ctx.mem = vector.Mem{}
			ar.Release()
			st := e.arenas.Stats()
			e.ec.arenaBytes.Set(st.BytesRetained)
			e.ec.arenaRecycled.Set(st.Recycled)
		}()
	}
	if ctx.Budget == nil {
		ctx.Budget = resilience.NewBudget(e.Clock, QueryRetryBudget, resilience.Seed64(ctx.QueryID))
	}
	if ctx.Deadline > 0 {
		ctx.Budget.SetDeadline(ctx.Stats.SimStart + ctx.Deadline)
	}
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		b, err := e.execSelect(ctx, s)
		if err != nil {
			return nil, err
		}
		// Deadline enforcement at completion: a query whose I/O pushed
		// the clock past the deadline is killed even if every individual
		// operation squeaked through its per-attempt check.
		if err := ctx.Budget.CheckDeadline(e.Clock); err != nil {
			return nil, err
		}
		if exec != nil {
			exec.SetInt("rows", int64(b.N))
		}
		// Copy-out boundary: the result must survive the arena being
		// recycled by the next query.
		b = vector.DetachBatch(b)
		ctx.Stats.SimElapsed = e.Clock.Now() - ctx.Stats.SimStart
		return &Result{Batch: b, Stats: ctx.Stats}, nil
	case *sqlparse.InsertStmt:
		return e.execInsert(ctx, s)
	case *sqlparse.UpdateStmt:
		return e.execUpdate(ctx, s)
	case *sqlparse.DeleteStmt:
		return e.execDelete(ctx, s)
	case *sqlparse.CreateTableAsStmt:
		return e.execCTAS(ctx, s)
	case *sqlparse.BeginStmt, *sqlparse.CommitStmt, *sqlparse.RollbackStmt:
		return nil, ErrNoTxn
	}
	return nil, fmt.Errorf("%w: statement %T", ErrUnsupported, stmt)
}

func (e *Engine) store(cloud string) (*objstore.Store, error) {
	st, ok := e.Stores[cloud]
	if !ok {
		return nil, fmt.Errorf("engine: no object store for cloud %q", cloud)
	}
	return st, nil
}

// connectionCred resolves the delegated-access credential for a table
// (§3.1). Native tables use the engine's managed-storage credential.
func (e *Engine) connectionCred(t catalog.Table) (objstore.Credential, error) {
	if t.Type == catalog.Native {
		return e.ManagedCred, nil
	}
	if t.Connection == "" {
		// Legacy external tables use a per-deployment reader
		// credential (the pre-BigLake model with no fine-grained
		// governance attached).
		return e.ManagedCred, nil
	}
	conn, err := e.Auth.Connection(t.Connection)
	if err != nil {
		return objstore.Credential{}, err
	}
	return conn.ServiceAccount, nil
}

// credForCtx resolves the table credential and applies the context's
// per-query scope if any.
func (e *Engine) credForCtx(ctx *QueryContext, t catalog.Table) (objstore.Credential, error) {
	cred, err := e.connectionCred(t)
	if err != nil {
		return objstore.Credential{}, err
	}
	if len(ctx.Scope) == 0 {
		return cred, nil
	}
	return cred.WithScope(ctx.Scope...)
}
