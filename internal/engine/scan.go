package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/integrity"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/sim"
	"biglake/internal/sqlparse"
	"biglake/internal/systables"
	"biglake/internal/vector"
)

// scanTable reads a catalog table in situ, applying pushdown
// predicates for pruning and governance before any row leaves the
// trust boundary. The returned batch carries the table's bare column
// names.
func (e *Engine) scanTable(ctx *QueryContext, name string, preds []colfmt.Predicate) (*vector.Batch, error) {
	if parent := ctx.Span; parent != nil {
		sp := parent.Child("scan " + name)
		ctx.Span = sp
		pre := ctx.Stats
		defer func() {
			sp.SetInt("files", ctx.Stats.FilesScanned-pre.FilesScanned)
			sp.SetInt("pruned", ctx.Stats.FilesPruned-pre.FilesPruned)
			sp.SetInt("bytes", ctx.Stats.BytesScanned-pre.BytesScanned)
			sp.SetInt("rows", ctx.Stats.RowsScanned-pre.RowsScanned)
			if d := ctx.Stats.CacheHits - pre.CacheHits; d > 0 {
				sp.SetInt("cache_hits", d)
			}
			if d := ctx.Stats.CacheMisses - pre.CacheMisses; d > 0 {
				sp.SetInt("cache_misses", d)
			}
			sp.End()
			ctx.Span = parent
		}()
	}
	// The "system" dataset is virtual: catalog resolution falls through
	// to the telemetry provider, which synthesizes a columnar batch
	// from live snapshots — no files, no scan cache, and no governance
	// (system telemetry is readable by any principal; see DESIGN.md
	// "Queryable telemetry & SLOs").
	if systables.Is(name) {
		return e.scanSystemTable(ctx, name, preds)
	}

	t, err := e.Catalog.Table(name)
	if err != nil {
		return nil, err
	}
	if err := e.Auth.CheckRead(ctx.Principal, name); err != nil {
		return nil, err
	}

	var batch *vector.Batch
	switch t.Type {
	case catalog.Object:
		batch, err = e.scanObjectTable(ctx, t)
	case catalog.Native, catalog.Managed:
		batch, err = e.scanManagedTable(ctx, t, preds)
	default: // External, BigLake
		batch, err = e.scanLakeTable(ctx, t, preds)
	}
	if err != nil {
		return nil, err
	}

	// Governance is applied inside the engine for every scan — the
	// same implementation the Read API uses (§3.2).
	return e.Auth.ApplyGovernance(ctx.Principal, name, batch)
}

// scanSystemTable synthesizes one system.* table from the telemetry
// provider. Pushdown predicates on columns the table actually has are
// applied here (the normal pruning contract); the rest fall through to
// the residual WHERE in execSelect.
func (e *Engine) scanSystemTable(ctx *QueryContext, name string, preds []colfmt.Predicate) (*vector.Batch, error) {
	b, err := e.Sys.Scan(name)
	if err != nil {
		return nil, err
	}
	applicable := preds[:0:0]
	for _, p := range preds {
		if b.Column(p.Column) != nil {
			applicable = append(applicable, p)
		}
	}
	if len(applicable) > 0 {
		mask, err := colfmt.EvalPredicatesWith(ctx.mem.Al, b, applicable)
		if err != nil {
			return nil, err
		}
		b, err = vector.FilterWith(ctx.mem, b, mask)
		if err != nil {
			return nil, err
		}
	}
	ctx.Stats.RowsScanned += int64(b.N)
	return b, nil
}

// scanLakeTable reads an External or BigLake table from object
// storage. With metadata caching the file set comes from Big Metadata
// (no LIST, no footer peeks); without it the engine pays the full
// object-store metadata cost on the query's critical path (§3.3).
func (e *Engine) scanLakeTable(ctx *QueryContext, t catalog.Table, preds []colfmt.Predicate) (*vector.Batch, error) {
	store, err := e.store(t.Cloud)
	if err != nil {
		return nil, err
	}
	cred, err := e.credForCtx(ctx, t)
	if err != nil {
		return nil, err
	}

	var files []bigmeta.FileEntry
	useCache := e.Opts.UseMetadataCache && t.MetadataCaching && t.Type == catalog.BigLake
	if useCache {
		refreshedAt, ok := e.Meta.RefreshedAt(t.FullName())
		stale := ok && t.MetadataStaleness > 0 && e.Clock.Now()-refreshedAt > t.MetadataStaleness
		if !ok || stale {
			// First touch or staleness-interval expiry: rebuild the
			// cache (normally a background maintenance task; §3.3).
			var msp *obs.Span
			if ctx.Span != nil {
				msp = ctx.Span.Child("meta.refresh")
			}
			_, err := e.Meta.Refresh(t.FullName(), store, cred, t.Bucket, t.Prefix, bigmeta.RefreshOptions{WithFileStats: true, Background: true})
			msp.End()
			if err != nil {
				return nil, err
			}
		}
		var psp *obs.Span
		if ctx.Span != nil {
			psp = ctx.Span.Child("meta.prune")
			psp.SetInt("granularity", int64(e.Opts.PruneGranularity))
		}
		all, err := e.Meta.Files(t.FullName())
		if err != nil {
			psp.End()
			return nil, err
		}
		files, err = e.Meta.Prune(t.FullName(), preds, e.Opts.PruneGranularity)
		if err != nil {
			psp.End()
			return nil, err
		}
		psp.SetInt("files_total", int64(len(all)))
		psp.SetInt("files_kept", int64(len(files)))
		psp.End()
		ctx.Stats.FilesPruned += int64(len(all) - len(files))
	} else {
		// Slow path: list the bucket, then peek at each file's footer
		// to decide skippability — all on the critical path.
		var lsp *obs.Span
		if ctx.Span != nil {
			lsp = ctx.Span.Child("list")
		}
		infos, err := resilience.ListAll(e.Res, e.Clock, ctx.Budget, store, cred, t.Bucket, t.Prefix)
		if lsp != nil {
			lsp.SetInt("objects", int64(len(infos)))
		}
		lsp.End()
		if err != nil {
			return nil, err
		}
		ctx.Stats.ListCalls++
		entries := make([]bigmeta.FileEntry, len(infos))
		tracks := startTracks(e.Clock, ScanWorkers)
		var wg sync.WaitGroup
		errs := make(chan error, len(infos))
		sem := make(chan struct{}, ScanWorkers)
		var footerPeeks int64
		for i, info := range infos {
			entries[i] = bigmeta.FileEntry{
				Bucket:     t.Bucket,
				Key:        info.Key,
				Size:       info.Size,
				Generation: info.Generation,
				Partition:  bigmeta.PartitionOf(t.Prefix, info.Key),
			}
			// Partition pruning needs no footer; only survivors get a
			// footer peek.
			if !bigmeta.FileCanMatch(entries[i], preds, bigmeta.PrunePartitionsOnly) {
				entries[i].Size = -1 // mark pruned
				continue
			}
			footerPeeks++
			wg.Add(1)
			go func(i int, key string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				tr := tracks[i%ScanWorkers]
				var fsp *obs.Span
				if ctx.Span != nil {
					fsp = ctx.Span.ChildAt(tr, "footer "+key)
					fsp.SetLane(i % ScanWorkers)
				}
				defer fsp.End()
				stats, rows, err := footerPeek(e.Res, ctx.Budget, store, cred, t.Bucket, key, tr)
				if err != nil {
					errs <- err
					return
				}
				entries[i].ColumnStats = stats
				entries[i].RowCount = rows
			}(i, info.Key)
		}
		wg.Wait()
		// Tracks fold into the global clock even when a worker failed,
		// so an error return cannot leak simulated-time tracks.
		joinTracks(tracks)
		// Only survivors of partition pruning got a footer peek.
		ctx.Stats.FooterReads += footerPeeks
		if err := drainErrs(errs); err != nil {
			return nil, err
		}
		for _, en := range entries {
			if en.Size < 0 {
				ctx.Stats.FilesPruned++
				continue
			}
			// Honor the configured granularity here too: the knob
			// must mean the same thing with and without the cache.
			if bigmeta.FileCanMatch(en, preds, e.Opts.PruneGranularity) {
				files = append(files, en)
			} else {
				ctx.Stats.FilesPruned++
			}
		}
	}
	return e.readFiles(ctx, store, cred, t, files, preds)
}

// footerPeek reads a file's footer statistics on the query path — the
// extra object reads §3.3 describes for engines without a metadata
// cache. Each remote call retries under the policy; the ranged reads
// are hedged against storage tail latency.
func footerPeek(res *resilience.Policy, bud *resilience.Budget, store *objstore.Store, cred objstore.Credential, bucket, key string, tr *sim.Track) (map[string]colfmt.ColumnStats, int64, error) {
	var info objstore.ObjectInfo
	if err := res.Do(tr, bud, "HEAD "+bucket+"/"+key, func() error {
		var e error
		info, e = store.HeadOn(tr, cred, bucket, key)
		return e
	}); err != nil {
		return nil, 0, err
	}
	off := info.Size - 64*1024
	if off < 0 {
		off = 0
	}
	var tail []byte
	if err := res.HedgedDo(tr, bud, "GET "+bucket+"/"+key, func(ch sim.Charger) error {
		d, _, e := store.GetRangeOn(ch, cred, bucket, key, off, -1)
		if e != nil {
			return e
		}
		tail = d
		return nil
	}); err != nil {
		return nil, 0, err
	}
	footer, err := colfmt.ReadFooter(tail)
	if err != nil {
		var full []byte
		if err2 := res.HedgedDo(tr, bud, "GET "+bucket+"/"+key, func(ch sim.Charger) error {
			d, _, e := store.GetOn(ch, cred, bucket, key)
			if e != nil {
				return e
			}
			full = d
			return nil
		}); err2 != nil {
			return nil, 0, err2
		}
		if footer, err = colfmt.ReadFooter(full); err != nil {
			return nil, 0, err
		}
	}
	stats := make(map[string]colfmt.ColumnStats)
	for _, f := range footer.Fields {
		if st, ok := footer.ColumnStatsFor(f.Name); ok {
			stats[f.Name] = st
		}
	}
	return stats, footer.Rows, nil
}

// scanManagedTable reads a Native or BLMT table whose source of truth
// is the Big Metadata transaction log (§3.5): the file list comes from
// a log snapshot, never from object-store listing.
func (e *Engine) scanManagedTable(ctx *QueryContext, t catalog.Table, preds []colfmt.Predicate) (*vector.Batch, error) {
	store, err := e.store(t.Cloud)
	if err != nil {
		return nil, err
	}
	cred, err := e.credForCtx(ctx, t)
	if err != nil {
		return nil, err
	}
	version := int64(-1)
	if ctx.Txn != nil {
		version = ctx.Txn.SnapshotVersion()
	}
	files, _, err := e.Log.Snapshot(t.FullName(), version)
	if err != nil {
		return nil, err
	}
	var overlay []*vector.Batch
	if ctx.Txn != nil {
		// Inside a transaction the scan sees the pinned snapshot minus
		// the files the session already rewrote, plus its buffered
		// batches. The surviving snapshot files are recorded *before*
		// predicate pruning: the read set must cover everything the
		// statement logically read, not just what its pushdown kept.
		removed, added := ctx.Txn.Overlay(t.FullName())
		if len(removed) > 0 {
			live := files[:0]
			for _, f := range files {
				if !removed[f.Key] {
					live = append(live, f)
				}
			}
			files = live
		}
		ctx.Txn.ObserveRead(t.FullName(), files)
		overlay = added
	}
	kept := files[:0]
	for _, f := range files {
		if bigmeta.FileCanMatch(f, preds, e.Opts.PruneGranularity) {
			kept = append(kept, f)
		} else {
			ctx.Stats.FilesPruned++
		}
	}
	out, err := e.readFiles(ctx, store, cred, t, kept, preds)
	if err != nil {
		return nil, err
	}
	// Buffered batches are appended unfiltered; the residual WHERE in
	// execSelect (and the where-func in DML rewrites) re-checks the
	// full predicate, so pushdown never has to understand the overlay.
	for _, b := range overlay {
		if b.N == 0 {
			continue
		}
		out, err = vector.AppendBatch(out, b)
		if err != nil {
			return nil, err
		}
		ctx.Stats.RowsScanned += int64(b.N)
	}
	return out, nil
}

// readFiles fetches and decodes the surviving files in parallel worker
// tracks, applying predicate filtering during the scan.
func (e *Engine) readFiles(ctx *QueryContext, store *objstore.Store, cred objstore.Credential, t catalog.Table, files []bigmeta.FileEntry, preds []colfmt.Predicate) (*vector.Batch, error) {
	// Column-level predicates only; partition predicates are already
	// consumed by pruning and reference no physical column.
	var filePreds []colfmt.Predicate
	for _, p := range preds {
		if t.Schema.Index(p.Column) >= 0 {
			filePreds = append(filePreds, p)
		}
	}

	results := make([]*vector.Batch, len(files))

	// Warm pass: probe the quarantine log and the generation-keyed scan
	// cache synchronously. An object generation pins immutable content,
	// so a known-generation hit skips the GET and the decode — and a hit
	// needs no worker either, just a predicate pass over the resident
	// batch. On the steady-state hot path (every surviving file already
	// decoded) the scan completes here with no goroutines, channels, or
	// clock tracks at all; only cold files fall through to the parallel
	// fetch below.
	var cold []int
	for i, f := range files {
		// Containment gate: a quarantined file fails fast with a typed
		// error naming table and file — or is skipped with a warning
		// under the explicit opt-in.
		if e.Log != nil {
			if m, qok := e.Log.IsQuarantined(t.FullName(), f.Key); qok {
				if e.Opts.SkipQuarantined {
					ctx.Stats.QuarantineSkips++
					e.Obs.Counter("integrity.quarantine_skips").Add(1)
					e.Obs.Event("integrity.warnings",
						fmt.Sprintf("skipping quarantined file %s/%s of table %s: %s", f.Bucket, f.Key, t.FullName(), m.Reason))
					continue
				}
				return nil, &integrity.Error{Source: "engine.quarantine", Table: t.FullName(),
					Bucket: f.Bucket, Key: f.Key, Detail: "file is quarantined: " + m.Reason}
			}
		}
		if e.scanCache != nil && f.Generation > 0 {
			cacheKey := scanCacheKey{Cloud: t.Cloud, Bucket: f.Bucket, Key: f.Key, Generation: f.Generation}
			if full, ok := e.scanCache.get(cacheKey); ok {
				var fsp *obs.Span
				if ctx.Span != nil {
					fsp = ctx.Span.Child("read " + f.Key)
					fsp.SetInt("bytes", f.Size)
					fsp.SetStr("cache", "hit")
				}
				b, err := finishDecoded(ctx.mem, full, filePreds, f, t)
				if err != nil {
					fsp.End()
					return nil, err
				}
				fsp.SetInt("rows", int64(b.N))
				fsp.End()
				results[i] = b
				ctx.Stats.CacheHits++
				continue
			}
		}
		cold = append(cold, i)
	}
	if len(cold) > 0 {
		if err := e.readColdFiles(ctx, store, cred, t, files, cold, results, filePreds); err != nil {
			return nil, err
		}
	}

	out, err := e.mergeScan(ctx, t, results)
	if err != nil {
		return nil, err
	}
	ctx.Stats.FilesScanned += int64(len(files))
	for _, f := range files {
		ctx.Stats.BytesScanned += f.Size
	}
	ctx.Stats.RowsScanned += int64(out.N)
	return out, nil
}

// readColdFiles fetches and decodes the files the warm pass could not
// serve from the scan cache, in parallel worker tracks.
func (e *Engine) readColdFiles(ctx *QueryContext, store *objstore.Store, cred objstore.Credential, t catalog.Table, files []bigmeta.FileEntry, cold []int, results []*vector.Batch, filePreds []colfmt.Predicate) error {
	workers := ScanWorkers
	if len(cold) < workers {
		workers = len(cold)
	}
	hits := make([]bool, len(cold))
	misses := make([]bool, len(cold))
	skips := make([]bool, len(cold))
	tracks := startTracks(e.Clock, workers)
	var wg sync.WaitGroup
	errs := make(chan error, len(cold))
	sem := make(chan struct{}, workers)
	for w, fi := range cold {
		wg.Add(1)
		go func(w, i int, f bigmeta.FileEntry) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tr := tracks[w%workers]
			var fsp *obs.Span
			if ctx.Span != nil {
				fsp = ctx.Span.ChildAt(tr, "read "+f.Key)
				fsp.SetLane(w % workers)
				fsp.SetInt("bytes", f.Size)
			}
			defer func() {
				if fsp != nil && results[i] != nil {
					fsp.SetInt("rows", int64(results[i].N))
				}
				fsp.End()
			}()

			rd, err := e.readFileOnce(ctx, tr, fsp, store, cred, t, f, filePreds)
			if err != nil && errors.Is(err, integrity.ErrCorrupt) {
				// Detected corruption: evict every cached generation of
				// the object and re-fetch once from a fresh source. A
				// sick *response* heals here; a sick *stored copy* fails
				// again and is quarantined.
				e.recordDetection(err)
				if e.scanCache != nil {
					e.scanCache.evictObject(t.Cloud, f.Bucket, f.Key)
				}
				fsp.SetStr("integrity", "refetch")
				rd2, err2 := e.readFileOnce(ctx, tr, fsp, store, cred, t, f, filePreds)
				switch {
				case err2 == nil:
					e.Obs.Counter("integrity.recovered.refetch").Add(1)
					rd, err = rd2, nil
				case errors.Is(err2, integrity.ErrCorrupt):
					e.recordDetection(err2)
					if e.scanCache != nil {
						e.scanCache.evictObject(t.Cloud, f.Bucket, f.Key)
					}
					fsp.SetStr("integrity", "quarantined")
					skipped, ferr := e.containCorrupt(ctx, t, f, err2)
					if skipped {
						skips[w] = true
						e.Obs.Counter("integrity.quarantine_skips").Add(1)
						return
					}
					errs <- ferr
					return
				default:
					errs <- err2
					return
				}
			}
			if err != nil {
				errs <- err
				return
			}
			hits[w], misses[w] = rd.hit, rd.miss
			results[i] = rd.batch
		}(w, fi, files[fi])
	}
	wg.Wait()
	// Join tracks before any error return so sim tracks never leak.
	joinTracks(tracks)
	for w := range cold {
		if hits[w] {
			ctx.Stats.CacheHits++
		}
		if misses[w] {
			ctx.Stats.CacheMisses++
		}
		if skips[w] {
			ctx.Stats.QuarantineSkips++
		}
	}
	return drainErrs(errs)
}

// mergeScan concatenates per-file results into the scan output. Under
// GC-lean the merge is a single sized pass drawing from the query
// arena (and keeps dictionary columns encoded); the legacy path keeps
// the original pairwise AppendBatch fold, so Options.GCLean gates the
// whole memory-discipline change and the perf harness can A/B the two
// within one binary.
func (e *Engine) mergeScan(ctx *QueryContext, t catalog.Table, results []*vector.Batch) (*vector.Batch, error) {
	if ctx.mem.Al != nil {
		out, err := vector.ConcatBatchesWith(ctx.mem, results)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = vector.EmptyBatch(t.Schema)
		}
		return out, nil
	}
	var out *vector.Batch
	var err error
	for _, b := range results {
		if b == nil {
			continue
		}
		out, err = vector.AppendBatch(out, b)
		if err != nil {
			return nil, err
		}
	}
	if out == nil {
		out = vector.EmptyBatch(t.Schema)
	}
	return out, nil
}

// decodeFile decodes complete file bytes through the vectorized
// reader. Hive-partitioned files do not store the partition column;
// the caller passes only the predicates the file can evaluate (the
// rest were consumed by pruning and are re-checked after
// partition-column injection), and this helper further drops any
// predicate the file's actual schema lacks.
func decodeFile(data []byte, filePreds []colfmt.Predicate) (*vector.Batch, error) {
	footer, err := colfmt.ReadFooter(data)
	if err != nil {
		return nil, err
	}
	fileSchema := footer.Schema()
	preds := filePreds[:0:0]
	for _, p := range filePreds {
		if fileSchema.Index(p.Column) >= 0 {
			preds = append(preds, p)
		}
	}
	r, err := colfmt.NewVectorizedReader(data, nil, preds)
	if err != nil {
		return nil, err
	}
	return r.ReadAll()
}

// finishDecoded turns a cached full (unfiltered) decode into the same
// batch the direct read path produces: predicate filtering followed by
// partition-column injection.
func finishDecoded(mem vector.Mem, full *vector.Batch, filePreds []colfmt.Predicate, f bigmeta.FileEntry, t catalog.Table) (*vector.Batch, error) {
	b := full
	preds := filePreds[:0:0]
	for _, p := range filePreds {
		if b.Schema.Index(p.Column) >= 0 {
			preds = append(preds, p)
		}
	}
	if len(preds) > 0 {
		mask, err := colfmt.EvalPredicatesWith(mem.Al, b, preds)
		if err != nil {
			return nil, err
		}
		b, err = vector.FilterWith(mem, b, mask)
		if err != nil {
			return nil, err
		}
	}
	return injectPartitionColumns(b, f.Partition, t)
}

// drainErrs closes the worker error channel and joins every error the
// pool reported — not just the first — so multi-file failures surface
// completely.
func drainErrs(errs chan error) error {
	close(errs)
	var all []error
	for err := range errs {
		all = append(all, err)
	}
	return errors.Join(all...)
}

// injectPartitionColumns adds hive partition values as columns when
// the table schema declares them but files do not store them.
func injectPartitionColumns(b *vector.Batch, partition map[string]string, t catalog.Table) (*vector.Batch, error) {
	if len(partition) == 0 {
		return b, nil
	}
	fields := append([]vector.Field(nil), b.Schema.Fields...)
	cols := append([]*vector.Column(nil), b.Cols...)
	keys := make([]string, 0, len(partition))
	for k := range partition {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if b.Schema.Index(k) >= 0 {
			continue // file stores the column already
		}
		idx := t.Schema.Index(k)
		if idx < 0 {
			continue // partition key not in declared schema
		}
		typ := t.Schema.Fields[idx].Type
		v := partitionValue(partition[k], typ)
		fields = append(fields, vector.Field{Name: k, Type: typ})
		cols = append(cols, constColumn(v, b.N))
	}
	return vector.NewBatch(vector.Schema{Fields: fields}, cols)
}

func partitionValue(s string, t vector.Type) vector.Value {
	switch t {
	case vector.Int64, vector.Timestamp:
		var v int64
		if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
			return vector.NullValue
		}
		return vector.Value{Type: t, I: v}
	case vector.Float64:
		var v float64
		if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
			return vector.NullValue
		}
		return vector.FloatValue(v)
	case vector.Bool:
		return vector.BoolValue(s == "true")
	default:
		return vector.StringValue(s)
	}
}

// scanObjectTable materializes an Object table: the metadata cache
// itself is the data source (§4.1) — each cached object becomes a row.
func (e *Engine) scanObjectTable(ctx *QueryContext, t catalog.Table) (*vector.Batch, error) {
	store, err := e.store(t.Cloud)
	if err != nil {
		return nil, err
	}
	cred, err := e.credForCtx(ctx, t)
	if err != nil {
		return nil, err
	}
	var entries []bigmeta.FileEntry
	if e.Opts.UseMetadataCache && t.MetadataCaching {
		if _, ok := e.Meta.RefreshedAt(t.FullName()); !ok {
			if _, err := e.Meta.Refresh(t.FullName(), store, cred, t.Bucket, t.Prefix, bigmeta.RefreshOptions{Background: true}); err != nil {
				return nil, err
			}
		}
		entries, err = e.Meta.Files(t.FullName())
		if err != nil {
			return nil, err
		}
	} else {
		// Without the cache the engine lists the bucket per query —
		// the hours-long path for billions of objects (§4.1).
		infos, err := resilience.ListAll(e.Res, e.Clock, ctx.Budget, store, cred, t.Bucket, t.Prefix)
		if err != nil {
			return nil, err
		}
		ctx.Stats.ListCalls++
		for _, info := range infos {
			entries = append(entries, bigmeta.FileEntry{
				Bucket: t.Bucket, Key: info.Key, Size: info.Size,
				ContentType: info.ContentType, Created: info.Created,
				Updated: info.Updated, Generation: info.Generation,
			})
		}
	}
	bl := vector.NewBuilder(catalog.ObjectTableSchema())
	for _, en := range entries {
		bl.Append(
			vector.StringValue(fmt.Sprintf("%s://%s/%s", t.Cloud, en.Bucket, en.Key)),
			vector.IntValue(en.Size),
			vector.StringValue(en.ContentType),
			vector.TimestampValue(int64(en.Created)),
			vector.TimestampValue(int64(en.Updated)),
			vector.IntValue(en.Generation),
		)
	}
	ctx.Stats.RowsScanned += int64(bl.Len())
	return bl.Build(), nil
}

func startTracks(clock *sim.Clock, n int) []*sim.Track {
	tracks := make([]*sim.Track, n)
	for i := range tracks {
		tracks[i] = clock.StartTrack()
	}
	return tracks
}

func joinTracks(tracks []*sim.Track) {
	for _, tr := range tracks {
		tr.Join()
	}
}

// qualifyBatch prefixes every column with "qual." for multi-table
// resolution.
func qualifyBatch(b *vector.Batch, qual string) *vector.Batch {
	fields := make([]vector.Field, len(b.Schema.Fields))
	for i, f := range b.Schema.Fields {
		fields[i] = vector.Field{Name: qual + "." + f.Name, Type: f.Type}
	}
	return &vector.Batch{Schema: vector.Schema{Fields: fields}, Cols: b.Cols, N: b.N}
}

// pushdownPreds extracts `col op literal` conjuncts from a WHERE tree
// that reference the given table qualifier (or are unqualified when
// the query has a single table). It is a best-effort extraction: the
// full predicate is always re-checked after the scan.
func pushdownPreds(where sqlparse.Expr, qualifier string, single bool) []colfmt.Predicate {
	var out []colfmt.Predicate
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		bin, ok := e.(sqlparse.Binary)
		if !ok {
			return
		}
		if bin.Op == "AND" {
			walk(bin.L)
			walk(bin.R)
			return
		}
		op, ok := cmpOpMap[bin.Op]
		if !ok {
			return
		}
		ref, refOK := bin.L.(sqlparse.ColumnRef)
		lit, litOK := bin.R.(sqlparse.Literal)
		if !refOK || !litOK {
			// literal op column
			if ref2, ok2 := bin.R.(sqlparse.ColumnRef); ok2 {
				if lit2, ok3 := bin.L.(sqlparse.Literal); ok3 {
					ref, lit, op = ref2, lit2, flipOp(op)
					refOK, litOK = true, true
				}
			}
		}
		if !refOK || !litOK || lit.Value.IsNull() {
			return
		}
		if ref.Table != "" && ref.Table != qualifier {
			return
		}
		if ref.Table == "" && !single {
			return
		}
		out = append(out, colfmt.Predicate{Column: ref.Name, Op: op, Value: lit.Value})
	}
	if where != nil {
		walk(where)
	}
	return out
}
