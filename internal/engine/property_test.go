package engine

import (
	"fmt"
	"testing"

	"biglake/internal/bigmeta"
	"biglake/internal/colfmt"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// TestPropertyPruningNeverChangesAnswers is the load-bearing invariant
// behind every acceleration in the repository: for randomly generated
// predicates over randomly generated partitioned data, the engine must
// return identical results with metadata caching + file pruning + DPP
// enabled and with everything disabled (full listing, footer peeks, no
// pruning).
func TestPropertyPruningNeverChangesAnswers(t *testing.T) {
	rng := sim.NewRNG(20240609)

	fast := newEnv(t, DefaultOptions())
	slow := newEnv(t, Options{UseMetadataCache: false, EnableDPP: false, PruneGranularity: bigmeta.PrunePartitionsOnly})
	regions := []string{"us", "eu", "jp", "br"}
	for _, ev := range []*env{fast, slow} {
		ev.createOrders(t, regions, 3, 25, true)
	}

	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	for trial := 0; trial < 30; trial++ {
		var sql string
		switch trial % 3 {
		case 0:
			sql = fmt.Sprintf(
				"SELECT COUNT(*) AS n, SUM(amount) AS s FROM ds.orders WHERE order_id %s %d",
				ops[rng.Intn(len(ops))], rng.Intn(300))
		case 1:
			sql = fmt.Sprintf(
				"SELECT COUNT(*) AS n, SUM(amount) AS s FROM ds.orders WHERE region %s '%s' AND order_id < %d",
				ops[rng.Intn(2)], regions[rng.Intn(len(regions))], rng.Intn(300))
		default:
			lo := rng.Intn(250)
			sql = fmt.Sprintf(
				"SELECT COUNT(*) AS n, SUM(amount) AS s FROM ds.orders WHERE order_id BETWEEN %d AND %d",
				lo, lo+rng.Intn(60))
		}
		fr := fast.query(t, adminP, sql)
		sr := slow.query(t, adminP, sql)
		fn, sn := fr.Batch.Column("n").Value(0).AsInt(), sr.Batch.Column("n").Value(0).AsInt()
		fs, ss := fr.Batch.Column("s").Value(0), sr.Batch.Column("s").Value(0)
		if fn != sn || !fs.Equal(ss) {
			t.Fatalf("trial %d %q: accelerated (n=%d s=%v) != baseline (n=%d s=%v)",
				trial, sql, fn, fs, sn, ss)
		}
	}
}

// TestPropertyGovernanceIsIdempotent: applying governance to an
// already-governed batch must not change it further (masking is
// deterministic, row filters are stable).
func TestPropertyGovernanceIsIdempotent(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 1, 30, true)
	ev.auth.AddRowPolicy(adminP, "ds.orders", security.RowPolicy{
		Name:     "us_only",
		Grantees: map[security.Principal]bool{aliceP: true},
		Filter:   []colfmt.Predicate{{Column: "region", Op: vector.EQ, Value: vector.StringValue("us")}},
	})
	res := ev.query(t, aliceP, "SELECT * FROM ds.orders")
	// Second application through the authority directly.
	again, err := ev.auth.ApplyGovernance(aliceP, "ds.orders", res.Batch)
	if err != nil {
		t.Fatal(err)
	}
	if again.N != res.Batch.N {
		t.Fatalf("governance not idempotent: %d -> %d rows", res.Batch.N, again.N)
	}
	for i := 0; i < again.N; i++ {
		a, b := res.Batch.Row(i), again.Row(i)
		for j := range a {
			if !a[j].Equal(b[j]) {
				t.Fatalf("row %d col %d changed on re-application", i, j)
			}
		}
	}
}

// TestPropertyScanDeterminism: repeated identical queries return
// identical batches (ordering included, thanks to deterministic file
// ordering and stable operators).
func TestPropertyScanDeterminism(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 4, 20, true)
	sql := "SELECT order_id, region FROM ds.orders WHERE amount >= 10 ORDER BY order_id"
	first := ev.query(t, adminP, sql)
	for i := 0; i < 5; i++ {
		again := ev.query(t, adminP, sql)
		if again.Batch.N != first.Batch.N {
			t.Fatalf("run %d: %d rows != %d", i, again.Batch.N, first.Batch.N)
		}
		for r := 0; r < first.Batch.N; r += 7 {
			if !first.Batch.Row(r)[0].Equal(again.Batch.Row(r)[0]) {
				t.Fatalf("run %d row %d differs", i, r)
			}
		}
	}
}
