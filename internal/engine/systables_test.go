package engine

import (
	"errors"
	"testing"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
)

// TestSystemTablesDirect drives SELECTs over the virtual system
// dataset through the normal engine path: recorded jobs, registry
// metrics, history snapshots, and SLO rows all resolve without any
// catalog entry, and predicates push down into the synthesized batch.
func TestSystemTablesDirect(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 2, 50, true)

	// Two user queries to populate the jobs ring: one point, one olap.
	ev.query(t, adminP, "SELECT order_id FROM ds.orders WHERE order_id = 7")
	ev.query(t, adminP, "SELECT region, COUNT(*) AS n FROM ds.orders GROUP BY region")

	res := ev.query(t, adminP, "SELECT query_id, sql, class, state, rows_scanned FROM system.jobs WHERE state = 'done'")
	if res.Batch.N != 2 {
		t.Fatalf("system.jobs rows = %d, want 2", res.Batch.N)
	}
	classes := res.Batch.Column("class")
	if got := classes.Value(0).S; got != "point" {
		t.Errorf("first job class = %q, want point", got)
	}
	if got := classes.Value(1).S; got != "olap" {
		t.Errorf("second job class = %q, want olap", got)
	}
	if sqlText := res.Batch.Column("sql").Value(0).S; sqlText == "" {
		t.Errorf("job record lost its SQL text")
	}
	if rows := res.Batch.Column("rows_scanned").Value(1).I; rows != 200 {
		t.Errorf("olap job rows_scanned = %d, want 200", rows)
	}

	// The jobs query above recorded itself: ring grows by exactly one.
	res = ev.query(t, adminP, "SELECT query_id FROM system.jobs")
	if res.Batch.N != 3 {
		t.Fatalf("system.jobs rows after self-query = %d, want 3", res.Batch.N)
	}

	// system.metrics surfaces registry counters; predicate pushdown
	// narrows to one name.
	res = ev.query(t, adminP, "SELECT name, value FROM system.metrics WHERE name = 'engine.queries' AND kind = 'counter'")
	if res.Batch.N != 1 {
		t.Fatalf("system.metrics name filter rows = %d, want 1", res.Batch.N)
	}
	if v := res.Batch.Column("value").Value(0).I; v < 4 {
		t.Errorf("engine.queries counter = %d, want >= 4", v)
	}

	// system.slo has a row per configured class with the defaults.
	res = ev.query(t, adminP, "SELECT class, total, attainment FROM system.slo ORDER BY class")
	if res.Batch.N < 4 {
		t.Fatalf("system.slo rows = %d, want >= 4", res.Batch.N)
	}
	byClass := map[string]int64{}
	for i := 0; i < res.Batch.N; i++ {
		byClass[res.Batch.Column("class").Value(i).S] = res.Batch.Column("total").Value(i).I
	}
	if byClass["point"] < 2 || byClass["olap"] < 1 {
		t.Errorf("slo totals = %v, want point >= 2 and olap >= 1", byClass)
	}

	// system.metrics_history fills from forced captures and carries
	// reconcilable deltas.
	ev.eng.Sys.CaptureHistory()
	ev.clock.Advance(200 * 1e6) // 200ms sim
	ev.query(t, adminP, "SELECT order_id FROM ds.orders WHERE order_id = 9")
	ev.eng.Sys.CaptureHistory()
	res = ev.query(t, adminP, "SELECT ts_us, value, delta FROM system.metrics_history WHERE name = 'engine.queries' ORDER BY ts_us")
	if res.Batch.N < 2 {
		t.Fatalf("system.metrics_history rows = %d, want >= 2", res.Batch.N)
	}
	first := res.Batch.Column("value").Value(0).I
	last := res.Batch.Column("value").Value(res.Batch.N - 1).I
	var deltaSum int64
	for i := 1; i < res.Batch.N; i++ {
		deltaSum += res.Batch.Column("delta").Value(i).I
	}
	if deltaSum != last-first {
		t.Errorf("history deltas sum %d, want value difference %d", deltaSum, last-first)
	}

	// Aggregation over a system table goes through the normal kernels.
	res = ev.query(t, adminP, "SELECT state, COUNT(*) AS n FROM system.jobs GROUP BY state ORDER BY state")
	if res.Batch.N == 0 {
		t.Fatal("aggregate over system.jobs returned no rows")
	}
}

// TestSystemTablesNoGovernance: telemetry is readable by any
// principal — no catalog entry, no grant, no row policy applies.
func TestSystemTablesNoGovernance(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 10, true)
	ev.query(t, adminP, "SELECT order_id FROM ds.orders WHERE order_id = 1")

	res, err := ev.eng.Query(NewContext(aliceP, "alice-sys"), "SELECT query_id, principal FROM system.jobs")
	if err != nil {
		t.Fatalf("non-admin system.jobs query: %v", err)
	}
	if res.Batch.N == 0 {
		t.Fatal("non-admin sees empty system.jobs")
	}
}

// TestSystemTableUnknown: unclaimed members of the system dataset fail
// with the catalog's not-found sentinel, not a silent empty result.
func TestSystemTableUnknown(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	_, err := ev.eng.Query(NewContext(adminP, "q-unknown"), "SELECT x FROM system.nope")
	if !errors.Is(err, catalog.ErrNotFound) {
		t.Fatalf("system.nope error = %v, want catalog.ErrNotFound", err)
	}
}

// TestSystemQuarantineTable surfaces bigmeta quarantine marks.
func TestSystemQuarantineTable(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 10, true)
	if _, err := ev.log.QuarantineFile(string(adminP), "ds.orders", bigmeta.QuarantineMark{
		Key: "orders/region=us/part-000.blk", Source: "test", Reason: "bitflip",
	}); err != nil {
		t.Fatal(err)
	}
	res := ev.query(t, adminP, "SELECT table_name, file_key, source FROM system.quarantine")
	if res.Batch.N != 1 {
		t.Fatalf("system.quarantine rows = %d, want 1", res.Batch.N)
	}
	if got := res.Batch.Column("table_name").Value(0).S; got != "ds.orders" {
		t.Errorf("quarantine table = %q", got)
	}
}

// TestSystemJobsDisabled: with recording off the ring stays frozen and
// scans still work.
func TestSystemJobsDisabled(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 10, true)
	ev.eng.Sys.SetEnabled(false)
	ev.query(t, adminP, "SELECT order_id FROM ds.orders WHERE order_id = 1")
	res := ev.query(t, adminP, "SELECT query_id FROM system.jobs")
	if res.Batch.N != 0 {
		t.Fatalf("jobs recorded while disabled: %d", res.Batch.N)
	}
}
