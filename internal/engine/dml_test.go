package engine

import (
	"errors"
	"fmt"
	"testing"

	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/vector"
)

// fakeMutator records DML calls so the engine's dispatch, literal
// coercion, and where/set closure plumbing are testable without blmt.
type fakeMutator struct {
	inserted map[string]*vector.Batch
	tables   map[string]*vector.Batch
	created  map[string]*vector.Batch
}

func newFakeMutator() *fakeMutator {
	return &fakeMutator{
		inserted: map[string]*vector.Batch{},
		tables:   map[string]*vector.Batch{},
		created:  map[string]*vector.Batch{},
	}
}

func (m *fakeMutator) Insert(ctx *QueryContext, table string, rows *vector.Batch) error {
	m.inserted[table] = rows
	return nil
}

func (m *fakeMutator) Delete(ctx *QueryContext, table string, where func(*vector.Batch) ([]bool, error)) (int64, error) {
	b, ok := m.tables[table]
	if !ok {
		return 0, fmt.Errorf("fake: no table %s", table)
	}
	mask, err := where(b)
	if err != nil {
		return 0, err
	}
	kept, err := vector.Filter(b, vector.Not(mask))
	if err != nil {
		return 0, err
	}
	deleted := int64(b.N - kept.N)
	m.tables[table] = kept
	return deleted, nil
}

func (m *fakeMutator) Update(ctx *QueryContext, table string, set func(*vector.Batch) (*vector.Batch, error), where func(*vector.Batch) ([]bool, error)) (int64, error) {
	b, ok := m.tables[table]
	if !ok {
		return 0, fmt.Errorf("fake: no table %s", table)
	}
	mask, err := where(b)
	if err != nil {
		return 0, err
	}
	updated, err := set(b)
	if err != nil {
		return 0, err
	}
	// Merge updated values onto masked rows.
	builder := vector.NewBuilder(b.Schema)
	n := int64(0)
	for r := 0; r < b.N; r++ {
		if mask[r] {
			builder.Append(updated.Row(r)...)
			n++
		} else {
			builder.Append(b.Row(r)...)
		}
	}
	m.tables[table] = builder.Build()
	return n, nil
}

func (m *fakeMutator) CreateTableAs(ctx *QueryContext, table string, orReplace bool, rows *vector.Batch) error {
	if _, ok := m.created[table]; ok && !orReplace {
		return fmt.Errorf("fake: %s exists", table)
	}
	m.created[table] = rows
	return nil
}

func eventsEnv(t *testing.T) (*env, *fakeMutator) {
	t.Helper()
	ev := newEnv(t, DefaultOptions())
	schema := vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "kind", Type: vector.String},
		vector.Field{Name: "score", Type: vector.Float64},
		vector.Field{Name: "ts", Type: vector.Timestamp},
	)
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "events", Type: catalog.Managed, Schema: schema,
		Cloud: "gcp", Bucket: "lake", Prefix: "blmt/events/", Connection: "lake-conn",
	}); err != nil {
		t.Fatal(err)
	}
	m := newFakeMutator()
	bl := vector.NewBuilder(schema)
	for i := 0; i < 6; i++ {
		bl.Append(vector.IntValue(int64(i)), vector.StringValue([]string{"a", "b"}[i%2]),
			vector.FloatValue(float64(i)), vector.TimestampValue(int64(i)*100))
	}
	m.tables["ds.events"] = bl.Build()
	ev.eng.SetMutator(m)
	return ev, m
}

func TestInsertCoercesLiterals(t *testing.T) {
	ev, m := eventsEnv(t)
	// Int literals into float and timestamp columns must coerce.
	ev.query(t, adminP, "INSERT INTO ds.events VALUES (7, 'c', 3, 700)")
	got := m.inserted["ds.events"]
	if got == nil || got.N != 1 {
		t.Fatalf("inserted = %+v", got)
	}
	row := got.Row(0)
	if row[2].Type != vector.Float64 || row[2].AsFloat() != 3 {
		t.Fatalf("score not coerced: %v (%v)", row[2], row[2].Type)
	}
	if row[3].Type != vector.Timestamp || row[3].AsInt() != 700 {
		t.Fatalf("ts not coerced: %v", row[3])
	}
}

func TestInsertNullLiteral(t *testing.T) {
	ev, m := eventsEnv(t)
	ev.query(t, adminP, "INSERT INTO ds.events (id, kind) VALUES (9, NULL)")
	row := m.inserted["ds.events"].Row(0)
	if !row[1].IsNull() {
		t.Fatalf("kind = %v, want NULL", row[1])
	}
}

func TestInsertArityMismatch(t *testing.T) {
	ev, _ := eventsEnv(t)
	if _, err := ev.eng.Query(NewContext(adminP, "q"),
		"INSERT INTO ds.events (id, kind) VALUES (1)"); !errors.Is(err, ErrSemantic) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertRequiresWriteRole(t *testing.T) {
	ev, _ := eventsEnv(t)
	ev.auth.GrantTable(adminP, "ds.events", aliceP, 1 /* viewer */)
	if _, err := ev.eng.Query(NewContext(aliceP, "q"),
		"INSERT INTO ds.events VALUES (1, 'x', 1.0, 1)"); err == nil {
		t.Fatal("viewer insert should be denied")
	}
}

func TestDeleteWithWhereClosure(t *testing.T) {
	ev, m := eventsEnv(t)
	res := ev.query(t, adminP, "DELETE FROM ds.events WHERE kind = 'a'")
	if res.Batch.Column("rows_deleted").Value(0).AsInt() != 3 {
		t.Fatalf("deleted = %v", res.Batch.Row(0))
	}
	if m.tables["ds.events"].N != 3 {
		t.Fatal("fake table not updated")
	}
	// DELETE without WHERE removes everything.
	res = ev.query(t, adminP, "DELETE FROM ds.events")
	if res.Batch.Column("rows_deleted").Value(0).AsInt() != 3 {
		t.Fatalf("unconditional delete = %v", res.Batch.Row(0))
	}
}

func TestUpdateSetAndWhere(t *testing.T) {
	ev, m := eventsEnv(t)
	res := ev.query(t, adminP, "UPDATE ds.events SET score = score + 100, kind = 'z' WHERE id >= 4")
	if res.Batch.Column("rows_updated").Value(0).AsInt() != 2 {
		t.Fatalf("updated = %v", res.Batch.Row(0))
	}
	b := m.tables["ds.events"]
	for r := 0; r < b.N; r++ {
		row := b.Row(r)
		if row[0].AsInt() >= 4 {
			if row[1].S != "z" || row[2].AsFloat() < 100 {
				t.Fatalf("row %v not updated", row)
			}
		} else if row[1].S == "z" {
			t.Fatalf("row %v wrongly updated", row)
		}
	}
}

func TestUpdateUnknownColumn(t *testing.T) {
	ev, _ := eventsEnv(t)
	if _, err := ev.eng.Query(NewContext(adminP, "q"),
		"UPDATE ds.events SET ghost = 1"); !errors.Is(err, ErrSemantic) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateCoercesIntoFloatColumn(t *testing.T) {
	ev, m := eventsEnv(t)
	ev.query(t, adminP, "UPDATE ds.events SET score = 5 WHERE id = 0")
	if got := m.tables["ds.events"].Row(0)[2]; got.Type != vector.Float64 || got.AsFloat() != 5 {
		t.Fatalf("score = %v (%v)", got, got.Type)
	}
}

func TestCTASThroughMutator(t *testing.T) {
	ev, m := eventsEnv(t)
	ev.createOrders(t, []string{"us"}, 1, 5, true)
	ev.query(t, adminP, "CREATE TABLE ds.copy AS SELECT order_id FROM ds.orders WHERE order_id < 3")
	got := m.created["ds.copy"]
	if got == nil || got.N != 3 {
		t.Fatalf("ctas rows = %+v", got)
	}
}

func TestLiteralOnLeftComparison(t *testing.T) {
	// Exercises flipOp: `5 < order_id` must equal `order_id > 5`.
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 10, true)
	a := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders WHERE 5 < order_id")
	b := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders WHERE order_id > 5")
	if a.Batch.Column("n").Value(0).AsInt() != b.Batch.Column("n").Value(0).AsInt() {
		t.Fatalf("flipped comparison differs: %v vs %v", a.Batch.Row(0), b.Batch.Row(0))
	}
	if a.Batch.Column("n").Value(0).AsInt() != 4 {
		t.Fatalf("n = %v", a.Batch.Row(0))
	}
}

func TestColumnToColumnComparison(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 10, true)
	// order_id == customer_id for ids 0..9 (customer = id%100).
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders WHERE order_id = customer_id")
	if res.Batch.Column("n").Value(0).AsInt() != 10 {
		t.Fatalf("n = %v", res.Batch.Row(0))
	}
}

func TestIntPartitionColumnInjection(t *testing.T) {
	// A table hive-partitioned by an integer column: the scan injects
	// the typed partition value (partitionValue path).
	ev := newEnv(t, DefaultOptions())
	schema := vector.NewSchema(
		vector.Field{Name: "v", Type: vector.Int64},
		vector.Field{Name: "hour", Type: vector.Int64},
	)
	for h := 1; h <= 3; h++ {
		bl := vector.NewBuilder(vector.NewSchema(vector.Field{Name: "v", Type: vector.Int64}))
		bl.Append(vector.IntValue(int64(h * 10)))
		file, err := writeColFile(bl.Build())
		if err != nil {
			t.Fatal(err)
		}
		ev.store.Put(ev.cred, "lake", fmt.Sprintf("ht/hour=%d/f.blk", h), file, "")
	}
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "hourly", Type: catalog.BigLake, Schema: schema,
		Cloud: "gcp", Bucket: "lake", Prefix: "ht/", Connection: "lake-conn",
		PartitionColumn: "hour", MetadataCaching: true,
	}); err != nil {
		t.Fatal(err)
	}
	res := ev.query(t, adminP, "SELECT v, hour FROM ds.hourly WHERE hour >= 2 ORDER BY hour")
	if res.Batch.N != 2 {
		t.Fatalf("rows = %d", res.Batch.N)
	}
	if res.Batch.Row(0)[1].AsInt() != 2 || res.Batch.Row(0)[1].Type != vector.Int64 {
		t.Fatalf("injected partition value = %v", res.Batch.Row(0)[1])
	}
}

// writeColFile is a test helper building a one-batch columnar file.
func writeColFile(b *vector.Batch) ([]byte, error) {
	return colfmt.WriteFile(b, colfmt.WriterOptions{})
}
