package engine

import (
	"biglake/internal/obs"
	"biglake/internal/sqlparse"
	"time"
)

// engCounters holds the engine's pre-resolved registry handles so the
// per-query mirror is a handful of atomic adds, never map lookups.
type engCounters struct {
	queries      *obs.Counter
	files        *obs.Counter
	pruned       *obs.Counter
	listCalls    *obs.Counter
	footerReads  *obs.Counter
	bytes        *obs.Counter
	rows         *obs.Counter
	cacheHit     *obs.Counter
	cacheMiss    *obs.Counter
	qskips       *obs.Counter
	cacheEntries *obs.Gauge
	cacheBytes   *obs.Gauge
	// arenaBytes / arenaRecycled mirror the query-arena pool: slab
	// bytes retained for reuse, and how many queries were served by a
	// recycled arena instead of fresh allocation.
	arenaBytes    *obs.Gauge
	arenaRecycled *obs.Gauge
	simElapsed    *obs.Histogram
}

// simElapsedBounds buckets per-query simulated time in microseconds:
// 1ms, 10ms, 100ms, 1s, 10s, then overflow.
var simElapsedBounds = []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000}

func resolveEngCounters(r *obs.Registry) engCounters {
	return engCounters{
		queries:       r.Counter("engine.queries"),
		files:         r.Counter("engine.scan.files"),
		pruned:        r.Counter("engine.scan.pruned"),
		listCalls:     r.Counter("engine.scan.list_calls"),
		footerReads:   r.Counter("engine.scan.footer_reads"),
		bytes:         r.Counter("engine.scan.bytes"),
		rows:          r.Counter("engine.scan.rows"),
		cacheHit:      r.Counter("engine.scan.cache_hit"),
		cacheMiss:     r.Counter("engine.scan.cache_miss"),
		qskips:        r.Counter("engine.scan.quarantine_skipped"),
		cacheEntries:  r.Gauge("engine.scan.cache_entries"),
		cacheBytes:    r.Gauge("engine.scan.cache_bytes"),
		arenaBytes:    r.Gauge("arena.bytes_in_use"),
		arenaRecycled: r.Gauge("arena.recycled"),
		simElapsed:    r.Histogram("engine.query.sim_elapsed_us", simElapsedBounds),
	}
}

// UseObs points the engine (and its scan cache and retry policy) at a
// shared registry. Call during setup, before queries run.
func (e *Engine) UseObs(r *obs.Registry) {
	if r == nil {
		return
	}
	e.Obs = r
	e.ec = resolveEngCounters(r)
	if e.scanCache != nil {
		e.scanCache.observe(e.ec.cacheEntries, e.ec.cacheBytes)
	}
	if e.Res != nil {
		e.Res.Meter = obs.Tee(e.Meter, r.Prefixed("resilience."))
	}
	e.Sys.SetRegistry(r)
}

// ensureTrace attaches a trace to the context if the engine has a
// tracer and none is attached yet. It reports whether this call
// started (and therefore owns, and must Finish) the trace — a trace
// pre-set by a caller (omni, ExplainAnalyze) is never finished here.
func (e *Engine) ensureTrace(ctx *QueryContext) (owned bool) {
	if ctx.Trace == nil {
		if tr := e.Tracer.Start(ctx.QueryID, e.Clock); tr != nil {
			ctx.Trace = tr
			ctx.Span = tr.Root()
			return true
		}
		return false
	}
	if ctx.Span == nil {
		ctx.Span = ctx.Trace.Root()
	}
	return false
}

// mirrorStats publishes one execution's stats delta into the unified
// registry under "engine.*" names.
func (e *Engine) mirrorStats(pre, post ExecStats) {
	e.ec.queries.Add(1)
	e.ec.files.Add(post.FilesScanned - pre.FilesScanned)
	e.ec.pruned.Add(post.FilesPruned - pre.FilesPruned)
	e.ec.listCalls.Add(post.ListCalls - pre.ListCalls)
	e.ec.footerReads.Add(post.FooterReads - pre.FooterReads)
	e.ec.bytes.Add(post.BytesScanned - pre.BytesScanned)
	e.ec.rows.Add(post.RowsScanned - pre.RowsScanned)
	e.ec.cacheHit.Add(post.CacheHits - pre.CacheHits)
	e.ec.cacheMiss.Add(post.CacheMisses - pre.CacheMisses)
	e.ec.qskips.Add(post.QuarantineSkips - pre.QuarantineSkips)
	e.ec.simElapsed.Observe(int64(post.SimElapsed / time.Microsecond))
}

// ExplainAnalyze runs one SQL statement with tracing forced on and
// returns the result alongside its EXPLAIN ANALYZE profile: the span
// tree annotated with per-operator rows/bytes/sim-time and
// dominant-cost highlighting. It works whether or not the engine has a
// tracer installed.
func (e *Engine) ExplainAnalyze(ctx *QueryContext, sql string) (*Result, *obs.Profile, error) {
	tr := obs.NewTrace(ctx.QueryID, e.Clock)
	ctx.Trace = tr
	ctx.Span = tr.Root()
	res, err := e.Query(ctx, sql)
	tr.Finish()
	if err != nil {
		return nil, nil, err
	}
	return res, obs.BuildProfile(tr), nil
}

// ExplainAnalyzeStmt is ExplainAnalyze for an already-parsed statement.
func (e *Engine) ExplainAnalyzeStmt(ctx *QueryContext, stmt sqlparse.Statement) (*Result, *obs.Profile, error) {
	tr := obs.NewTrace(ctx.QueryID, e.Clock)
	ctx.Trace = tr
	ctx.Span = tr.Root()
	res, err := e.Execute(ctx, stmt)
	tr.Finish()
	if err != nil {
		return nil, nil, err
	}
	return res, obs.BuildProfile(tr), nil
}
