package engine

import (
	"fmt"
	"strings"

	"biglake/internal/sqlparse"
	"biglake/internal/vector"
)

// This file preserves the pre-vectorized row-at-a-time join and
// aggregation paths, selected by Options.RowAtATimeExec. They are the
// measured baseline for the E15 speedup comparison and the reference
// arm of the kernel differential tests; the vectorized paths in
// exec.go must produce bit-identical results.

// hashJoinLegacy executes an equi-join with string-materialized keys,
// one row at a time.
func (e *Engine) hashJoinLegacy(left, right *vector.Batch, leftKeys, rightKeys []int, kind sqlparse.JoinKind) (*vector.Batch, error) {
	// Build on the right side (joined table); probe with the left.
	build := make(map[string][]int, right.N)
	for r := 0; r < right.N; r++ {
		key, null := joinKey(right, rightKeys, r)
		if null {
			continue
		}
		build[key] = append(build[key], r)
	}
	var leftIdx, rightIdx []int
	var leftOnly []int
	for l := 0; l < left.N; l++ {
		key, null := joinKey(left, leftKeys, l)
		if null {
			if kind == sqlparse.LeftJoin {
				leftOnly = append(leftOnly, l)
			}
			continue
		}
		matches := build[key]
		if len(matches) == 0 {
			if kind == sqlparse.LeftJoin {
				leftOnly = append(leftOnly, l)
			}
			continue
		}
		for _, r := range matches {
			leftIdx = append(leftIdx, l)
			rightIdx = append(rightIdx, r)
		}
	}

	fields := append(append([]vector.Field(nil), left.Schema.Fields...), right.Schema.Fields...)
	cols := make([]*vector.Column, 0, len(fields))
	totalRows := len(leftIdx) + len(leftOnly)
	for _, c := range left.Cols {
		full := append(append([]int(nil), leftIdx...), leftOnly...)
		cols = append(cols, vector.Gather(c, full))
	}
	for _, c := range right.Cols {
		g := vector.Gather(c, rightIdx)
		if len(leftOnly) > 0 {
			// Null-extend for unmatched left rows.
			merged, err := vector.AppendBatch(
				vector.MustBatch(vector.NewSchema(vector.Field{Name: "x", Type: c.Type}), []*vector.Column{g}),
				vector.MustBatch(vector.NewSchema(vector.Field{Name: "x", Type: c.Type}), []*vector.Column{vector.NullColumn(c.Type, len(leftOnly))}),
			)
			if err != nil {
				return nil, err
			}
			g = merged.Cols[0]
		}
		cols = append(cols, g)
	}
	b, err := vector.NewBatch(vector.Schema{Fields: fields}, cols)
	if err != nil {
		return nil, err
	}
	if b.N != totalRows {
		return nil, fmt.Errorf("engine: join row accounting mismatch %d != %d", b.N, totalRows)
	}
	return b, nil
}

func joinKey(b *vector.Batch, keys []int, row int) (string, bool) {
	var sb strings.Builder
	for _, k := range keys {
		v := b.Cols[k].Value(row)
		if v.IsNull() {
			return "", true
		}
		fmt.Fprintf(&sb, "%d|%s|", v.Type, v.String())
	}
	return sb.String(), false
}

// execAggregateLegacy evaluates GROUP BY / aggregate queries with
// string-keyed groups and per-group mask aggregation.
func (e *Engine) execAggregateLegacy(ctx *QueryContext, sel *sqlparse.SelectStmt, in *vector.Batch, keyCols []*vector.Column, findArg func(string) *vector.Column) (*vector.Batch, error) {
	type group struct {
		rows []int
		key  []vector.Value
	}
	groups := map[string]*group{}
	var orderKeys []string
	for r := 0; r < in.N; r++ {
		var sb strings.Builder
		key := make([]vector.Value, len(keyCols))
		for i, kc := range keyCols {
			v := kc.Value(r)
			key[i] = v
			fmt.Fprintf(&sb, "%d|%s|", v.Type, v.String())
		}
		ks := sb.String()
		g, ok := groups[ks]
		if !ok {
			g = &group{key: key}
			groups[ks] = g
			orderKeys = append(orderKeys, ks)
		}
		g.rows = append(g.rows, r)
	}
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		// Global aggregate over zero rows still yields one row.
		groups[""] = &group{}
		orderKeys = append(orderKeys, "")
	}

	groupExprIndex := groupKeyIndex(sel)

	evalItem := func(item sqlparse.SelectItem, g *group) (vector.Value, error) {
		if call, ok := item.Expr.(sqlparse.Call); ok && sqlparse.AggregateFuncs[call.Name] {
			return evalAggregateCall(call, g.rows, findArg, in.N)
		}
		if i, ok := groupExprIndex[item.Expr.String()]; ok {
			return g.key[i], nil
		}
		if ref, ok := item.Expr.(sqlparse.ColumnRef); ok {
			if i, ok := groupExprIndex[ref.Name]; ok {
				return g.key[i], nil
			}
		}
		return vector.NullValue, fmt.Errorf("%w: %s must appear in GROUP BY or an aggregate", ErrSemantic, item.Expr)
	}

	// Build output.
	rows := make([][]vector.Value, 0, len(orderKeys))
	for _, ks := range orderKeys {
		g := groups[ks]
		row := make([]vector.Value, len(sel.Items))
		for i, item := range sel.Items {
			v, err := evalItem(item, g)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return buildAggregateOutput(sel, rows)
}

func evalAggregateCall(call sqlparse.Call, rows []int, findArg func(string) *vector.Column, n int) (vector.Value, error) {
	if call.Name == "COUNT" && (call.Star || len(call.Args) == 0) {
		return vector.IntValue(int64(len(rows))), nil
	}
	if len(call.Args) != 1 {
		return vector.NullValue, fmt.Errorf("%w: %s expects one argument", ErrSemantic, call.Name)
	}
	col := findArg(call.Args[0].String())
	if col == nil {
		return vector.NullValue, fmt.Errorf("%w: aggregate argument %s not prepared", ErrSemantic, call.Args[0])
	}
	mask := make([]bool, n)
	for _, r := range rows {
		mask[r] = true
	}
	switch call.Name {
	case "COUNT":
		return vector.Aggregate(col, vector.AggCount, mask), nil
	case "SUM":
		return vector.Aggregate(col, vector.AggSum, mask), nil
	case "MIN":
		return vector.Aggregate(col, vector.AggMin, mask), nil
	case "MAX":
		return vector.Aggregate(col, vector.AggMax, mask), nil
	case "AVG":
		sum := vector.Aggregate(col, vector.AggSum, mask)
		cnt := vector.Aggregate(col, vector.AggCount, mask)
		if sum.IsNull() || cnt.AsInt() == 0 {
			return vector.NullValue, nil
		}
		return vector.FloatValue(sum.AsFloat() / float64(cnt.AsInt())), nil
	}
	return vector.NullValue, fmt.Errorf("%w: aggregate %s", ErrUnsupported, call.Name)
}
