package engine

import (
	"errors"
	"testing"

	"biglake/internal/objstore"
)

// Failure-injection tests: transient object-store faults must surface
// as clean errors from every query path — no hangs, no partial
// results, no poisoned state for the retry.

func TestScanSurfacesTransientGetFailure(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 3, 20, true)
	ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders") // warm cache

	ev.store.FailNext(1)
	if _, err := ev.eng.Query(NewContext(adminP, "q"), "SELECT COUNT(*) AS n FROM ds.orders"); !errors.Is(err, objstore.ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	// The failure is transient: the retry succeeds with the full
	// answer.
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders")
	if res.Batch.Column("n").Value(0).AsInt() != 120 {
		t.Fatalf("retry count = %v", res.Batch.Row(0))
	}
}

func TestUncachedScanSurfacesListFailure(t *testing.T) {
	ev := newEnv(t, Options{UseMetadataCache: false})
	ev.createOrders(t, []string{"us"}, 2, 10, false)
	ev.store.FailNext(1) // the LIST call fails
	if _, err := ev.eng.Query(NewContext(adminP, "q"), "SELECT * FROM ds.orders"); !errors.Is(err, objstore.ErrTransient) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailureMidParallelScanDoesNotPanic(t *testing.T) {
	// Many files, one injected failure somewhere in the worker fan-out:
	// the scan must return one error and all goroutines must drain.
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 24, 5, true)
	ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders") // warm cache
	for trial := 0; trial < 5; trial++ {
		ev.store.FailNext(1)
		if _, err := ev.eng.Query(NewContext(adminP, "q"), "SELECT COUNT(*) AS n FROM ds.orders"); !errors.Is(err, objstore.ErrTransient) {
			t.Fatalf("trial %d: err = %v", trial, err)
		}
	}
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders")
	if res.Batch.Column("n").Value(0).AsInt() != 120 {
		t.Fatal("engine state poisoned after injected failures")
	}
}
