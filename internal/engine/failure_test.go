package engine

import (
	"errors"
	"testing"

	"biglake/internal/objstore"
	"biglake/internal/resilience"
)

// Failure-injection tests. With the resilience layer wired in, a
// single transient fault is absorbed by retries; to assert the raw
// fault still propagates cleanly the tests pin the engine to a
// no-retry policy. Both behaviors are covered: surfacing (NoRetry)
// and absorption (DefaultPolicy).

func TestScanSurfacesTransientGetFailure(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.eng.Res = resilience.NoRetry() // surface raw faults
	ev.createOrders(t, []string{"us", "eu"}, 3, 20, true)
	ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders") // warm cache

	ev.store.FailNext(1)
	if _, err := ev.eng.Query(NewContext(adminP, "q"), "SELECT COUNT(*) AS n FROM ds.orders"); !errors.Is(err, objstore.ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	// The failure is transient: the retry succeeds with the full
	// answer.
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders")
	if res.Batch.Column("n").Value(0).AsInt() != 120 {
		t.Fatalf("retry count = %v", res.Batch.Row(0))
	}
}

func TestScanRetriesAbsorbTransientGetFailure(t *testing.T) {
	// Under the default policy the same single fault never reaches the
	// caller: the retry layer absorbs it and the query succeeds.
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 3, 20, true)
	ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders") // warm cache

	ev.store.FailNext(1)
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders")
	if res.Batch.Column("n").Value(0).AsInt() != 120 {
		t.Fatalf("count = %v", res.Batch.Row(0))
	}
	if got := ev.eng.Meter.Get("retries"); got == 0 {
		t.Fatal("expected at least one metered retry")
	}
}

func TestUncachedScanSurfacesListFailure(t *testing.T) {
	ev := newEnv(t, Options{UseMetadataCache: false})
	ev.eng.Res = resilience.NoRetry()
	ev.createOrders(t, []string{"us"}, 2, 10, false)
	ev.store.FailNext(1) // the LIST call fails
	if _, err := ev.eng.Query(NewContext(adminP, "q"), "SELECT * FROM ds.orders"); !errors.Is(err, objstore.ErrTransient) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailureMidParallelScanDoesNotPanic(t *testing.T) {
	// Many files, one injected failure somewhere in the worker fan-out:
	// the scan must return one error and all goroutines must drain.
	ev := newEnv(t, DefaultOptions())
	ev.eng.Res = resilience.NoRetry()
	ev.createOrders(t, []string{"us"}, 24, 5, true)
	ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders") // warm cache
	for trial := 0; trial < 5; trial++ {
		ev.store.FailNext(1)
		if _, err := ev.eng.Query(NewContext(adminP, "q"), "SELECT COUNT(*) AS n FROM ds.orders"); !errors.Is(err, objstore.ErrTransient) {
			t.Fatalf("trial %d: err = %v", trial, err)
		}
	}
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders")
	if res.Batch.Column("n").Value(0).AsInt() != 120 {
		t.Fatal("engine state poisoned after injected failures")
	}
}

func TestQueryDeadlineExceeded(t *testing.T) {
	// A query whose deadline is shorter than its unavoidable I/O time
	// fails with the classified deadline error, not a hang or a raw
	// transient.
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 8, 20, true)

	ctx := NewContext(adminP, "qdl")
	ctx.Deadline = 1 // 1ns of simulated time: nothing fits
	_, err := ev.eng.Query(ctx, "SELECT COUNT(*) AS n FROM ds.orders")
	if !errors.Is(err, resilience.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}

	// A generous deadline leaves the query unaffected.
	ctx2 := NewContext(adminP, "qdl2")
	ctx2.Deadline = 1 << 50
	res, err := ev.eng.Query(ctx2, "SELECT COUNT(*) AS n FROM ds.orders")
	if err != nil {
		t.Fatalf("query with generous deadline failed: %v", err)
	}
	if res.Batch.Column("n").Value(0).AsInt() != 160 {
		t.Fatalf("count = %v", res.Batch.Row(0))
	}
}
