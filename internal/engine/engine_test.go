package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/sqlparse"
	"biglake/internal/vector"
)

const (
	adminP = security.Principal("admin@corp")
	aliceP = security.Principal("alice@corp")
)

type env struct {
	clock *sim.Clock
	store *objstore.Store
	cat   *catalog.Catalog
	auth  *security.Authority
	meta  *bigmeta.Cache
	log   *bigmeta.Log
	eng   *Engine
	cred  objstore.Credential
}

func newEnv(t *testing.T, opts Options) *env {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa-lake@corp"}
	if err := store.CreateBucket(cred, "lake"); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	if err := cat.CreateDataset(catalog.Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"}); err != nil {
		t.Fatal(err)
	}
	auth := security.NewAuthority("secret", adminP)
	if err := auth.RegisterConnection(adminP, security.Connection{
		Name: "lake-conn", ServiceAccount: cred, Cloud: "gcp",
	}); err != nil {
		t.Fatal(err)
	}
	meta := bigmeta.NewCache(clock, nil)
	log := bigmeta.NewLog(clock, nil)
	eng := New(cat, auth, meta, log, clock, map[string]*objstore.Store{"gcp": store}, opts)
	eng.ManagedCred = cred
	return &env{clock: clock, store: store, cat: cat, auth: auth, meta: meta, log: log, eng: eng, cred: cred}
}

// ordersSchema: order_id, customer_id, region, amount.
func ordersSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "order_id", Type: vector.Int64},
		vector.Field{Name: "customer_id", Type: vector.Int64},
		vector.Field{Name: "region", Type: vector.String},
		vector.Field{Name: "amount", Type: vector.Float64},
	)
}

// createOrders writes a partitioned BigLake table ds.orders with
// filesPerRegion files per region, rowsPerFile rows each.
func (ev *env) createOrders(t *testing.T, regions []string, filesPerRegion, rowsPerFile int, caching bool) {
	t.Helper()
	next := int64(0)
	for _, reg := range regions {
		for f := 0; f < filesPerRegion; f++ {
			bl := vector.NewBuilder(ordersSchema())
			for r := 0; r < rowsPerFile; r++ {
				bl.Append(
					vector.IntValue(next),
					vector.IntValue(next%100),
					vector.StringValue(reg),
					vector.FloatValue(float64(next%1000)),
				)
				next++
			}
			file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
			if err != nil {
				t.Fatal(err)
			}
			key := fmt.Sprintf("orders/region=%s/part-%03d.blk", reg, f)
			if _, err := ev.store.Put(ev.cred, "lake", key, file, "application/x-blk"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "orders", Type: catalog.BigLake, Schema: ordersSchema(),
		Cloud: "gcp", Bucket: "lake", Prefix: "orders/", Connection: "lake-conn",
		PartitionColumn: "region", MetadataCaching: caching,
	}); err != nil {
		t.Fatal(err)
	}
	ev.auth.GrantTable(adminP, "ds.orders", aliceP, security.RoleViewer)
}

func (ev *env) query(t *testing.T, p security.Principal, sql string) *Result {
	t.Helper()
	res, err := ev.eng.Query(NewContext(p, "q"), sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

func TestSelectAll(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 2, 50, true)
	res := ev.query(t, adminP, "SELECT * FROM ds.orders")
	if res.Batch.N != 200 {
		t.Fatalf("rows = %d", res.Batch.N)
	}
	if res.Batch.Schema.Index("order_id") < 0 || res.Batch.Schema.Index("region") < 0 {
		t.Fatalf("schema = %v", res.Batch.Schema)
	}
}

func TestSelectConstNoFrom(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	res := ev.query(t, adminP, "SELECT 1 + 2 AS three, 'x' AS s")
	if res.Batch.N != 1 || res.Batch.Column("three").Value(0).AsInt() != 3 || res.Batch.Column("s").Value(0).S != "x" {
		t.Fatalf("res = %+v", res.Batch.Row(0))
	}
}

func TestWhereFilter(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 1, 100, true)
	res := ev.query(t, adminP, "SELECT order_id FROM ds.orders WHERE region = 'eu' AND amount >= 150")
	for i := 0; i < res.Batch.N; i++ {
		id := res.Batch.Column("order_id").Value(i).AsInt()
		if id < 100 { // us rows are 0..99
			t.Fatalf("us row %d leaked", id)
		}
	}
	if res.Batch.N == 0 {
		t.Fatal("no rows matched")
	}
}

func TestPartitionPruningViaCache(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu", "jp"}, 4, 10, true)
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders WHERE region = 'jp'")
	if res.Batch.Column("n").Value(0).AsInt() != 40 {
		t.Fatalf("count = %v", res.Batch.Row(0))
	}
	if res.Stats.FilesScanned != 4 || res.Stats.FilesPruned != 8 {
		t.Fatalf("scanned %d pruned %d, want 4/8", res.Stats.FilesScanned, res.Stats.FilesPruned)
	}
	if res.Stats.ListCalls != 0 {
		t.Fatal("cached scan must not LIST")
	}
}

func TestNoCachePaysListAndFooters(t *testing.T) {
	ev := newEnv(t, Options{UseMetadataCache: false})
	ev.createOrders(t, []string{"us", "eu"}, 3, 10, false)
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders WHERE region = 'eu'")
	if res.Batch.Column("n").Value(0).AsInt() != 30 {
		t.Fatalf("count = %v", res.Batch.Row(0))
	}
	if res.Stats.ListCalls == 0 {
		t.Fatal("uncached scan must LIST")
	}
	if res.Stats.SimElapsed == 0 {
		t.Fatal("uncached scan must cost simulated time")
	}
}

func TestMetadataCachingSpeedsUpQueries(t *testing.T) {
	// E1's shape at unit-test scale: same query, cache on vs off.
	sql := "SELECT SUM(amount) AS s FROM ds.orders WHERE region = 'eu'"

	evOff := newEnv(t, Options{UseMetadataCache: false})
	evOff.createOrders(t, []string{"us", "eu", "jp", "br"}, 5, 50, false)
	off := evOff.query(t, adminP, sql)

	evOn := newEnv(t, DefaultOptions())
	evOn.createOrders(t, []string{"us", "eu", "jp", "br"}, 5, 50, true)
	evOn.query(t, adminP, sql) // first touch builds cache
	on := evOn.query(t, adminP, sql)

	if on.Batch.Column("s").Value(0).AsFloat() != off.Batch.Column("s").Value(0).AsFloat() {
		t.Fatal("cache changed the answer")
	}
	if on.Stats.SimElapsed*2 >= off.Stats.SimElapsed {
		t.Fatalf("cached %v should be >2x faster than uncached %v", on.Stats.SimElapsed, off.Stats.SimElapsed)
	}
}

func TestGroupByAggregates(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 1, 10, true)
	res := ev.query(t, adminP,
		"SELECT region, COUNT(*) AS n, SUM(amount) AS total, MIN(order_id) AS lo, MAX(order_id) AS hi, AVG(amount) AS avg FROM ds.orders GROUP BY region ORDER BY region")
	if res.Batch.N != 2 {
		t.Fatalf("groups = %d", res.Batch.N)
	}
	row0 := res.Batch.Row(0) // eu sorts first
	if row0[0].S != "eu" || row0[1].AsInt() != 10 || row0[3].AsInt() != 10 || row0[4].AsInt() != 19 {
		t.Fatalf("eu row = %v", row0)
	}
	wantSum := 0.0
	for i := 10; i < 20; i++ {
		wantSum += float64(i % 1000)
	}
	if row0[2].AsFloat() != wantSum || row0[5].AsFloat() != wantSum/10 {
		t.Fatalf("sum/avg = %v / %v", row0[2], row0[5])
	}
}

func TestGlobalAggregateOverEmpty(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 5, true)
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n, SUM(amount) AS s FROM ds.orders WHERE amount < 0")
	if res.Batch.N != 1 || res.Batch.Column("n").Value(0).AsInt() != 0 {
		t.Fatalf("count = %+v", res.Batch.Row(0))
	}
	if !res.Batch.Column("s").Value(0).IsNull() {
		t.Fatal("SUM over empty should be NULL")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 50, true)
	res := ev.query(t, adminP, "SELECT order_id FROM ds.orders ORDER BY order_id DESC LIMIT 3")
	if res.Batch.N != 3 {
		t.Fatalf("rows = %d", res.Batch.N)
	}
	ids := []int64{}
	for i := 0; i < 3; i++ {
		ids = append(ids, res.Batch.Column("order_id").Value(i).AsInt())
	}
	if ids[0] != 49 || ids[1] != 48 || ids[2] != 47 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestOrderByAlias(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 1, 10, true)
	res := ev.query(t, adminP, "SELECT region, COUNT(*) AS n FROM ds.orders GROUP BY region ORDER BY n DESC, region ASC")
	if res.Batch.N != 2 {
		t.Fatal("rows")
	}
	// Equal counts -> region ASC tiebreak.
	if res.Batch.Column("region").Value(0).S != "eu" {
		t.Fatalf("order = %v", res.Batch.Row(0))
	}
}

func TestJoin(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 20, true)

	// customers: id, name — native table via the log.
	custSchema := vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "name", Type: vector.String},
	)
	bl := vector.NewBuilder(custSchema)
	for i := 0; i < 5; i++ {
		bl.Append(vector.IntValue(int64(i)), vector.StringValue(fmt.Sprintf("cust%d", i)))
	}
	file, _ := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	ev.store.Put(ev.cred, "lake", "managed/customers/f1.blk", file, "")
	ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "customers", Type: catalog.Native, Schema: custSchema,
		Cloud: "gcp", Bucket: "lake", Prefix: "managed/customers/",
	})
	min, _, _ := vector.MinMax(bl.Build().Cols[0])
	_ = min
	ev.log.Commit("loader", map[string]bigmeta.TableDelta{
		"ds.customers": {Added: []bigmeta.FileEntry{{Bucket: "lake", Key: "managed/customers/f1.blk", Size: int64(len(file)), RowCount: 5}}},
	})

	res := ev.query(t, adminP, `SELECT o.order_id, c.name FROM ds.orders AS o
		JOIN ds.customers AS c ON o.customer_id = c.id WHERE o.amount < 100`)
	if res.Batch.N != 5 { // customer_ids 0..19 but only 0..4 exist
		t.Fatalf("rows = %d", res.Batch.N)
	}
	for i := 0; i < res.Batch.N; i++ {
		row := res.Batch.Row(i)
		if !strings.HasPrefix(row[1].S, "cust") {
			t.Fatalf("row = %v", row)
		}
	}
}

func TestLeftJoinNullFill(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 10, true)
	custSchema := vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "name", Type: vector.String},
	)
	bl := vector.NewBuilder(custSchema)
	bl.Append(vector.IntValue(0), vector.StringValue("zero"))
	file, _ := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	ev.store.Put(ev.cred, "lake", "managed/c2/f1.blk", file, "")
	ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "c2", Type: catalog.Native, Schema: custSchema,
		Cloud: "gcp", Bucket: "lake", Prefix: "managed/c2/",
	})
	ev.log.Commit("loader", map[string]bigmeta.TableDelta{
		"ds.c2": {Added: []bigmeta.FileEntry{{Bucket: "lake", Key: "managed/c2/f1.blk", RowCount: 1}}},
	})
	res := ev.query(t, adminP, `SELECT o.order_id, c.name FROM ds.orders AS o
		LEFT JOIN ds.c2 AS c ON o.customer_id = c.id`)
	if res.Batch.N != 10 {
		t.Fatalf("left join rows = %d, want 10", res.Batch.N)
	}
	nulls := 0
	for i := 0; i < res.Batch.N; i++ {
		if res.Batch.Row(i)[1].IsNull() {
			nulls++
		}
	}
	if nulls != 9 {
		t.Fatalf("null-filled rows = %d, want 9", nulls)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 30, true)
	res := ev.query(t, adminP,
		"SELECT big FROM (SELECT order_id AS big FROM ds.orders WHERE order_id >= 25) sub ORDER BY big")
	if res.Batch.N != 5 || res.Batch.Column("big").Value(0).AsInt() != 25 {
		t.Fatalf("rows = %d first = %v", res.Batch.N, res.Batch.Row(0))
	}
}

func TestGovernanceEnforcedInEngine(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 1, 10, true)
	ev.auth.AddRowPolicy(adminP, "ds.orders", security.RowPolicy{
		Name:     "us_only",
		Grantees: map[security.Principal]bool{aliceP: true},
		Filter:   []colfmt.Predicate{{Column: "region", Op: vector.EQ, Value: vector.StringValue("us")}},
	})
	ev.auth.SetColumnPolicy(adminP, "ds.orders", security.ColumnPolicy{
		Column: "amount", Allowed: map[security.Principal]bool{adminP: true}, Mask: vector.MaskHash,
	})
	res := ev.query(t, aliceP, "SELECT region, amount FROM ds.orders")
	if res.Batch.N != 10 {
		t.Fatalf("alice sees %d rows, want 10", res.Batch.N)
	}
	for i := 0; i < res.Batch.N; i++ {
		row := res.Batch.Row(i)
		if row[0].S != "us" {
			t.Fatal("row policy leaked")
		}
		if !strings.HasPrefix(row[1].S, "hash_") {
			t.Fatalf("amount not masked: %v", row[1])
		}
	}
	// Stranger denied.
	if _, err := ev.eng.Query(NewContext("evil@x", "q"), "SELECT * FROM ds.orders"); !errors.Is(err, security.ErrDenied) {
		t.Fatalf("stranger: %v", err)
	}
}

func TestObjectTableScan(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.store.Put(ev.cred, "lake", "imgs/a.jpg", []byte("AAA"), "image/jpeg")
	ev.store.Put(ev.cred, "lake", "imgs/b.png", []byte("BB"), "image/png")
	ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "files", Type: catalog.Object,
		Cloud: "gcp", Bucket: "lake", Prefix: "imgs/", Connection: "lake-conn",
		MetadataCaching: true,
	})
	res := ev.query(t, adminP, "SELECT uri, size, content_type FROM ds.files WHERE content_type = 'image/jpeg'")
	if res.Batch.N != 1 {
		t.Fatalf("rows = %d", res.Batch.N)
	}
	row := res.Batch.Row(0)
	if row[0].S != "gcp://lake/imgs/a.jpg" || row[1].AsInt() != 3 {
		t.Fatalf("row = %v", row)
	}
}

func TestDynamicPartitionPruning(t *testing.T) {
	// Fact table partitioned by region joined to a filtered dim table
	// carrying one region's key range: with DPP the fact scan must
	// prune files.
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu", "jp"}, 2, 10, true)

	dimSchema := vector.NewSchema(
		vector.Field{Name: "cust", Type: vector.Int64},
		vector.Field{Name: "tier", Type: vector.String},
	)
	bl := vector.NewBuilder(dimSchema)
	for i := 0; i < 3; i++ {
		bl.Append(vector.IntValue(int64(i)), vector.StringValue("gold"))
	}
	for i := 3; i < 100; i++ {
		bl.Append(vector.IntValue(int64(i)), vector.StringValue("basic"))
	}
	file, _ := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	ev.store.Put(ev.cred, "lake", "managed/dim/f1.blk", file, "")
	ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "dim", Type: catalog.Native, Schema: dimSchema,
		Cloud: "gcp", Bucket: "lake", Prefix: "managed/dim/",
	})
	ev.log.Commit("loader", map[string]bigmeta.TableDelta{
		"ds.dim": {Added: []bigmeta.FileEntry{{Bucket: "lake", Key: "managed/dim/f1.blk", RowCount: 100}}},
	})

	sql := `SELECT COUNT(*) AS n FROM ds.orders AS o JOIN ds.dim AS d ON o.order_id = d.cust WHERE d.tier = 'gold'`
	withDPP := ev.query(t, adminP, sql)

	ev.eng.Opts.EnableDPP = false
	withoutDPP := ev.query(t, adminP, sql)
	ev.eng.Opts.EnableDPP = true

	if withDPP.Batch.Column("n").Value(0).AsInt() != withoutDPP.Batch.Column("n").Value(0).AsInt() {
		t.Fatal("DPP changed the answer")
	}
	if withDPP.Stats.FilesScanned >= withoutDPP.Stats.FilesScanned {
		t.Fatalf("DPP scanned %d files, no-DPP scanned %d — want fewer with DPP",
			withDPP.Stats.FilesScanned, withoutDPP.Stats.FilesScanned)
	}
}

func TestTVFDispatch(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 4, true)
	ev.eng.RegisterTVF("ML.PREDICT", func(ctx *QueryContext, model string, input *vector.Batch) (*vector.Batch, error) {
		if model != "ds.m" {
			return nil, fmt.Errorf("bad model %q", model)
		}
		preds := make([]string, input.N)
		for i := range preds {
			preds[i] = "label"
		}
		fields := append([]vector.Field{}, input.Schema.Fields...)
		fields = append(fields, vector.Field{Name: "predictions", Type: vector.String})
		cols := append([]*vector.Column{}, input.Cols...)
		cols = append(cols, vector.NewStringColumn(preds))
		return vector.NewBatch(vector.Schema{Fields: fields}, cols)
	})
	res := ev.query(t, adminP, "SELECT predictions FROM ML.PREDICT(MODEL ds.m, (SELECT order_id FROM ds.orders))")
	if res.Batch.N != 4 || res.Batch.Column("predictions").Value(0).S != "label" {
		t.Fatalf("tvf result = %+v", res.Batch)
	}
	if _, err := ev.eng.Query(NewContext(adminP, "q"), "SELECT * FROM ML.PROCESS_DOCUMENT(MODEL ds.m, TABLE ds.orders)"); !errors.Is(err, ErrNoSuchFunc) {
		t.Fatalf("unregistered tvf: %v", err)
	}
}

func TestScalarFunctionDispatch(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 3, true)
	ev.eng.RegisterScalar("UPPER", func(ctx *QueryContext, args []*vector.Column) (*vector.Column, error) {
		in := args[0].Decode()
		out := make([]string, in.Len)
		for i := range out {
			out[i] = strings.ToUpper(in.Strs[i])
		}
		return vector.NewStringColumn(out), nil
	})
	res := ev.query(t, adminP, "SELECT UPPER(region) AS r FROM ds.orders LIMIT 1")
	if res.Batch.Column("r").Value(0).S != "US" {
		t.Fatalf("scalar = %v", res.Batch.Row(0))
	}
	if _, err := ev.eng.Query(NewContext(adminP, "q"), "SELECT NOSUCH(region) FROM ds.orders"); !errors.Is(err, ErrNoSuchFunc) {
		t.Fatalf("unknown func: %v", err)
	}
}

func TestDMLWithoutMutator(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 3, true)
	for _, sql := range []string{
		"INSERT INTO ds.orders VALUES (1, 1, 'us', 5.0)",
		"DELETE FROM ds.orders",
		"UPDATE ds.orders SET amount = 0",
		"CREATE TABLE ds.x AS SELECT 1",
	} {
		if _, err := ev.eng.Query(NewContext(adminP, "q"), sql); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%q without mutator: %v", sql, err)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 3, true)
	for _, sql := range []string{
		"SELECT nope FROM ds.orders",
		"SELECT region FROM ds.orders WHERE amount",            // non-bool where
		"SELECT region, amount FROM ds.orders GROUP BY region", // amount not grouped
		"SELECT o.x FROM ds.orders AS o",
	} {
		if _, err := ev.eng.Query(NewContext(adminP, "q"), sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
	if _, err := ev.eng.Query(NewContext(adminP, "q"), "SELECT * FROM ds.ghost"); !errors.Is(err, catalog.ErrNotFound) {
		t.Fatalf("missing table: %v", err)
	}
}

func TestArithmeticAndConcat(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	res := ev.query(t, adminP, "SELECT 7 / 2 AS q, 7 - 2 * 3 AS r, 'a' + 'b' AS s, 1.5 + 1 AS f")
	row := res.Batch.Row(0)
	if row[0].AsFloat() != 3.5 || row[1].AsInt() != 1 || row[2].S != "ab" || row[3].AsFloat() != 2.5 {
		t.Fatalf("row = %v", row)
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	res := ev.query(t, adminP, "SELECT 1 / 0 AS x")
	if !res.Batch.Column("x").Value(0).IsNull() {
		t.Fatal("1/0 should be NULL")
	}
}

func TestAggregateOfExpression(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 4, true) // amounts 0,1,2,3
	res := ev.query(t, adminP, "SELECT SUM(amount * 2) AS d FROM ds.orders")
	if res.Batch.Column("d").Value(0).AsFloat() != 12 {
		t.Fatalf("sum = %v", res.Batch.Row(0))
	}
}

func TestExternalTableReadable(t *testing.T) {
	// Legacy external tables: readable, but always on the slow path.
	ev := newEnv(t, DefaultOptions())
	bl := vector.NewBuilder(ordersSchema())
	bl.Append(vector.IntValue(1), vector.IntValue(1), vector.StringValue("us"), vector.FloatValue(9))
	file, _ := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	ev.store.Put(ev.cred, "lake", "ext/f.blk", file, "")
	ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "ext", Type: catalog.External, Schema: ordersSchema(),
		Cloud: "gcp", Bucket: "lake", Prefix: "ext/",
	})
	res := ev.query(t, adminP, "SELECT order_id FROM ds.ext")
	if res.Batch.N != 1 {
		t.Fatalf("rows = %d", res.Batch.N)
	}
	if res.Stats.ListCalls == 0 {
		t.Fatal("external tables always list")
	}
}

func TestScanParallelismBoundsSimTime(t *testing.T) {
	// 16 workers reading 32 one-file units should cost about 2 file
	// rounds of simulated time, not 32.
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 32, 10, true)
	ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders") // warm cache
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders")
	perFile := sim.GCP.GetFirstByte // dominated by first-byte latency
	if res.Stats.SimElapsed > 8*perFile {
		t.Fatalf("32-file scan took %v, want ~2 rounds of %v", res.Stats.SimElapsed, perFile)
	}
}

func TestQueryStatsTimed(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 5, true)
	res := ev.query(t, adminP, "SELECT * FROM ds.orders")
	if res.Stats.SimElapsed < 0 || res.Stats.RowsScanned != 5 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Stats.BytesScanned == 0 {
		t.Fatal("bytes scanned not recorded")
	}
}

func TestTimestampPredicate(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.store.Put(ev.cred, "lake", "o/a.jpg", []byte("x"), "image/jpeg")
	ev.clock.Advance(time.Hour)
	ev.store.Put(ev.cred, "lake", "o/b.jpg", []byte("y"), "image/jpeg")
	ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "objs", Type: catalog.Object,
		Cloud: "gcp", Bucket: "lake", Prefix: "o/", Connection: "lake-conn", MetadataCaching: true,
	})
	cutoff := int64(30 * time.Minute)
	res := ev.query(t, adminP, fmt.Sprintf("SELECT uri FROM ds.objs WHERE create_time > %d", cutoff))
	if res.Batch.N != 1 || !strings.HasSuffix(res.Batch.Column("uri").Value(0).S, "b.jpg") {
		t.Fatalf("rows = %d", res.Batch.N)
	}
}

func TestStatementDispatch(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	if _, err := ev.eng.Query(NewContext(adminP, "q"), "SELECT FROM"); err == nil {
		t.Fatal("parse error should propagate")
	}
	stmt, _ := sqlparse.Parse("SELECT 1 AS one")
	res, err := ev.eng.Execute(NewContext(adminP, "q"), stmt)
	if err != nil || res.Batch.Column("one").Value(0).AsInt() != 1 {
		t.Fatalf("execute: %v", err)
	}
}

func TestInPredicateEndToEnd(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu", "jp"}, 1, 10, true)
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders WHERE region IN ('us', 'jp')")
	if res.Batch.Column("n").Value(0).AsInt() != 20 {
		t.Fatalf("IN count = %v", res.Batch.Row(0))
	}
	res = ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders WHERE region NOT IN ('us', 'jp')")
	if res.Batch.Column("n").Value(0).AsInt() != 10 {
		t.Fatalf("NOT IN count = %v", res.Batch.Row(0))
	}
}

func TestBetweenPredicatePrunes(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 10, 10, true)           // ids 0..99 across 10 files
	ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders") // warm cache
	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders WHERE order_id BETWEEN 35 AND 44")
	if res.Batch.Column("n").Value(0).AsInt() != 10 {
		t.Fatalf("BETWEEN count = %v", res.Batch.Row(0))
	}
	// BETWEEN desugars to a pushdown range: only the matching file(s)
	// are scanned.
	if res.Stats.FilesScanned > 2 {
		t.Fatalf("BETWEEN scanned %d files, should prune to the id range", res.Stats.FilesScanned)
	}
}

func TestThreeWayJoin(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 10, true)
	mk := func(name string, n int, label string) {
		schema := vector.NewSchema(
			vector.Field{Name: "k", Type: vector.Int64},
			vector.Field{Name: "v", Type: vector.String},
		)
		bl := vector.NewBuilder(schema)
		for i := 0; i < n; i++ {
			bl.Append(vector.IntValue(int64(i)), vector.StringValue(fmt.Sprintf("%s%d", label, i)))
		}
		file, _ := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		ev.store.Put(ev.cred, "lake", "managed/"+name+"/f.blk", file, "")
		ev.cat.CreateTable(catalog.Table{
			Dataset: "ds", Name: name, Type: catalog.Native, Schema: schema,
			Cloud: "gcp", Bucket: "lake", Prefix: "managed/" + name + "/",
		})
		ev.log.Commit("loader", map[string]bigmeta.TableDelta{
			"ds." + name: {Added: []bigmeta.FileEntry{{Bucket: "lake", Key: "managed/" + name + "/f.blk", RowCount: int64(n)}}},
		})
	}
	mk("d1", 5, "a")
	mk("d2", 3, "b")
	res := ev.query(t, adminP, `SELECT o.order_id, x.v, y.v
		FROM ds.orders AS o
		JOIN ds.d1 AS x ON o.customer_id = x.k
		JOIN ds.d2 AS y ON o.customer_id = y.k
		ORDER BY o.order_id`)
	if res.Batch.N != 3 { // customer_ids 0..9, limited by d2 (3 keys)
		t.Fatalf("rows = %d", res.Batch.N)
	}
	row := res.Batch.Row(0)
	if row[1].S != "a0" || row[2].S != "b0" {
		t.Fatalf("row = %v", row)
	}
}

func TestJoinThenGroupBy(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 1, 20, true)
	schema := vector.NewSchema(
		vector.Field{Name: "k", Type: vector.Int64},
		vector.Field{Name: "tier", Type: vector.String},
	)
	bl := vector.NewBuilder(schema)
	for i := 0; i < 100; i++ {
		tier := "basic"
		if i%2 == 0 {
			tier = "gold"
		}
		bl.Append(vector.IntValue(int64(i)), vector.StringValue(tier))
	}
	file, _ := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	ev.store.Put(ev.cred, "lake", "managed/tiers/f.blk", file, "")
	ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "tiers", Type: catalog.Native, Schema: schema,
		Cloud: "gcp", Bucket: "lake", Prefix: "managed/tiers/",
	})
	ev.log.Commit("loader", map[string]bigmeta.TableDelta{
		"ds.tiers": {Added: []bigmeta.FileEntry{{Bucket: "lake", Key: "managed/tiers/f.blk", RowCount: 100}}},
	})
	res := ev.query(t, adminP, `SELECT t.tier, COUNT(*) AS n, SUM(o.amount) AS total
		FROM ds.orders AS o JOIN ds.tiers AS t ON o.customer_id = t.k
		GROUP BY t.tier ORDER BY t.tier`)
	if res.Batch.N != 2 {
		t.Fatalf("groups = %d", res.Batch.N)
	}
	if res.Batch.Row(0)[0].S != "basic" || res.Batch.Row(0)[1].AsInt() != 20 {
		t.Fatalf("basic group = %v", res.Batch.Row(0))
	}
}

func TestSubqueryFeedingAggregate(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 50, true)
	res := ev.query(t, adminP, `SELECT COUNT(*) AS n, AVG(a) AS avg_amount FROM
		(SELECT amount AS a FROM ds.orders WHERE order_id < 10) sub`)
	if res.Batch.Column("n").Value(0).AsInt() != 10 {
		t.Fatalf("n = %v", res.Batch.Row(0))
	}
	if res.Batch.Column("avg_amount").Value(0).AsFloat() != 4.5 {
		t.Fatalf("avg = %v", res.Batch.Row(0))
	}
}

func TestLimitZero(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 5, true)
	res := ev.query(t, adminP, "SELECT * FROM ds.orders LIMIT 0")
	if res.Batch.N != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", res.Batch.N)
	}
}

func TestOrderByMultipleKeysWithNulls(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	res := ev.query(t, adminP, "SELECT 2 AS a, 1 AS b")
	_ = res
	// Real null ordering is covered through managed tables:
	ev.createOrders(t, []string{"us"}, 1, 4, true)
	res = ev.query(t, adminP, "SELECT region, order_id FROM ds.orders ORDER BY region DESC, order_id DESC LIMIT 2")
	if res.Batch.Row(0)[1].AsInt() != 3 || res.Batch.Row(1)[1].AsInt() != 2 {
		t.Fatalf("multi-key order = %v %v", res.Batch.Row(0), res.Batch.Row(1))
	}
}

func TestMetadataStalenessTriggersRefresh(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us"}, 1, 10, true)
	// Install a staleness bound on the table.
	tab, _ := ev.cat.Table("ds.orders")
	tab.MetadataStaleness = time.Minute
	ev.cat.UpdateTable(tab)

	res := ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders")
	if res.Batch.Column("n").Value(0).AsInt() != 10 {
		t.Fatal("initial count")
	}

	// A new file lands in the bucket. Within the staleness window the
	// cache serves the old inventory.
	bl := vector.NewBuilder(ordersSchema())
	bl.Append(vector.IntValue(999), vector.IntValue(1), vector.StringValue("us"), vector.FloatValue(1))
	file, _ := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	ev.store.Put(ev.cred, "lake", "orders/region=us/late.blk", file, "")
	res = ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders")
	if res.Batch.Column("n").Value(0).AsInt() != 10 {
		t.Fatalf("within staleness window count = %v, want stale 10", res.Batch.Row(0))
	}

	// Past the staleness bound the engine refreshes and sees the file.
	ev.clock.Advance(2 * time.Minute)
	res = ev.query(t, adminP, "SELECT COUNT(*) AS n FROM ds.orders")
	if res.Batch.Column("n").Value(0).AsInt() != 11 {
		t.Fatalf("post-staleness count = %v, want 11", res.Batch.Row(0))
	}
}
