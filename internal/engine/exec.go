package engine

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"

	"biglake/internal/colfmt"
	"biglake/internal/obs"
	"biglake/internal/sqlparse"
	"biglake/internal/vector"
)

// execSelect runs a SELECT statement to completion.
func (e *Engine) execSelect(ctx *QueryContext, sel *sqlparse.SelectStmt) (*vector.Batch, error) {
	joined, err := e.execFromClause(ctx, sel)
	if err != nil {
		return nil, err
	}

	// Residual WHERE (pushdown is best-effort; full predicate is
	// always enforced here).
	if sel.Where != nil {
		var fsp *obs.Span
		if ctx.Span != nil {
			fsp = ctx.Span.Child("filter")
			fsp.SetInt("in_rows", int64(joined.N))
		}
		mask, err := e.evalBool(ctx, joined, sel.Where)
		if err != nil {
			fsp.End()
			return nil, err
		}
		joined, err = vector.FilterWith(ctx.mem, joined, mask)
		if err != nil {
			fsp.End()
			return nil, err
		}
		if fsp != nil {
			fsp.SetInt("rows", int64(joined.N))
		}
		fsp.End()
	}

	// Aggregation vs plain projection.
	hasAgg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && sqlparse.IsAggregate(item.Expr) {
			hasAgg = true
		}
	}
	var out *vector.Batch
	if hasAgg {
		var asp *obs.Span
		if ctx.Span != nil {
			asp = ctx.Span.Child("aggregate")
			asp.SetInt("in_rows", int64(joined.N))
			if !e.Opts.RowAtATimeExec {
				asp.SetInt("workers", int64(e.execWorkers()))
			}
		}
		out, err = e.execAggregate(ctx, sel, joined)
		if asp != nil && err == nil {
			asp.SetInt("groups", int64(out.N))
			asp.SetInt("rows", int64(out.N))
		}
		asp.End()
	} else {
		var psp *obs.Span
		if ctx.Span != nil {
			psp = ctx.Span.Child("project")
			psp.SetInt("in_rows", int64(joined.N))
		}
		out, err = e.execProject(ctx, sel, joined)
		if psp != nil && err == nil {
			psp.SetInt("rows", int64(out.N))
		}
		psp.End()
	}
	if err != nil {
		return nil, err
	}

	if len(sel.OrderBy) > 0 {
		// LIMIT pushes below ORDER BY: a bounded top-K selection
		// replaces the full sort when both are present.
		limit := -1
		if sel.Limit >= 0 {
			limit = int(sel.Limit)
		}
		var osp *obs.Span
		if ctx.Span != nil {
			osp = ctx.Span.Child("order_by")
			osp.SetInt("in_rows", int64(out.N))
			if limit >= 0 {
				osp.SetInt("limit", int64(limit))
			}
		}
		out, err = e.execOrderBy(ctx, sel, out, joined, limit)
		if osp != nil && err == nil {
			osp.SetInt("rows", int64(out.N))
		}
		osp.End()
		if err != nil {
			return nil, err
		}
	}
	if sel.Limit >= 0 && int64(out.N) > sel.Limit {
		// Column prefix slice: LIMIT costs O(columns), not O(N).
		out = vector.HeadBatch(out, int(sel.Limit))
	}
	return out, nil
}

// execFromClause evaluates the FROM clause (including joins) into one
// qualified batch. With no FROM, a single empty row is produced so
// constant expressions evaluate.
func (e *Engine) execFromClause(ctx *QueryContext, sel *sqlparse.SelectStmt) (*vector.Batch, error) {
	if sel.From == nil {
		one := vector.MustBatch(vector.NewSchema(vector.Field{Name: "__one", Type: vector.Int64}),
			[]*vector.Column{vector.NewInt64Column([]int64{0})})
		return one, nil
	}

	single := len(sel.Joins) == 0
	qualify := !single || sel.From.Alias != ""

	type source struct {
		ref  *sqlparse.TableRef
		join *sqlparse.Join // nil for the leading table
	}
	sources := []source{{ref: sel.From}}
	for i := range sel.Joins {
		sources = append(sources, source{ref: sel.Joins[i].Table, join: &sel.Joins[i]})
	}

	// Stats-based scan ordering for DPP: execute the most selective /
	// smallest sources first so their join keys can prune the big fact
	// scan. We estimate with cached table statistics when available.
	batches := make([]*vector.Batch, len(sources))
	order := e.scanOrder(ctx, sel, sources[0].ref, sel.Joins)

	// dppRanges accumulates join-key ranges learned from executed
	// sides, keyed by "qual.col" of the not-yet-executed side.
	dppRanges := map[string][2]vector.Value{}

	for _, idx := range order {
		src := sources[idx]
		preds := pushdownPreds(sel.Where, src.ref.DisplayName(), single)
		if e.Opts.EnableDPP {
			preds = append(preds, e.dppPredsFor(src.ref, sel, dppRanges)...)
		}
		b, err := e.execTableRef(ctx, src.ref, preds)
		if err != nil {
			return nil, err
		}
		if qualify {
			b = qualifyBatch(b, src.ref.DisplayName())
		}
		batches[idx] = b
		if e.Opts.EnableDPP {
			e.recordDPPRanges(sel, src.ref, b, dppRanges)
		}
	}

	// Fold joins left-to-right.
	out := batches[0]
	for i, j := range sel.Joins {
		var err error
		out, err = e.hashJoin(ctx, out, batches[i+1], j)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// scanOrder returns source indices ordered so that sources with
// explicit literal filters run before unfiltered ones (dimension
// tables before facts), enabling dynamic partition pruning.
func (e *Engine) scanOrder(ctx *QueryContext, sel *sqlparse.SelectStmt, from *sqlparse.TableRef, joins []sqlparse.Join) []int {
	n := 1 + len(joins)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if !e.Opts.EnableDPP || n == 1 {
		return order
	}
	single := false
	filtered := func(ref *sqlparse.TableRef) bool {
		return len(pushdownPreds(sel.Where, ref.DisplayName(), single)) > 0
	}
	refAt := func(i int) *sqlparse.TableRef {
		if i == 0 {
			return from
		}
		return joins[i-1].Table
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := filtered(refAt(order[a])), filtered(refAt(order[b]))
		return fa && !fb
	})
	return order
}

// recordDPPRanges captures min/max of join keys on the just-executed
// side of each join for later scans.
func (e *Engine) recordDPPRanges(sel *sqlparse.SelectStmt, executed *sqlparse.TableRef, b *vector.Batch, ranges map[string][2]vector.Value) {
	for _, j := range sel.Joins {
		pairs := equiPairs(j.On)
		for _, pr := range pairs {
			var mine, other sqlparse.ColumnRef
			switch executed.DisplayName() {
			case pr[0].Table:
				mine, other = pr[0], pr[1]
			case pr[1].Table:
				mine, other = pr[1], pr[0]
			default:
				continue
			}
			// A LEFT JOIN preserves every row of its left side:
			// unmatched rows must surface null-extended, so a key
			// range learned elsewhere may only prune the joined
			// (right) table — never the preserved side.
			if j.Kind == sqlparse.LeftJoin && other.Table != j.Table.DisplayName() {
				continue
			}
			i, err := resolveColumn(b.Schema, mine)
			if err != nil {
				continue
			}
			min, max, _ := vector.MinMax(b.Cols[i])
			if min.IsNull() {
				continue
			}
			key := other.Table + "." + other.Name
			ranges[key] = [2]vector.Value{min, max}
		}
	}
}

// dppPredsFor converts recorded join-key ranges into pushdown
// predicates for a table about to be scanned.
func (e *Engine) dppPredsFor(ref *sqlparse.TableRef, sel *sqlparse.SelectStmt, ranges map[string][2]vector.Value) []colfmt.Predicate {
	var out []colfmt.Predicate
	for key, r := range ranges {
		i := strings.LastIndexByte(key, '.')
		tbl, col := key[:i], key[i+1:]
		if tbl != ref.DisplayName() {
			continue
		}
		out = append(out,
			colfmt.Predicate{Column: col, Op: vector.GE, Value: r[0]},
			colfmt.Predicate{Column: col, Op: vector.LE, Value: r[1]},
		)
	}
	return out
}

// equiPairs extracts column-equality pairs from a join condition.
func equiPairs(on sqlparse.Expr) [][2]sqlparse.ColumnRef {
	var out [][2]sqlparse.ColumnRef
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		bin, ok := e.(sqlparse.Binary)
		if !ok {
			return
		}
		if bin.Op == "AND" {
			walk(bin.L)
			walk(bin.R)
			return
		}
		if bin.Op != "=" {
			return
		}
		l, lok := bin.L.(sqlparse.ColumnRef)
		r, rok := bin.R.(sqlparse.ColumnRef)
		if lok && rok {
			out = append(out, [2]sqlparse.ColumnRef{l, r})
		}
	}
	walk(on)
	return out
}

// execTableRef evaluates one FROM source.
func (e *Engine) execTableRef(ctx *QueryContext, ref *sqlparse.TableRef, preds []colfmt.Predicate) (*vector.Batch, error) {
	switch {
	case ref.TVF != nil:
		fn, ok := e.tvf(ref.TVF.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchFunc, ref.TVF.Name)
		}
		input, err := e.execTableRef(ctx, ref.TVF.Input, nil)
		if err != nil {
			return nil, err
		}
		return fn(ctx, ref.TVF.Model, input)
	case ref.Subquery != nil:
		return e.execSelect(ctx, ref.Subquery)
	case ref.Name != "":
		return e.scanTable(ctx, ref.Name, preds)
	}
	return nil, fmt.Errorf("%w: empty table reference", ErrSemantic)
}

// hashJoin executes an equi-join between left and right qualified
// batches.
func (e *Engine) hashJoin(ctx *QueryContext, left, right *vector.Batch, j sqlparse.Join) (out *vector.Batch, err error) {
	if ctx.Span != nil {
		sp := ctx.Span.Child("join")
		sp.SetInt("left_rows", int64(left.N))
		sp.SetInt("right_rows", int64(right.N))
		if e.Opts.RowAtATimeExec {
			sp.SetStr("exec", "row-at-a-time")
		} else {
			sp.SetStr("exec", "vectorized")
			sp.SetInt("workers", int64(e.execWorkers()))
		}
		defer func() {
			if out != nil {
				sp.SetInt("rows", int64(out.N))
			}
			sp.End()
		}()
	}
	pairs := equiPairs(j.On)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("%w: JOIN requires at least one column equality, got %s", ErrUnsupported, j.On)
	}
	var leftKeys, rightKeys []int
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		li, errA := resolveColumn(left.Schema, a)
		if errA != nil {
			// a belongs to the right side; swap the pair.
			var err error
			li, err = resolveColumn(left.Schema, b)
			if err != nil {
				return nil, fmt.Errorf("%w: join key %s matches neither side", ErrSemantic, b)
			}
			b = a
		}
		ri, err := resolveColumn(right.Schema, b)
		if err != nil {
			return nil, err
		}
		leftKeys = append(leftKeys, li)
		rightKeys = append(rightKeys, ri)
	}

	if e.Opts.RowAtATimeExec {
		return e.hashJoinLegacy(left, right, leftKeys, rightKeys, j.Kind)
	}

	kind := vector.InnerJoin
	if j.Kind == sqlparse.LeftJoin {
		kind = vector.LeftOuterJoin
	}
	workers := e.execWorkers()
	res, err := vector.HashJoinWith(ctx.mem, left, right, leftKeys, rightKeys, kind, workers)
	if err != nil {
		return nil, err
	}

	// One combined index per side: matched pairs in probe order, then
	// the null-extended unmatched left rows (right index -1 = NULL).
	al := ctx.mem.Allocator()
	nOut := len(res.Left) + len(res.LeftOuter)
	leftFull := al.Int32s(nOut)
	n1 := copy(leftFull, res.Left)
	copy(leftFull[n1:], res.LeftOuter)
	rightFull := al.Int32s(nOut)
	copy(rightFull, res.Right)
	for i := len(res.Right); i < nOut; i++ {
		rightFull[i] = -1
	}

	fields := append(append([]vector.Field(nil), left.Schema.Fields...), right.Schema.Fields...)
	cols := make([]*vector.Column, len(left.Cols)+len(right.Cols))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	gather := func(dst int, c *vector.Column, idx []int32) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cols[dst] = vector.GatherNullWith(ctx.mem, c, idx)
		}()
	}
	for i, c := range left.Cols {
		gather(i, c, leftFull)
	}
	for i, c := range right.Cols {
		gather(len(left.Cols)+i, c, rightFull)
	}
	wg.Wait()
	return vector.NewBatch(vector.Schema{Fields: fields}, cols)
}

// execProject evaluates the projection list.
func (e *Engine) execProject(ctx *QueryContext, sel *sqlparse.SelectStmt, in *vector.Batch) (*vector.Batch, error) {
	var fields []vector.Field
	var cols []*vector.Column
	for pos, item := range sel.Items {
		if item.Star {
			for i, f := range in.Schema.Fields {
				if f.Name == "__one" {
					continue
				}
				name := f.Name
				if i2 := strings.LastIndexByte(name, '.'); i2 >= 0 && in.Schema.Index(name[i2+1:]) < 0 {
					// Unqualify when unambiguous for readable output.
					bare := name[i2+1:]
					conflict := false
					for k, other := range in.Schema.Fields {
						if k != i && strings.HasSuffix(other.Name, "."+bare) {
							conflict = true
						}
					}
					if !conflict {
						name = bare
					}
				}
				fields = append(fields, vector.Field{Name: name, Type: f.Type})
				cols = append(cols, in.Cols[i])
			}
			continue
		}
		c, err := e.evalExpr(ctx, in, item.Expr)
		if err != nil {
			return nil, err
		}
		fields = append(fields, vector.Field{Name: outputName(item, pos), Type: c.Type})
		cols = append(cols, c)
	}
	return vector.NewBatch(vector.Schema{Fields: fields}, cols)
}

// execAggregate evaluates GROUP BY / aggregate queries.
func (e *Engine) execAggregate(ctx *QueryContext, sel *sqlparse.SelectStmt, in *vector.Batch) (*vector.Batch, error) {
	// Evaluate group keys.
	keyCols := make([]*vector.Column, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		c, err := e.evalExpr(ctx, in, g)
		if err != nil {
			return nil, err
		}
		keyCols[i] = c
	}

	// Pre-evaluate aggregate argument expressions once over the whole
	// input. Select lists are a handful of items, so the dedup tables
	// here (and below) are linear slices, not maps — the same lookup
	// cost at this width without a per-query map allocation.
	type argCol struct {
		key string
		col *vector.Column
	}
	var argCols []argCol
	findArg := func(key string) *vector.Column {
		for _, a := range argCols {
			if a.key == key {
				return a.col
			}
		}
		return nil
	}
	var prepare func(expr sqlparse.Expr) error
	prepare = func(expr sqlparse.Expr) error {
		call, ok := expr.(sqlparse.Call)
		if !ok || !sqlparse.AggregateFuncs[call.Name] {
			return nil
		}
		if call.Star || len(call.Args) == 0 {
			return nil
		}
		key := call.Args[0].String()
		if findArg(key) != nil {
			return nil
		}
		c, err := e.evalExpr(ctx, in, call.Args[0])
		if err != nil {
			return err
		}
		argCols = append(argCols, argCol{key: key, col: c})
		return nil
	}
	for _, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("%w: SELECT * with GROUP BY", ErrUnsupported)
		}
		if err := prepare(item.Expr); err != nil {
			return nil, err
		}
	}

	if e.Opts.RowAtATimeExec {
		return e.execAggregateLegacy(ctx, sel, in, keyCols, findArg)
	}

	workers := e.execWorkers()
	grouping := vector.GroupKeysWith(ctx.mem, keyCols, in.N, workers)

	// Classify select items into aggregate specs (deduplicated; AVG
	// decomposes into SUM + COUNT) and group-key references. Errors are
	// deferred exactly like the row-at-a-time path: with zero groups no
	// item is ever evaluated, so nothing can fail.
	groupExprIndex := groupKeyIndex(sel)
	type itemPlan struct {
		specA  int // primary spec (-1 = group key reference)
		specB  int // COUNT spec for AVG, else -1
		avg    bool
		keyIdx int
	}
	var specs []vector.AggSpec
	type specKey struct {
		kind vector.AggKind
		col  *vector.Column
	}
	specIdx := map[specKey]int{}
	addSpec := func(kind vector.AggKind, col *vector.Column) int {
		k := specKey{kind, col}
		if i, ok := specIdx[k]; ok {
			return i
		}
		specs = append(specs, vector.AggSpec{Kind: kind, Col: col})
		specIdx[k] = len(specs) - 1
		return len(specs) - 1
	}
	plans := make([]itemPlan, len(sel.Items))
	var itemErr error
	for i, item := range sel.Items {
		plans[i] = itemPlan{specA: -1, specB: -1, keyIdx: -1}
		classify := func() error {
			if call, ok := item.Expr.(sqlparse.Call); ok && sqlparse.AggregateFuncs[call.Name] {
				if call.Name == "COUNT" && (call.Star || len(call.Args) == 0) {
					plans[i].specA = addSpec(vector.AggCount, nil)
					return nil
				}
				if len(call.Args) != 1 {
					return fmt.Errorf("%w: %s expects one argument", ErrSemantic, call.Name)
				}
				col := findArg(call.Args[0].String())
				if col == nil {
					return fmt.Errorf("%w: aggregate argument %s not prepared", ErrSemantic, call.Args[0])
				}
				switch call.Name {
				case "COUNT":
					plans[i].specA = addSpec(vector.AggCount, col)
				case "SUM":
					plans[i].specA = addSpec(vector.AggSum, col)
				case "MIN":
					plans[i].specA = addSpec(vector.AggMin, col)
				case "MAX":
					plans[i].specA = addSpec(vector.AggMax, col)
				case "AVG":
					plans[i].specA = addSpec(vector.AggSum, col)
					plans[i].specB = addSpec(vector.AggCount, col)
					plans[i].avg = true
				default:
					return fmt.Errorf("%w: aggregate %s", ErrUnsupported, call.Name)
				}
				return nil
			}
			if k, ok := groupExprIndex[item.Expr.String()]; ok {
				plans[i].keyIdx = k
				return nil
			}
			if ref, ok := item.Expr.(sqlparse.ColumnRef); ok {
				if k, ok := groupExprIndex[ref.Name]; ok {
					plans[i].keyIdx = k
					return nil
				}
			}
			return fmt.Errorf("%w: %s must appear in GROUP BY or an aggregate", ErrSemantic, item.Expr)
		}
		if err := classify(); err != nil && itemErr == nil {
			itemErr = err
		}
	}
	if grouping.NumGroups > 0 && itemErr != nil {
		return nil, itemErr
	}

	results := vector.GroupAggregateWith(ctx.mem, grouping.IDs, grouping.NumGroups, specs, workers)

	// Group-key values come from each group's first-encounter row. Both
	// the key table and the output rows are carved from single flat
	// backing arrays — one allocation each, not one per group.
	keyVals := make([][]vector.Value, len(keyCols))
	kflat := make([]vector.Value, len(keyCols)*grouping.NumGroups)
	for k, kc := range keyCols {
		keyVals[k] = kflat[k*grouping.NumGroups : (k+1)*grouping.NumGroups]
		for g, rep := range grouping.Rep {
			if rep >= 0 {
				keyVals[k][g] = kc.Value(int(rep))
			}
		}
	}

	rows := make([][]vector.Value, grouping.NumGroups)
	rflat := make([]vector.Value, grouping.NumGroups*len(sel.Items))
	for g := 0; g < grouping.NumGroups; g++ {
		row := rflat[g*len(sel.Items) : (g+1)*len(sel.Items)]
		for i := range sel.Items {
			p := plans[i]
			switch {
			case p.avg:
				sum, cnt := results[p.specA][g], results[p.specB][g]
				if sum.IsNull() || cnt.AsInt() == 0 {
					row[i] = vector.NullValue
				} else {
					row[i] = vector.FloatValue(sum.AsFloat() / float64(cnt.AsInt()))
				}
			case p.specA >= 0:
				row[i] = results[p.specA][g]
			default:
				row[i] = keyVals[p.keyIdx][g]
			}
		}
		rows[g] = row
	}
	return buildAggregateOutput(sel, rows)
}

// groupKeyIndex maps a GROUP BY expression's rendering (and, for
// column references, the bare name) to its key position.
func groupKeyIndex(sel *sqlparse.SelectStmt) map[string]int {
	idx := map[string]int{}
	for i, g := range sel.GroupBy {
		idx[g.String()] = i
		if ref, ok := g.(sqlparse.ColumnRef); ok {
			idx[ref.Name] = i // allow unqualified reuse
		}
	}
	return idx
}

// buildAggregateOutput materializes aggregate result rows, inferring
// each output column's type from its first non-null value (Int64 when
// all null).
func buildAggregateOutput(sel *sqlparse.SelectStmt, rows [][]vector.Value) (*vector.Batch, error) {
	n := len(rows)
	fields := make([]vector.Field, len(sel.Items))
	cols := make([]*vector.Column, len(sel.Items))
	for i, item := range sel.Items {
		t := vector.Int64
		for _, row := range rows {
			if !row[i].IsNull() {
				t = row[i].Type
				break
			}
		}
		fields[i] = vector.Field{Name: outputName(item, i), Type: t}

		// Materialize the column directly, presized — the group count is
		// known, so the row-at-a-time Builder's per-row buffering would
		// only add allocations.
		c := &vector.Column{Type: t, Len: n, Enc: vector.Plain}
		var nulls []bool
		set := func(g int, v vector.Value) {
			if v.IsNull() {
				if nulls == nil {
					nulls = make([]bool, n)
				}
				nulls[g] = true
				return
			}
			switch t {
			case vector.Int64, vector.Timestamp:
				c.Ints[g] = v.I
			case vector.Float64:
				c.Floats[g] = v.F
			case vector.Bool:
				c.Bools[g] = v.B
			case vector.String, vector.Bytes:
				c.Strs[g] = v.S
			}
		}
		switch t {
		case vector.Int64, vector.Timestamp:
			c.Ints = make([]int64, n)
		case vector.Float64:
			c.Floats = make([]float64, n)
		case vector.Bool:
			c.Bools = make([]bool, n)
		case vector.String, vector.Bytes:
			c.Strs = make([]string, n)
		}
		for g, row := range rows {
			set(g, row[i])
		}
		c.Nulls = nulls
		cols[i] = c
	}
	return &vector.Batch{Schema: vector.Schema{Fields: fields}, Cols: cols, N: n}, nil
}

// execOrderBy sorts the projected output. ORDER BY expressions may
// reference output aliases or input columns. A non-negative limit
// bounds the sort to a top-K selection over a size-K heap — same
// result as the full stable sort followed by LIMIT, in O(N log K).
func (e *Engine) execOrderBy(ctx *QueryContext, sel *sqlparse.SelectStmt, out, in *vector.Batch, limit int) (*vector.Batch, error) {
	keys := make([]*vector.Column, len(sel.OrderBy))
	for i, item := range sel.OrderBy {
		// Try the output schema first (aliases and group keys — whose
		// output names drop the table qualifier), then the input.
		if ref, ok := item.Expr.(sqlparse.ColumnRef); ok {
			if idx := out.Schema.Index(ref.Name); idx >= 0 {
				keys[i] = out.Cols[idx]
				continue
			}
		}
		c, err := e.evalExpr(ctx, out, item.Expr)
		if err != nil {
			if in == nil || in.N != out.N {
				return nil, err
			}
			c, err = e.evalExpr(ctx, in, item.Expr)
			if err != nil {
				return nil, err
			}
		}
		keys[i] = c
	}
	// Strict total order: ORDER BY keys, then original row index — the
	// order a stable sort produces.
	less := func(a, b int) bool {
		for k, item := range sel.OrderBy {
			va, vb := keys[k].Value(a), keys[k].Value(b)
			cmp := compareForSort(va, vb)
			if cmp == 0 {
				continue
			}
			if item.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return a < b
	}

	var idx []int
	if limit >= 0 && limit < out.N {
		idx = topK(out.N, limit, less)
	} else {
		idx = make([]int, out.N)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	}
	cols := make([]*vector.Column, len(out.Cols))
	for i, c := range out.Cols {
		cols[i] = vector.GatherWith(ctx.mem, c, idx)
	}
	return &vector.Batch{Schema: out.Schema, Cols: cols, N: len(idx)}, nil
}

// orderHeap is a bounded max-heap over row indices: the root is the
// worst row currently kept, so a better candidate replaces it in
// O(log K).
type orderHeap struct {
	idx  []int
	less func(a, b int) bool
}

func (h *orderHeap) Len() int           { return len(h.idx) }
func (h *orderHeap) Less(i, j int) bool { return h.less(h.idx[j], h.idx[i]) }
func (h *orderHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *orderHeap) Push(x any)         { h.idx = append(h.idx, x.(int)) }
func (h *orderHeap) Pop() any {
	x := h.idx[len(h.idx)-1]
	h.idx = h.idx[:len(h.idx)-1]
	return x
}

// topK returns the first k rows of the sorted order without sorting
// all n rows.
func topK(n, k int, less func(a, b int) bool) []int {
	h := &orderHeap{less: less}
	for i := 0; i < n; i++ {
		if h.Len() < k {
			heap.Push(h, i)
		} else if k > 0 && less(i, h.idx[0]) {
			h.idx[0] = i
			heap.Fix(h, 0)
		}
	}
	sort.Slice(h.idx, func(a, b int) bool { return less(h.idx[a], h.idx[b]) })
	return h.idx
}

// compareForSort orders values with NULLs first.
func compareForSort(a, b vector.Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	return a.Compare(b)
}

// --- DML dispatch ---

func (e *Engine) requireMutator(ctx *QueryContext) (Mutator, error) {
	if ctx.Mutator != nil {
		return ctx.Mutator, nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.mutator == nil {
		return nil, fmt.Errorf("%w: no DML handler configured", ErrUnsupported)
	}
	return e.mutator, nil
}

func (e *Engine) execInsert(ctx *QueryContext, ins *sqlparse.InsertStmt) (*Result, error) {
	m, err := e.requireMutator(ctx)
	if err != nil {
		return nil, err
	}
	if err := e.Auth.CheckWrite(ctx.Principal, ins.Table); err != nil {
		return nil, err
	}
	t, err := e.Catalog.Table(ins.Table)
	if err != nil {
		return nil, err
	}
	var rows *vector.Batch
	if ins.Select != nil {
		rows, err = e.execSelect(ctx, ins.Select)
		if err != nil {
			return nil, err
		}
	} else {
		cols := ins.Columns
		if len(cols) == 0 {
			for _, f := range t.Schema.Fields {
				cols = append(cols, f.Name)
			}
		}
		schema, err := t.Schema.Select(cols)
		if err != nil {
			return nil, err
		}
		builder := vector.NewBuilder(schema)
		for _, row := range ins.Rows {
			if len(row) != len(cols) {
				return nil, fmt.Errorf("%w: INSERT row arity %d != %d columns", ErrSemantic, len(row), len(cols))
			}
			vals := make([]vector.Value, len(row))
			for i, expr := range row {
				lit, ok := expr.(sqlparse.Literal)
				if !ok {
					return nil, fmt.Errorf("%w: INSERT VALUES must be literals", ErrUnsupported)
				}
				v := coerce(lit.Value, schema.Fields[i].Type)
				if !v.IsNull() && v.Type != schema.Fields[i].Type {
					return nil, fmt.Errorf("%w: value %s is %v, column %q is %v",
						ErrSemantic, v, v.Type, schema.Fields[i].Name, schema.Fields[i].Type)
				}
				vals[i] = v
			}
			builder.Append(vals...)
		}
		rows = builder.Build()
	}
	// The mutator may retain rows past this statement (a transaction
	// session buffers them until COMMIT), so detach any arena-backed
	// columns first.
	rows = vector.DetachBatch(rows)
	if err := m.Insert(ctx, ins.Table, rows); err != nil {
		return nil, err
	}
	return &Result{Batch: vector.EmptyBatch(t.Schema), Stats: ctx.Stats}, nil
}

// coerce adapts a literal to a column type (int literals into float or
// timestamp columns).
func coerce(v vector.Value, t vector.Type) vector.Value {
	if v.IsNull() || v.Type == t {
		return v
	}
	switch t {
	case vector.Float64:
		if v.Type == vector.Int64 {
			return vector.FloatValue(float64(v.I))
		}
	case vector.Timestamp:
		if v.Type == vector.Int64 {
			return vector.TimestampValue(v.I)
		}
	case vector.Bytes:
		if v.Type == vector.String {
			return vector.Value{Type: vector.Bytes, S: v.S}
		}
	}
	return v
}

func (e *Engine) whereFunc(ctx *QueryContext, where sqlparse.Expr) func(*vector.Batch) ([]bool, error) {
	return func(b *vector.Batch) ([]bool, error) {
		if where == nil {
			mask := make([]bool, b.N)
			for i := range mask {
				mask[i] = true
			}
			return mask, nil
		}
		return e.evalBool(ctx, b, where)
	}
}

func (e *Engine) execDelete(ctx *QueryContext, del *sqlparse.DeleteStmt) (*Result, error) {
	m, err := e.requireMutator(ctx)
	if err != nil {
		return nil, err
	}
	if err := e.Auth.CheckWrite(ctx.Principal, del.Table); err != nil {
		return nil, err
	}
	n, err := m.Delete(ctx, del.Table, e.whereFunc(ctx, del.Where))
	if err != nil {
		return nil, err
	}
	out := vector.MustBatch(vector.NewSchema(vector.Field{Name: "rows_deleted", Type: vector.Int64}),
		[]*vector.Column{vector.NewInt64Column([]int64{n})})
	return &Result{Batch: out, Stats: ctx.Stats}, nil
}

func (e *Engine) execUpdate(ctx *QueryContext, upd *sqlparse.UpdateStmt) (*Result, error) {
	m, err := e.requireMutator(ctx)
	if err != nil {
		return nil, err
	}
	if err := e.Auth.CheckWrite(ctx.Principal, upd.Table); err != nil {
		return nil, err
	}
	set := func(b *vector.Batch) (*vector.Batch, error) {
		cols := append([]*vector.Column(nil), b.Cols...)
		for col, expr := range upd.Set {
			i := b.Schema.Index(col)
			if i < 0 {
				return nil, fmt.Errorf("%w: unknown column %q in UPDATE", ErrSemantic, col)
			}
			c, err := e.evalExpr(ctx, b, expr)
			if err != nil {
				return nil, err
			}
			if c.Type != b.Schema.Fields[i].Type {
				// Coerce literals (e.g. int into float column).
				dec := c.Decode()
				builder := vector.NewBuilder(vector.NewSchema(b.Schema.Fields[i]))
				for r := 0; r < dec.Len; r++ {
					builder.Append(coerce(dec.Value(r), b.Schema.Fields[i].Type))
				}
				c = builder.Build().Cols[0]
			}
			cols[i] = c
		}
		return vector.NewBatch(b.Schema, cols)
	}
	n, err := m.Update(ctx, upd.Table, set, e.whereFunc(ctx, upd.Where))
	if err != nil {
		return nil, err
	}
	out := vector.MustBatch(vector.NewSchema(vector.Field{Name: "rows_updated", Type: vector.Int64}),
		[]*vector.Column{vector.NewInt64Column([]int64{n})})
	return &Result{Batch: out, Stats: ctx.Stats}, nil
}

func (e *Engine) execCTAS(ctx *QueryContext, cta *sqlparse.CreateTableAsStmt) (*Result, error) {
	m, err := e.requireMutator(ctx)
	if err != nil {
		return nil, err
	}
	rows, err := e.execSelect(ctx, cta.Select)
	if err != nil {
		return nil, err
	}
	// Detach: the mutator may buffer rows (txn CTAS) and the Result
	// below outlives the query arena.
	rows = vector.DetachBatch(rows)
	if err := m.CreateTableAs(ctx, cta.Table, cta.OrReplace, rows); err != nil {
		return nil, err
	}
	return &Result{Batch: rows, Stats: ctx.Stats}, nil
}
