package engine

import (
	"fmt"
	"sort"
	"strings"

	"biglake/internal/colfmt"
	"biglake/internal/sqlparse"
	"biglake/internal/vector"
)

// execSelect runs a SELECT statement to completion.
func (e *Engine) execSelect(ctx *QueryContext, sel *sqlparse.SelectStmt) (*vector.Batch, error) {
	joined, err := e.execFromClause(ctx, sel)
	if err != nil {
		return nil, err
	}

	// Residual WHERE (pushdown is best-effort; full predicate is
	// always enforced here).
	if sel.Where != nil {
		mask, err := e.evalBool(ctx, joined, sel.Where)
		if err != nil {
			return nil, err
		}
		joined, err = vector.Filter(joined, mask)
		if err != nil {
			return nil, err
		}
	}

	// Aggregation vs plain projection.
	hasAgg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && sqlparse.IsAggregate(item.Expr) {
			hasAgg = true
		}
	}
	var out *vector.Batch
	if hasAgg {
		out, err = e.execAggregate(ctx, sel, joined)
	} else {
		out, err = e.execProject(ctx, sel, joined)
	}
	if err != nil {
		return nil, err
	}

	if len(sel.OrderBy) > 0 {
		out, err = e.execOrderBy(ctx, sel, out, joined)
		if err != nil {
			return nil, err
		}
	}
	if sel.Limit >= 0 && int64(out.N) > sel.Limit {
		idx := make([]int, sel.Limit)
		for i := range idx {
			idx[i] = i
		}
		cols := make([]*vector.Column, len(out.Cols))
		for i, c := range out.Cols {
			cols[i] = vector.Gather(c, idx)
		}
		out = &vector.Batch{Schema: out.Schema, Cols: cols, N: len(idx)}
	}
	return out, nil
}

// execFromClause evaluates the FROM clause (including joins) into one
// qualified batch. With no FROM, a single empty row is produced so
// constant expressions evaluate.
func (e *Engine) execFromClause(ctx *QueryContext, sel *sqlparse.SelectStmt) (*vector.Batch, error) {
	if sel.From == nil {
		one := vector.MustBatch(vector.NewSchema(vector.Field{Name: "__one", Type: vector.Int64}),
			[]*vector.Column{vector.NewInt64Column([]int64{0})})
		return one, nil
	}

	single := len(sel.Joins) == 0
	qualify := !single || sel.From.Alias != ""

	type source struct {
		ref  *sqlparse.TableRef
		join *sqlparse.Join // nil for the leading table
	}
	sources := []source{{ref: sel.From}}
	for i := range sel.Joins {
		sources = append(sources, source{ref: sel.Joins[i].Table, join: &sel.Joins[i]})
	}

	// Stats-based scan ordering for DPP: execute the most selective /
	// smallest sources first so their join keys can prune the big fact
	// scan. We estimate with cached table statistics when available.
	batches := make([]*vector.Batch, len(sources))
	order := e.scanOrder(ctx, sel, sources[0].ref, sel.Joins)

	// dppRanges accumulates join-key ranges learned from executed
	// sides, keyed by "qual.col" of the not-yet-executed side.
	dppRanges := map[string][2]vector.Value{}

	for _, idx := range order {
		src := sources[idx]
		preds := pushdownPreds(sel.Where, src.ref.DisplayName(), single)
		if e.Opts.EnableDPP {
			preds = append(preds, e.dppPredsFor(src.ref, sel, dppRanges)...)
		}
		b, err := e.execTableRef(ctx, src.ref, preds)
		if err != nil {
			return nil, err
		}
		if qualify {
			b = qualifyBatch(b, src.ref.DisplayName())
		}
		batches[idx] = b
		if e.Opts.EnableDPP {
			e.recordDPPRanges(sel, src.ref, b, dppRanges)
		}
	}

	// Fold joins left-to-right.
	out := batches[0]
	for i, j := range sel.Joins {
		var err error
		out, err = e.hashJoin(ctx, out, batches[i+1], j)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// scanOrder returns source indices ordered so that sources with
// explicit literal filters run before unfiltered ones (dimension
// tables before facts), enabling dynamic partition pruning.
func (e *Engine) scanOrder(ctx *QueryContext, sel *sqlparse.SelectStmt, from *sqlparse.TableRef, joins []sqlparse.Join) []int {
	n := 1 + len(joins)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if !e.Opts.EnableDPP || n == 1 {
		return order
	}
	single := false
	filtered := func(ref *sqlparse.TableRef) bool {
		return len(pushdownPreds(sel.Where, ref.DisplayName(), single)) > 0
	}
	refAt := func(i int) *sqlparse.TableRef {
		if i == 0 {
			return from
		}
		return joins[i-1].Table
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := filtered(refAt(order[a])), filtered(refAt(order[b]))
		return fa && !fb
	})
	return order
}

// recordDPPRanges captures min/max of join keys on the just-executed
// side of each join for later scans.
func (e *Engine) recordDPPRanges(sel *sqlparse.SelectStmt, executed *sqlparse.TableRef, b *vector.Batch, ranges map[string][2]vector.Value) {
	for _, j := range sel.Joins {
		pairs := equiPairs(j.On)
		for _, pr := range pairs {
			var mine, other sqlparse.ColumnRef
			switch executed.DisplayName() {
			case pr[0].Table:
				mine, other = pr[0], pr[1]
			case pr[1].Table:
				mine, other = pr[1], pr[0]
			default:
				continue
			}
			// A LEFT JOIN preserves every row of its left side:
			// unmatched rows must surface null-extended, so a key
			// range learned elsewhere may only prune the joined
			// (right) table — never the preserved side.
			if j.Kind == sqlparse.LeftJoin && other.Table != j.Table.DisplayName() {
				continue
			}
			i, err := resolveColumn(b.Schema, mine)
			if err != nil {
				continue
			}
			min, max, _ := vector.MinMax(b.Cols[i])
			if min.IsNull() {
				continue
			}
			key := other.Table + "." + other.Name
			ranges[key] = [2]vector.Value{min, max}
		}
	}
}

// dppPredsFor converts recorded join-key ranges into pushdown
// predicates for a table about to be scanned.
func (e *Engine) dppPredsFor(ref *sqlparse.TableRef, sel *sqlparse.SelectStmt, ranges map[string][2]vector.Value) []colfmt.Predicate {
	var out []colfmt.Predicate
	for key, r := range ranges {
		i := strings.LastIndexByte(key, '.')
		tbl, col := key[:i], key[i+1:]
		if tbl != ref.DisplayName() {
			continue
		}
		out = append(out,
			colfmt.Predicate{Column: col, Op: vector.GE, Value: r[0]},
			colfmt.Predicate{Column: col, Op: vector.LE, Value: r[1]},
		)
	}
	return out
}

// equiPairs extracts column-equality pairs from a join condition.
func equiPairs(on sqlparse.Expr) [][2]sqlparse.ColumnRef {
	var out [][2]sqlparse.ColumnRef
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		bin, ok := e.(sqlparse.Binary)
		if !ok {
			return
		}
		if bin.Op == "AND" {
			walk(bin.L)
			walk(bin.R)
			return
		}
		if bin.Op != "=" {
			return
		}
		l, lok := bin.L.(sqlparse.ColumnRef)
		r, rok := bin.R.(sqlparse.ColumnRef)
		if lok && rok {
			out = append(out, [2]sqlparse.ColumnRef{l, r})
		}
	}
	walk(on)
	return out
}

// execTableRef evaluates one FROM source.
func (e *Engine) execTableRef(ctx *QueryContext, ref *sqlparse.TableRef, preds []colfmt.Predicate) (*vector.Batch, error) {
	switch {
	case ref.TVF != nil:
		fn, ok := e.tvf(ref.TVF.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchFunc, ref.TVF.Name)
		}
		input, err := e.execTableRef(ctx, ref.TVF.Input, nil)
		if err != nil {
			return nil, err
		}
		return fn(ctx, ref.TVF.Model, input)
	case ref.Subquery != nil:
		return e.execSelect(ctx, ref.Subquery)
	case ref.Name != "":
		return e.scanTable(ctx, ref.Name, preds)
	}
	return nil, fmt.Errorf("%w: empty table reference", ErrSemantic)
}

// hashJoin executes an equi-join between left and right qualified
// batches.
func (e *Engine) hashJoin(ctx *QueryContext, left, right *vector.Batch, j sqlparse.Join) (*vector.Batch, error) {
	pairs := equiPairs(j.On)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("%w: JOIN requires at least one column equality, got %s", ErrUnsupported, j.On)
	}
	var leftKeys, rightKeys []int
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		li, errA := resolveColumn(left.Schema, a)
		if errA != nil {
			// a belongs to the right side; swap the pair.
			var err error
			li, err = resolveColumn(left.Schema, b)
			if err != nil {
				return nil, fmt.Errorf("%w: join key %s matches neither side", ErrSemantic, b)
			}
			b = a
		}
		ri, err := resolveColumn(right.Schema, b)
		if err != nil {
			return nil, err
		}
		leftKeys = append(leftKeys, li)
		rightKeys = append(rightKeys, ri)
	}

	// Build on the right side (joined table); probe with the left.
	build := make(map[string][]int, right.N)
	for r := 0; r < right.N; r++ {
		key, null := joinKey(right, rightKeys, r)
		if null {
			continue
		}
		build[key] = append(build[key], r)
	}
	var leftIdx, rightIdx []int
	var leftOnly []int
	for l := 0; l < left.N; l++ {
		key, null := joinKey(left, leftKeys, l)
		if null {
			if j.Kind == sqlparse.LeftJoin {
				leftOnly = append(leftOnly, l)
			}
			continue
		}
		matches := build[key]
		if len(matches) == 0 {
			if j.Kind == sqlparse.LeftJoin {
				leftOnly = append(leftOnly, l)
			}
			continue
		}
		for _, r := range matches {
			leftIdx = append(leftIdx, l)
			rightIdx = append(rightIdx, r)
		}
	}

	fields := append(append([]vector.Field(nil), left.Schema.Fields...), right.Schema.Fields...)
	cols := make([]*vector.Column, 0, len(fields))
	totalRows := len(leftIdx) + len(leftOnly)
	for _, c := range left.Cols {
		full := append(append([]int(nil), leftIdx...), leftOnly...)
		cols = append(cols, vector.Gather(c, full))
	}
	for _, c := range right.Cols {
		g := vector.Gather(c, rightIdx)
		if len(leftOnly) > 0 {
			// Null-extend for unmatched left rows.
			retyped := &vector.Column{Type: c.Type, Len: len(leftOnly), Enc: vector.Plain, Nulls: make([]bool, len(leftOnly))}
			for i := range retyped.Nulls {
				retyped.Nulls[i] = true
			}
			switch c.Type {
			case vector.Int64, vector.Timestamp:
				retyped.Ints = make([]int64, len(leftOnly))
			case vector.Float64:
				retyped.Floats = make([]float64, len(leftOnly))
			case vector.Bool:
				retyped.Bools = make([]bool, len(leftOnly))
			case vector.String, vector.Bytes:
				retyped.Strs = make([]string, len(leftOnly))
			}
			merged, err := vector.AppendBatch(
				vector.MustBatch(vector.NewSchema(vector.Field{Name: "x", Type: c.Type}), []*vector.Column{g}),
				vector.MustBatch(vector.NewSchema(vector.Field{Name: "x", Type: c.Type}), []*vector.Column{retyped}),
			)
			if err != nil {
				return nil, err
			}
			g = merged.Cols[0]
		}
		cols = append(cols, g)
	}
	b, err := vector.NewBatch(vector.Schema{Fields: fields}, cols)
	if err != nil {
		return nil, err
	}
	if b.N != totalRows {
		return nil, fmt.Errorf("engine: join row accounting mismatch %d != %d", b.N, totalRows)
	}
	return b, nil
}

func joinKey(b *vector.Batch, keys []int, row int) (string, bool) {
	var sb strings.Builder
	for _, k := range keys {
		v := b.Cols[k].Value(row)
		if v.IsNull() {
			return "", true
		}
		fmt.Fprintf(&sb, "%d|%s|", v.Type, v.String())
	}
	return sb.String(), false
}

// execProject evaluates the projection list.
func (e *Engine) execProject(ctx *QueryContext, sel *sqlparse.SelectStmt, in *vector.Batch) (*vector.Batch, error) {
	var fields []vector.Field
	var cols []*vector.Column
	for pos, item := range sel.Items {
		if item.Star {
			for i, f := range in.Schema.Fields {
				if f.Name == "__one" {
					continue
				}
				name := f.Name
				if i2 := strings.LastIndexByte(name, '.'); i2 >= 0 && in.Schema.Index(name[i2+1:]) < 0 {
					// Unqualify when unambiguous for readable output.
					bare := name[i2+1:]
					conflict := false
					for k, other := range in.Schema.Fields {
						if k != i && strings.HasSuffix(other.Name, "."+bare) {
							conflict = true
						}
					}
					if !conflict {
						name = bare
					}
				}
				fields = append(fields, vector.Field{Name: name, Type: f.Type})
				cols = append(cols, in.Cols[i])
			}
			continue
		}
		c, err := e.evalExpr(ctx, in, item.Expr)
		if err != nil {
			return nil, err
		}
		fields = append(fields, vector.Field{Name: outputName(item, pos), Type: c.Type})
		cols = append(cols, c)
	}
	return vector.NewBatch(vector.Schema{Fields: fields}, cols)
}

// execAggregate evaluates GROUP BY / aggregate queries.
func (e *Engine) execAggregate(ctx *QueryContext, sel *sqlparse.SelectStmt, in *vector.Batch) (*vector.Batch, error) {
	// Evaluate group keys.
	keyCols := make([]*vector.Column, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		c, err := e.evalExpr(ctx, in, g)
		if err != nil {
			return nil, err
		}
		keyCols[i] = c
	}

	type group struct {
		rows []int
		key  []vector.Value
	}
	groups := map[string]*group{}
	var orderKeys []string
	for r := 0; r < in.N; r++ {
		var sb strings.Builder
		key := make([]vector.Value, len(keyCols))
		for i, kc := range keyCols {
			v := kc.Value(r)
			key[i] = v
			fmt.Fprintf(&sb, "%d|%s|", v.Type, v.String())
		}
		ks := sb.String()
		g, ok := groups[ks]
		if !ok {
			g = &group{key: key}
			groups[ks] = g
			orderKeys = append(orderKeys, ks)
		}
		g.rows = append(g.rows, r)
	}
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		// Global aggregate over zero rows still yields one row.
		groups[""] = &group{}
		orderKeys = append(orderKeys, "")
	}

	// Pre-evaluate aggregate argument expressions once over the whole
	// input.
	argCols := map[string]*vector.Column{}
	var prepare func(expr sqlparse.Expr) error
	prepare = func(expr sqlparse.Expr) error {
		call, ok := expr.(sqlparse.Call)
		if !ok || !sqlparse.AggregateFuncs[call.Name] {
			return nil
		}
		if call.Star || len(call.Args) == 0 {
			return nil
		}
		key := call.Args[0].String()
		if _, ok := argCols[key]; ok {
			return nil
		}
		c, err := e.evalExpr(ctx, in, call.Args[0])
		if err != nil {
			return err
		}
		argCols[key] = c
		return nil
	}
	for _, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("%w: SELECT * with GROUP BY", ErrUnsupported)
		}
		if err := prepare(item.Expr); err != nil {
			return nil, err
		}
	}

	// groupExprIndex maps a GROUP BY expression's rendering to its key
	// position for non-aggregate select items.
	groupExprIndex := map[string]int{}
	for i, g := range sel.GroupBy {
		groupExprIndex[g.String()] = i
		if ref, ok := g.(sqlparse.ColumnRef); ok {
			groupExprIndex[ref.Name] = i // allow unqualified reuse
		}
	}

	evalItem := func(item sqlparse.SelectItem, g *group) (vector.Value, error) {
		if call, ok := item.Expr.(sqlparse.Call); ok && sqlparse.AggregateFuncs[call.Name] {
			return evalAggregateCall(call, g.rows, argCols, in.N)
		}
		if i, ok := groupExprIndex[item.Expr.String()]; ok {
			return g.key[i], nil
		}
		if ref, ok := item.Expr.(sqlparse.ColumnRef); ok {
			if i, ok := groupExprIndex[ref.Name]; ok {
				return g.key[i], nil
			}
		}
		return vector.NullValue, fmt.Errorf("%w: %s must appear in GROUP BY or an aggregate", ErrSemantic, item.Expr)
	}

	// Build output.
	bl := struct {
		fields []vector.Field
		rows   [][]vector.Value
	}{}
	for _, ks := range orderKeys {
		g := groups[ks]
		row := make([]vector.Value, len(sel.Items))
		for i, item := range sel.Items {
			v, err := evalItem(item, g)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		bl.rows = append(bl.rows, row)
	}
	// Infer output types from the first non-null value per column.
	for i, item := range sel.Items {
		t := vector.Int64
		for _, row := range bl.rows {
			if !row[i].IsNull() {
				t = row[i].Type
				break
			}
		}
		bl.fields = append(bl.fields, vector.Field{Name: outputName(item, i), Type: t})
	}
	builder := vector.NewBuilder(vector.Schema{Fields: bl.fields})
	for _, row := range bl.rows {
		builder.Append(row...)
	}
	return builder.Build(), nil
}

func evalAggregateCall(call sqlparse.Call, rows []int, argCols map[string]*vector.Column, n int) (vector.Value, error) {
	if call.Name == "COUNT" && (call.Star || len(call.Args) == 0) {
		return vector.IntValue(int64(len(rows))), nil
	}
	if len(call.Args) != 1 {
		return vector.NullValue, fmt.Errorf("%w: %s expects one argument", ErrSemantic, call.Name)
	}
	col := argCols[call.Args[0].String()]
	if col == nil {
		return vector.NullValue, fmt.Errorf("%w: aggregate argument %s not prepared", ErrSemantic, call.Args[0])
	}
	mask := make([]bool, n)
	for _, r := range rows {
		mask[r] = true
	}
	switch call.Name {
	case "COUNT":
		return vector.Aggregate(col, vector.AggCount, mask), nil
	case "SUM":
		return vector.Aggregate(col, vector.AggSum, mask), nil
	case "MIN":
		return vector.Aggregate(col, vector.AggMin, mask), nil
	case "MAX":
		return vector.Aggregate(col, vector.AggMax, mask), nil
	case "AVG":
		sum := vector.Aggregate(col, vector.AggSum, mask)
		cnt := vector.Aggregate(col, vector.AggCount, mask)
		if sum.IsNull() || cnt.AsInt() == 0 {
			return vector.NullValue, nil
		}
		return vector.FloatValue(sum.AsFloat() / float64(cnt.AsInt())), nil
	}
	return vector.NullValue, fmt.Errorf("%w: aggregate %s", ErrUnsupported, call.Name)
}

// execOrderBy sorts the projected output. ORDER BY expressions may
// reference output aliases or input columns.
func (e *Engine) execOrderBy(ctx *QueryContext, sel *sqlparse.SelectStmt, out, in *vector.Batch) (*vector.Batch, error) {
	keys := make([]*vector.Column, len(sel.OrderBy))
	for i, item := range sel.OrderBy {
		// Try the output schema first (aliases and group keys — whose
		// output names drop the table qualifier), then the input.
		if ref, ok := item.Expr.(sqlparse.ColumnRef); ok {
			if idx := out.Schema.Index(ref.Name); idx >= 0 {
				keys[i] = out.Cols[idx]
				continue
			}
		}
		c, err := e.evalExpr(ctx, out, item.Expr)
		if err != nil {
			if in == nil || in.N != out.N {
				return nil, err
			}
			c, err = e.evalExpr(ctx, in, item.Expr)
			if err != nil {
				return nil, err
			}
		}
		keys[i] = c
	}
	idx := make([]int, out.N)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, item := range sel.OrderBy {
			va, vb := keys[k].Value(idx[a]), keys[k].Value(idx[b])
			cmp := compareForSort(va, vb)
			if cmp == 0 {
				continue
			}
			if item.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	cols := make([]*vector.Column, len(out.Cols))
	for i, c := range out.Cols {
		cols[i] = vector.Gather(c, idx)
	}
	return &vector.Batch{Schema: out.Schema, Cols: cols, N: out.N}, nil
}

// compareForSort orders values with NULLs first.
func compareForSort(a, b vector.Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	return a.Compare(b)
}

// --- DML dispatch ---

func (e *Engine) requireMutator() (Mutator, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.mutator == nil {
		return nil, fmt.Errorf("%w: no DML handler configured", ErrUnsupported)
	}
	return e.mutator, nil
}

func (e *Engine) execInsert(ctx *QueryContext, ins *sqlparse.InsertStmt) (*Result, error) {
	m, err := e.requireMutator()
	if err != nil {
		return nil, err
	}
	if err := e.Auth.CheckWrite(ctx.Principal, ins.Table); err != nil {
		return nil, err
	}
	t, err := e.Catalog.Table(ins.Table)
	if err != nil {
		return nil, err
	}
	var rows *vector.Batch
	if ins.Select != nil {
		rows, err = e.execSelect(ctx, ins.Select)
		if err != nil {
			return nil, err
		}
	} else {
		cols := ins.Columns
		if len(cols) == 0 {
			for _, f := range t.Schema.Fields {
				cols = append(cols, f.Name)
			}
		}
		schema, err := t.Schema.Select(cols)
		if err != nil {
			return nil, err
		}
		builder := vector.NewBuilder(schema)
		for _, row := range ins.Rows {
			if len(row) != len(cols) {
				return nil, fmt.Errorf("%w: INSERT row arity %d != %d columns", ErrSemantic, len(row), len(cols))
			}
			vals := make([]vector.Value, len(row))
			for i, expr := range row {
				lit, ok := expr.(sqlparse.Literal)
				if !ok {
					return nil, fmt.Errorf("%w: INSERT VALUES must be literals", ErrUnsupported)
				}
				v := coerce(lit.Value, schema.Fields[i].Type)
				if !v.IsNull() && v.Type != schema.Fields[i].Type {
					return nil, fmt.Errorf("%w: value %s is %v, column %q is %v",
						ErrSemantic, v, v.Type, schema.Fields[i].Name, schema.Fields[i].Type)
				}
				vals[i] = v
			}
			builder.Append(vals...)
		}
		rows = builder.Build()
	}
	if err := m.Insert(ctx, ins.Table, rows); err != nil {
		return nil, err
	}
	return &Result{Batch: vector.EmptyBatch(t.Schema), Stats: ctx.Stats}, nil
}

// coerce adapts a literal to a column type (int literals into float or
// timestamp columns).
func coerce(v vector.Value, t vector.Type) vector.Value {
	if v.IsNull() || v.Type == t {
		return v
	}
	switch t {
	case vector.Float64:
		if v.Type == vector.Int64 {
			return vector.FloatValue(float64(v.I))
		}
	case vector.Timestamp:
		if v.Type == vector.Int64 {
			return vector.TimestampValue(v.I)
		}
	case vector.Bytes:
		if v.Type == vector.String {
			return vector.Value{Type: vector.Bytes, S: v.S}
		}
	}
	return v
}

func (e *Engine) whereFunc(ctx *QueryContext, where sqlparse.Expr) func(*vector.Batch) ([]bool, error) {
	return func(b *vector.Batch) ([]bool, error) {
		if where == nil {
			mask := make([]bool, b.N)
			for i := range mask {
				mask[i] = true
			}
			return mask, nil
		}
		return e.evalBool(ctx, b, where)
	}
}

func (e *Engine) execDelete(ctx *QueryContext, del *sqlparse.DeleteStmt) (*Result, error) {
	m, err := e.requireMutator()
	if err != nil {
		return nil, err
	}
	if err := e.Auth.CheckWrite(ctx.Principal, del.Table); err != nil {
		return nil, err
	}
	n, err := m.Delete(ctx, del.Table, e.whereFunc(ctx, del.Where))
	if err != nil {
		return nil, err
	}
	out := vector.MustBatch(vector.NewSchema(vector.Field{Name: "rows_deleted", Type: vector.Int64}),
		[]*vector.Column{vector.NewInt64Column([]int64{n})})
	return &Result{Batch: out, Stats: ctx.Stats}, nil
}

func (e *Engine) execUpdate(ctx *QueryContext, upd *sqlparse.UpdateStmt) (*Result, error) {
	m, err := e.requireMutator()
	if err != nil {
		return nil, err
	}
	if err := e.Auth.CheckWrite(ctx.Principal, upd.Table); err != nil {
		return nil, err
	}
	set := func(b *vector.Batch) (*vector.Batch, error) {
		cols := append([]*vector.Column(nil), b.Cols...)
		for col, expr := range upd.Set {
			i := b.Schema.Index(col)
			if i < 0 {
				return nil, fmt.Errorf("%w: unknown column %q in UPDATE", ErrSemantic, col)
			}
			c, err := e.evalExpr(ctx, b, expr)
			if err != nil {
				return nil, err
			}
			if c.Type != b.Schema.Fields[i].Type {
				// Coerce literals (e.g. int into float column).
				dec := c.Decode()
				builder := vector.NewBuilder(vector.NewSchema(b.Schema.Fields[i]))
				for r := 0; r < dec.Len; r++ {
					builder.Append(coerce(dec.Value(r), b.Schema.Fields[i].Type))
				}
				c = builder.Build().Cols[0]
			}
			cols[i] = c
		}
		return vector.NewBatch(b.Schema, cols)
	}
	n, err := m.Update(ctx, upd.Table, set, e.whereFunc(ctx, upd.Where))
	if err != nil {
		return nil, err
	}
	out := vector.MustBatch(vector.NewSchema(vector.Field{Name: "rows_updated", Type: vector.Int64}),
		[]*vector.Column{vector.NewInt64Column([]int64{n})})
	return &Result{Batch: out, Stats: ctx.Stats}, nil
}

func (e *Engine) execCTAS(ctx *QueryContext, cta *sqlparse.CreateTableAsStmt) (*Result, error) {
	m, err := e.requireMutator()
	if err != nil {
		return nil, err
	}
	rows, err := e.execSelect(ctx, cta.Select)
	if err != nil {
		return nil, err
	}
	if err := m.CreateTableAs(ctx, cta.Table, cta.OrReplace, rows); err != nil {
		return nil, err
	}
	return &Result{Batch: rows, Stats: ctx.Stats}, nil
}
