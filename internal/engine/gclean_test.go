package engine

import (
	"fmt"
	"testing"

	"biglake/internal/obs"
)

// TestArenaResultOutlivesRecycle is the lifetime regression test for
// the GC-lean path (run under -race by `make gclean`): a result batch
// handed across the Execute boundary must stay valid and unchanged
// while later queries recycle the same pooled arena and scribble over
// its slabs. A missing Detach anywhere on the result path shows up
// here as corrupted values (or a race report).
func TestArenaResultOutlivesRecycle(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	starWorld(t, ev)

	held := ev.query(t, adminP, starJoinSQL)
	want := fingerprint(held.Batch)
	for _, c := range held.Batch.Cols {
		if c.Pooled {
			t.Fatalf("result column escaped with Pooled set — not detached")
		}
	}

	// Recycle the arena with a different, string-heavy workload. Each
	// query grabs the pooled arena, bump-allocates over the same slabs,
	// and releases it.
	for q := 0; q < 6; q++ {
		ev.query(t, adminP, fmt.Sprintf(
			"SELECT k2, COUNT(*) AS n FROM ds.fct WHERE v >= %d GROUP BY k2 ORDER BY k2", q))
	}

	if got := fingerprint(held.Batch); got != want {
		t.Fatalf("held result changed after arena recycle:\nbefore:\n%s\nafter:\n%s", want, got)
	}
}

// TestArenaObservability checks the two satellite surfaces: the
// execute span carries arena_bytes in EXPLAIN ANALYZE profiles, and
// the registry gauges mirror the pool (bytes retained, queries served
// by a recycled arena).
func TestArenaObservability(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	starWorld(t, ev)
	reg := obs.NewRegistry()
	ev.eng.UseObs(reg)

	// First query: fresh arena. Second: recycled.
	ev.query(t, adminP, starJoinSQL)
	_, prof, err := ev.eng.ExplainAnalyze(NewContext(adminP, "q-arena"), starJoinSQL)
	if err != nil {
		t.Fatal(err)
	}

	var arenaAttr string
	var walk func(n *obs.ProfileNode)
	walk = func(n *obs.ProfileNode) {
		if n.Name == "execute" && n.Attrs["arena_bytes"] != "" {
			arenaAttr = n.Attrs["arena_bytes"]
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(prof.Root)
	if arenaAttr == "" || arenaAttr == "0" {
		t.Fatalf("execute span missing arena_bytes attribute (got %q)", arenaAttr)
	}

	if v := reg.Gauge("arena.bytes_in_use").Get(); v <= 0 {
		t.Fatalf("arena.bytes_in_use = %d, want > 0 (pool retains slabs between queries)", v)
	}
	if v := reg.Gauge("arena.recycled").Get(); v < 1 {
		t.Fatalf("arena.recycled = %d, want >= 1 (second query should reuse the arena)", v)
	}
}

// TestGCLeanMatchesRowAtATime is the engine-level eager/lean parity
// spot check (the oracle matrix is the exhaustive version): the same
// statements through GCLean and through the row-at-a-time executor
// produce identical fingerprints.
func TestGCLeanMatchesRowAtATime(t *testing.T) {
	queries := []string{
		starJoinSQL,
		"SELECT * FROM ds.fct ORDER BY v, k1, k2 LIMIT 7",
		"SELECT k2, SUM(v) AS s, COUNT(*) AS n FROM ds.fct GROUP BY k2 ORDER BY k2",
	}
	lean := newEnv(t, DefaultOptions())
	starWorld(t, lean)
	legacyOpts := DefaultOptions()
	legacyOpts.RowAtATimeExec = true
	legacy := newEnv(t, legacyOpts)
	starWorld(t, legacy)
	for _, q := range queries {
		a := lean.query(t, adminP, q)
		b := legacy.query(t, adminP, q)
		if fingerprint(a.Batch) != fingerprint(b.Batch) {
			t.Fatalf("GCLean diverges from row-at-a-time on %q:\n%s\nvs\n%s",
				q, fingerprint(a.Batch), fingerprint(b.Batch))
		}
	}
}

// TestGCLeanTxnContextReuse pins the ctx.mem reset in Execute's arena
// cleanup: a QueryContext reused across statements (the transaction
// session pattern) must get a fresh arena per statement, never a
// stale released one.
func TestGCLeanTxnContextReuse(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	starWorld(t, ev)
	ctx := NewContext(adminP, "q-reuse")
	var prev string
	for i := 0; i < 4; i++ {
		res, err := ev.eng.Query(ctx, starJoinSQL)
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprint(res.Batch)
		if i > 0 && fp != prev {
			t.Fatalf("statement %d on reused context diverged", i)
		}
		prev = fp
	}
}
