package engine

import (
	"encoding/json"
	"strings"
	"testing"

	"biglake/internal/obs"
)

// starJoinSQL is the golden EXPLAIN ANALYZE workload: scan two tables,
// hash-join, aggregate, order.
const starJoinSQL = `SELECT f.k2, COUNT(*) AS n, SUM(f.v) AS s
	FROM ds.fct AS f JOIN ds.dm AS d ON f.k1 = d.k1 AND f.k2 = d.k2
	GROUP BY f.k2 ORDER BY f.k2`

// TestExplainAnalyzeStarJoin pins the profile against engine.Stats:
// the span tree's timings and per-operator rows must agree with the
// executor's own accounting.
func TestExplainAnalyzeStarJoin(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	starWorld(t, ev)

	ctx := NewContext(adminP, "q-explain")
	res, prof, err := ev.eng.ExplainAnalyze(ctx, starJoinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil || prof.Root == nil {
		t.Fatal("no profile built")
	}

	// Root simulated time is the query's simulated latency.
	if prof.SimTime != res.Stats.SimElapsed {
		t.Fatalf("profile sim %v != Stats.SimElapsed %v", prof.SimTime, res.Stats.SimElapsed)
	}

	// Per-operator rows: scans sum to RowsScanned, the aggregate
	// produces the result rows.
	var scanRows, scanBytes, aggRows, joinSpans int64
	var walk func(n *obs.ProfileNode)
	walk = func(n *obs.ProfileNode) {
		switch {
		case strings.HasPrefix(n.Name, "scan "):
			scanRows += n.Rows
			scanBytes += n.Bytes
		case n.Name == "aggregate":
			aggRows = n.Rows
		case n.Name == "join":
			joinSpans++
			if n.Attrs["exec"] == "" {
				t.Error("join span missing exec attribute")
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(prof.Root)
	if scanRows != res.Stats.RowsScanned {
		t.Fatalf("scan span rows %d != Stats.RowsScanned %d", scanRows, res.Stats.RowsScanned)
	}
	if scanBytes != res.Stats.BytesScanned {
		t.Fatalf("scan span bytes %d != Stats.BytesScanned %d", scanBytes, res.Stats.BytesScanned)
	}
	if joinSpans != 1 {
		t.Fatalf("expected 1 join span, got %d", joinSpans)
	}
	if aggRows != int64(res.Batch.N) {
		t.Fatalf("aggregate span rows %d != result rows %d", aggRows, res.Batch.N)
	}

	// Text rendering carries the header and a dominant-cost marker.
	text := prof.Text()
	if !strings.Contains(text, "EXPLAIN ANALYZE") || !strings.Contains(text, "*") {
		t.Fatalf("profile text missing header or dominant marker:\n%s", text)
	}
	// JSON rendering round-trips.
	data, err := prof.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("profile JSON does not round-trip: %v", err)
	}
	if back.Root.Name != "query" {
		t.Fatalf("unexpected root name %q", back.Root.Name)
	}
}

// TestQuerySpanTree drives a real query through a Tracer and checks
// the span-tree invariants the instrumentation promises.
func TestQuerySpanTree(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	starWorld(t, ev)
	tracer := &obs.Tracer{}
	ev.eng.Tracer = tracer

	if _, err := ev.eng.Query(NewContext(adminP, "q-span"), starJoinSQL); err != nil {
		t.Fatal(err)
	}
	tr := tracer.Last()
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	root := tr.Root()
	if !root.Ended() {
		t.Fatal("root span not ended")
	}
	names := map[string]int{}
	root.Walk(func(s *obs.Span) {
		names[s.Name()]++
		if !s.Ended() {
			t.Errorf("span %q not ended", s.Name())
		}
		for _, c := range s.Children() {
			if c.Start() < s.Start() {
				t.Errorf("child %q starts before parent %q", c.Name(), s.Name())
			}
			if c.EndTime() > s.EndTime() {
				t.Errorf("child %q (end %v) outlives parent %q (end %v)",
					c.Name(), c.EndTime(), s.Name(), s.EndTime())
			}
		}
	})
	for _, want := range []string{"parse", "execute", "scan ds.fct", "scan ds.dm", "join", "aggregate", "order_by"} {
		if names[want] == 0 {
			t.Errorf("missing span %q (have %v)", want, names)
		}
	}
	// Per-file read spans carry lanes and byte counts.
	reads := tr.Find("read fct/part-000.blk")
	if len(reads) != 1 {
		t.Fatalf("read spans for part-000: %d", len(reads))
	}
	if b, ok := reads[0].IntAttr("bytes"); !ok || b <= 0 {
		t.Fatalf("read span bytes attr = %d, %v", b, ok)
	}

	// Disabled tracing records nothing and Query still works.
	ev.eng.Tracer = nil
	if _, err := ev.eng.Query(NewContext(adminP, "q-notrace"), starJoinSQL); err != nil {
		t.Fatal(err)
	}
	if got := len(tracer.Traces()); got != 1 {
		t.Fatalf("traces after disabling = %d", got)
	}
}

// TestChromeTraceFromQuery exports a real query's trace and checks the
// Chrome trace-event schema (what Perfetto/about://tracing load).
func TestChromeTraceFromQuery(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	starWorld(t, ev)
	tracer := &obs.Tracer{}
	ev.eng.Tracer = tracer
	if _, err := ev.eng.Query(NewContext(adminP, "q-chrome"), starJoinSQL); err != nil {
		t.Fatal(err)
	}
	data, err := obs.ChromeTrace(tracer.Traces()...)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(events) < 5 {
		t.Fatalf("suspiciously few events: %d", len(events))
	}
	var complete int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			complete++
			for _, k := range []string{"name", "ts", "dur", "pid", "tid"} {
				if _, ok := e[k]; !ok {
					t.Fatalf("complete event missing %q: %v", k, e)
				}
			}
		case "M":
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if complete == 0 {
		t.Fatal("no complete (X) events")
	}
}

// TestEngineRegistryCounters checks the engine mirrors its scan stats
// into the registry under dotted names.
func TestEngineRegistryCounters(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	starWorld(t, ev)
	res := ev.query(t, adminP, `SELECT COUNT(*) AS n FROM ds.fct`)
	_ = res
	if got := ev.eng.Obs.Get("engine.queries"); got != 1 {
		t.Fatalf("engine.queries = %d", got)
	}
	if got := ev.eng.Obs.Get("engine.scan.rows"); got != 400 {
		t.Fatalf("engine.scan.rows = %d", got)
	}
	if got := ev.store.Obs().Get("objstore.get.count"); got == 0 {
		t.Fatal("objstore.get.count not incremented")
	}
	snap := ev.eng.Obs.Snapshot()
	if snap.Histograms["engine.query.sim_elapsed_us"].Count != 1 {
		t.Fatalf("sim_elapsed histogram count = %d", snap.Histograms["engine.query.sim_elapsed_us"].Count)
	}
}
