package engine

import (
	"fmt"
	"strings"

	"biglake/internal/sqlparse"
	"biglake/internal/vector"
)

// resolveColumn finds the schema index a column reference names.
// Scans over multiple tables qualify fields as "alias.col"; bare refs
// resolve by exact match first, then by unique ".col" suffix.
func resolveColumn(schema vector.Schema, ref sqlparse.ColumnRef) (int, error) {
	if ref.Table != "" {
		want := ref.Table + "." + ref.Name
		if i := schema.Index(want); i >= 0 {
			return i, nil
		}
		return -1, fmt.Errorf("%w: unknown column %s", ErrSemantic, want)
	}
	if i := schema.Index(ref.Name); i >= 0 {
		return i, nil
	}
	found := -1
	for i, f := range schema.Fields {
		if strings.HasSuffix(f.Name, "."+ref.Name) {
			if found >= 0 {
				return -1, fmt.Errorf("%w: ambiguous column %q", ErrSemantic, ref.Name)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("%w: unknown column %q in %v", ErrSemantic, ref.Name, schema)
	}
	return found, nil
}

// constColumn materializes a literal as an n-row column.
func constColumn(v vector.Value, n int) *vector.Column {
	t := v.Type
	if v.IsNull() {
		t = vector.Int64 // typed NULL column; all rows null
		c := &vector.Column{Type: t, Len: n, Enc: vector.Plain, Ints: make([]int64, n), Nulls: make([]bool, n)}
		for i := range c.Nulls {
			c.Nulls[i] = true
		}
		return c
	}
	c := &vector.Column{Type: t, Len: n, Enc: vector.Plain}
	switch t {
	case vector.Int64, vector.Timestamp:
		c.Ints = make([]int64, n)
		for i := range c.Ints {
			c.Ints[i] = v.I
		}
	case vector.Float64:
		c.Floats = make([]float64, n)
		for i := range c.Floats {
			c.Floats[i] = v.F
		}
	case vector.Bool:
		c.Bools = make([]bool, n)
		for i := range c.Bools {
			c.Bools[i] = v.B
		}
	case vector.String, vector.Bytes:
		c.Strs = make([]string, n)
		for i := range c.Strs {
			c.Strs[i] = v.S
		}
	}
	return c
}

// evalExpr evaluates a scalar expression over a batch, producing one
// column of b.N rows. Aggregate calls are rejected here — they are
// handled by the aggregation operator.
func (e *Engine) evalExpr(ctx *QueryContext, b *vector.Batch, expr sqlparse.Expr) (*vector.Column, error) {
	switch ex := expr.(type) {
	case sqlparse.ColumnRef:
		i, err := resolveColumn(b.Schema, ex)
		if err != nil {
			return nil, err
		}
		return b.Cols[i], nil
	case sqlparse.Literal:
		return constColumn(ex.Value, b.N), nil
	case sqlparse.Not:
		inner, err := e.evalBool(ctx, b, ex.E)
		if err != nil {
			return nil, err
		}
		return vector.NewBoolColumn(vector.Not(inner)), nil
	case sqlparse.Binary:
		return e.evalBinary(ctx, b, ex)
	case sqlparse.Call:
		if sqlparse.AggregateFuncs[ex.Name] {
			return nil, fmt.Errorf("%w: aggregate %s outside GROUP BY context", ErrSemantic, ex.Name)
		}
		fn, ok := e.scalar(ex.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchFunc, ex.Name)
		}
		args := make([]*vector.Column, len(ex.Args))
		for i, a := range ex.Args {
			c, err := e.evalExpr(ctx, b, a)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
		return fn(ctx, args)
	}
	return nil, fmt.Errorf("%w: expression %T", ErrUnsupported, expr)
}

// evalBool evaluates an expression that must produce booleans and
// returns it as a selection mask (NULL = false).
func (e *Engine) evalBool(ctx *QueryContext, b *vector.Batch, expr sqlparse.Expr) ([]bool, error) {
	c, err := e.evalExpr(ctx, b, expr)
	if err != nil {
		return nil, err
	}
	if c.Type != vector.Bool {
		return nil, fmt.Errorf("%w: expected BOOL condition, got %v", ErrSemantic, c.Type)
	}
	mask := ctx.mem.Allocator().Bools(c.Len)
	for i := 0; i < c.Len; i++ {
		v := c.Value(i)
		mask[i] = !v.IsNull() && v.B
	}
	return mask, nil
}

// boolCol wraps a mask produced from the query's allocator in a column,
// carrying the pooled flag so it is detached if it escapes (a projected
// boolean expression ends up in the result batch).
func (e *Engine) boolCol(ctx *QueryContext, mask []bool) *vector.Column {
	c := vector.NewBoolColumn(mask)
	c.Pooled = ctx.mem.Pooled()
	return c
}

var cmpOpMap = map[string]vector.CmpOp{
	"=": vector.EQ, "!=": vector.NE, "<": vector.LT, "<=": vector.LE, ">": vector.GT, ">=": vector.GE,
}

func (e *Engine) evalBinary(ctx *QueryContext, b *vector.Batch, ex sqlparse.Binary) (*vector.Column, error) {
	switch ex.Op {
	case "AND", "OR":
		l, err := e.evalBool(ctx, b, ex.L)
		if err != nil {
			return nil, err
		}
		r, err := e.evalBool(ctx, b, ex.R)
		if err != nil {
			return nil, err
		}
		// Combine in place: both masks are freshly allocated for this
		// node, so l can absorb r without a third buffer.
		if ex.Op == "AND" {
			for i := range l {
				l[i] = l[i] && r[i]
			}
		} else {
			for i := range l {
				l[i] = l[i] || r[i]
			}
		}
		return e.boolCol(ctx, l), nil
	}

	if op, ok := cmpOpMap[ex.Op]; ok {
		// Comparison: use the constant kernel when one side is a
		// literal (the vectorized fast path).
		if lit, ok := ex.R.(sqlparse.Literal); ok {
			l, err := e.evalExpr(ctx, b, ex.L)
			if err != nil {
				return nil, err
			}
			return e.boolCol(ctx, vector.CompareConstWith(ctx.mem.Al, l, op, lit.Value)), nil
		}
		if lit, ok := ex.L.(sqlparse.Literal); ok {
			r, err := e.evalExpr(ctx, b, ex.R)
			if err != nil {
				return nil, err
			}
			return e.boolCol(ctx, vector.CompareConstWith(ctx.mem.Al, r, flipOp(op), lit.Value)), nil
		}
		l, err := e.evalExpr(ctx, b, ex.L)
		if err != nil {
			return nil, err
		}
		r, err := e.evalExpr(ctx, b, ex.R)
		if err != nil {
			return nil, err
		}
		mask, err := vector.CompareCols(l.Decode(), r.Decode(), op)
		if err != nil {
			return nil, err
		}
		return vector.NewBoolColumn(mask), nil
	}

	switch ex.Op {
	case "+", "-", "*", "/":
		l, err := e.evalExpr(ctx, b, ex.L)
		if err != nil {
			return nil, err
		}
		r, err := e.evalExpr(ctx, b, ex.R)
		if err != nil {
			return nil, err
		}
		return arith(ex.Op, l.Decode(), r.Decode())
	}
	return nil, fmt.Errorf("%w: operator %q", ErrUnsupported, ex.Op)
}

func flipOp(op vector.CmpOp) vector.CmpOp {
	switch op {
	case vector.LT:
		return vector.GT
	case vector.LE:
		return vector.GE
	case vector.GT:
		return vector.LT
	case vector.GE:
		return vector.LE
	}
	return op // EQ, NE symmetric
}

func numericType(t vector.Type) bool {
	return t == vector.Int64 || t == vector.Float64 || t == vector.Timestamp
}

// arith computes elementwise arithmetic. Integer inputs stay integer
// except for '/', which is float.
func arith(op string, l, r *vector.Column) (*vector.Column, error) {
	if l.Len != r.Len {
		return nil, fmt.Errorf("%w: arithmetic over different lengths", ErrSemantic)
	}
	if !numericType(l.Type) || !numericType(r.Type) {
		if op == "+" && (l.Type == vector.String || r.Type == vector.String) {
			// String concatenation.
			out := &vector.Column{Type: vector.String, Len: l.Len, Enc: vector.Plain, Strs: make([]string, l.Len)}
			var nulls []bool
			for i := 0; i < l.Len; i++ {
				a, b := l.Value(i), r.Value(i)
				if a.IsNull() || b.IsNull() {
					if nulls == nil {
						nulls = make([]bool, l.Len)
					}
					nulls[i] = true
					continue
				}
				out.Strs[i] = a.String() + b.String()
			}
			out.Nulls = nulls
			return out, nil
		}
		return nil, fmt.Errorf("%w: arithmetic over %v and %v", ErrSemantic, l.Type, r.Type)
	}
	floatOut := op == "/" || l.Type == vector.Float64 || r.Type == vector.Float64
	n := l.Len
	var nulls []bool
	markNull := func(i int) {
		if nulls == nil {
			nulls = make([]bool, n)
		}
		nulls[i] = true
	}
	if floatOut {
		out := &vector.Column{Type: vector.Float64, Len: n, Enc: vector.Plain, Floats: make([]float64, n)}
		for i := 0; i < n; i++ {
			a, b := l.Value(i), r.Value(i)
			if a.IsNull() || b.IsNull() {
				markNull(i)
				continue
			}
			x, y := a.AsFloat(), b.AsFloat()
			switch op {
			case "+":
				out.Floats[i] = x + y
			case "-":
				out.Floats[i] = x - y
			case "*":
				out.Floats[i] = x * y
			case "/":
				if y == 0 {
					markNull(i)
					continue
				}
				out.Floats[i] = x / y
			}
		}
		out.Nulls = nulls
		return out, nil
	}
	out := &vector.Column{Type: vector.Int64, Len: n, Enc: vector.Plain, Ints: make([]int64, n)}
	for i := 0; i < n; i++ {
		a, b := l.Value(i), r.Value(i)
		if a.IsNull() || b.IsNull() {
			markNull(i)
			continue
		}
		x, y := a.AsInt(), b.AsInt()
		switch op {
		case "+":
			out.Ints[i] = x + y
		case "-":
			out.Ints[i] = x - y
		case "*":
			out.Ints[i] = x * y
		}
	}
	out.Nulls = nulls
	return out, nil
}

// outputName picks the column name for a select item.
func outputName(item sqlparse.SelectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if ref, ok := item.Expr.(sqlparse.ColumnRef); ok {
		return ref.Name
	}
	if call, ok := item.Expr.(sqlparse.Call); ok {
		return fmt.Sprintf("%s_%d", strings.ToLower(strings.ReplaceAll(call.Name, ".", "_")), pos)
	}
	return fmt.Sprintf("f%d", pos)
}
