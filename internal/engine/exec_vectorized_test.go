package engine

import (
	"fmt"
	"strings"
	"testing"

	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/vector"
)

// These tests pin the vectorized executor to the row-at-a-time
// baseline: for every query the typed-kernel path must return the
// same rows in the same order with the same types, for any morsel
// worker count. The scan-cache tests pin generation keying: an
// overwrite must never serve stale decoded bytes.

// createCustom writes rows as nFiles colfmt files under <name>/ and
// registers the BigLake table.
func (ev *env) createCustom(t *testing.T, name string, schema vector.Schema, rows [][]vector.Value, nFiles int) {
	t.Helper()
	if nFiles < 1 {
		nFiles = 1
	}
	perFile := (len(rows) + nFiles - 1) / nFiles
	if perFile == 0 {
		perFile = 1
	}
	for f := 0; f < nFiles; f++ {
		bl := vector.NewBuilder(schema)
		for r := f * perFile; r < (f+1)*perFile && r < len(rows); r++ {
			bl.Append(rows[r]...)
		}
		file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("%s/part-%03d.blk", name, f)
		if _, err := ev.store.Put(ev.cred, "lake", key, file, "application/x-blk"); err != nil {
			t.Fatal(err)
		}
	}
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: name, Type: catalog.BigLake, Schema: schema,
		Cloud: "gcp", Bucket: "lake", Prefix: name + "/", Connection: "lake-conn",
	}); err != nil {
		t.Fatal(err)
	}
}

// fingerprint renders a batch with type tags; two batches compare
// equal iff schema, row order, types, and values all match.
func fingerprint(b *vector.Batch) string {
	var sb strings.Builder
	for _, f := range b.Schema.Fields {
		fmt.Fprintf(&sb, "%s:%d;", f.Name, f.Type)
	}
	sb.WriteString("\n")
	for r := 0; r < b.N; r++ {
		for _, v := range b.Row(r) {
			if v.IsNull() {
				sb.WriteString("NULL|")
			} else {
				fmt.Fprintf(&sb, "%d:%s|", v.Type, v.String())
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// starWorld builds a fact and dimension with multi-column keys, NULL
// keys on both sides, a dictionary-heavy group column, and an empty
// table.
func starWorld(t *testing.T, ev *env) {
	factSchema := vector.NewSchema(
		vector.Field{Name: "k1", Type: vector.Int64},
		vector.Field{Name: "k2", Type: vector.String},
		vector.Field{Name: "v", Type: vector.Int64},
		vector.Field{Name: "price", Type: vector.Float64},
	)
	grps := []string{"red", "green", "blue"}
	var fact [][]vector.Value
	for i := 0; i < 400; i++ {
		k2 := vector.StringValue(grps[i%3])
		if i%17 == 0 {
			k2 = vector.NullValue // NULL join key: matches nothing
		}
		v := vector.IntValue(int64(i))
		if i%23 == 0 {
			v = vector.NullValue
		}
		fact = append(fact, []vector.Value{
			vector.IntValue(int64(i % 20)), k2, v,
			vector.FloatValue(float64(i%7) / 4),
		})
	}
	ev.createCustom(t, "fct", factSchema, fact, 3)

	dimSchema := vector.NewSchema(
		vector.Field{Name: "k1", Type: vector.Int64},
		vector.Field{Name: "k2", Type: vector.String},
		vector.Field{Name: "name", Type: vector.String},
	)
	var dim [][]vector.Value
	for i := 0; i < 30; i++ {
		k2 := vector.StringValue(grps[i%3])
		if i%11 == 0 {
			k2 = vector.NullValue
		}
		dim = append(dim, []vector.Value{
			vector.IntValue(int64(i % 22)), k2,
			vector.StringValue(fmt.Sprintf("dim-%d", i)),
		})
	}
	ev.createCustom(t, "dm", dimSchema, dim, 1)
	ev.createCustom(t, "void", factSchema, nil, 1)
}

// vectorizedBattery is the differential query set: every construct
// the kernels changed — multi-key joins, NULL join keys, LEFT JOIN
// null-extension, dict-encoded GROUP BY, empty inputs, LIMIT and
// top-K ORDER BY.
var vectorizedBattery = []string{
	`SELECT f.v, f.k2, d.name FROM ds.fct AS f JOIN ds.dm AS d ON f.k1 = d.k1 AND f.k2 = d.k2`,
	`SELECT f.v, d.name FROM ds.fct AS f LEFT JOIN ds.dm AS d ON f.k1 = d.k1 AND f.k2 = d.k2`,
	`SELECT f.k1, d.name FROM ds.fct AS f JOIN ds.dm AS d ON f.k2 = d.k2 WHERE f.v < 50`,
	`SELECT f.k2, COUNT(*) AS n, SUM(f.v) AS sv, MIN(f.v) AS mn, MAX(f.k2) AS mx, AVG(f.price) AS ap
		FROM ds.fct AS f GROUP BY f.k2`,
	`SELECT f.k2, SUM(f.price) AS rev FROM ds.fct AS f GROUP BY f.k2 ORDER BY f.k2`,
	`SELECT COUNT(*) AS n, SUM(v) AS s, MIN(price) AS m, AVG(v) AS a FROM ds.fct WHERE v < 0`,
	`SELECT k2, COUNT(*) AS n FROM ds.fct WHERE v < 0 GROUP BY k2`,
	`SELECT f.v, e.v FROM ds.fct AS f JOIN ds.void AS e ON f.k1 = e.k1`,
	`SELECT f.v, e.v FROM ds.fct AS f LEFT JOIN ds.void AS e ON f.k1 = e.k1`,
	`SELECT e.k2, COUNT(*) AS n, SUM(e.v) AS s FROM ds.void AS e GROUP BY e.k2`,
	`SELECT v, price FROM ds.fct ORDER BY price DESC, v LIMIT 7`,
	`SELECT v FROM ds.fct WHERE v >= 10 LIMIT 5`,
	`SELECT f.k2, COUNT(*) AS n FROM ds.fct AS f JOIN ds.dm AS d ON f.k2 = d.k2
		GROUP BY f.k2 ORDER BY n DESC LIMIT 2`,
}

func TestVectorizedMatchesLegacy(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	starWorld(t, ev)
	for _, sql := range vectorizedBattery {
		ev.eng.Opts.RowAtATimeExec = false
		vec := ev.query(t, adminP, sql)
		ev.eng.Opts.RowAtATimeExec = true
		leg := ev.query(t, adminP, sql)
		ev.eng.Opts.RowAtATimeExec = false
		if got, want := fingerprint(vec.Batch), fingerprint(leg.Batch); got != want {
			t.Errorf("vectorized diverges from legacy for %q:\nvectorized:\n%s\nlegacy:\n%s", sql, got, want)
		}
	}
}

func TestVectorizedWorkerCountInvariance(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	starWorld(t, ev)
	for _, sql := range vectorizedBattery {
		var want string
		for _, w := range []int{1, 2, 3, 5, 8} {
			ev.eng.Opts.MorselWorkers = w
			got := fingerprint(ev.query(t, adminP, sql).Batch)
			if w == 1 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("workers=%d changed the result for %q", w, sql)
			}
		}
	}
}

func TestScanCacheHitsOnRepeat(t *testing.T) {
	opts := DefaultOptions()
	opts.EnableScanCache = true
	ev := newEnv(t, opts)
	ev.createOrders(t, []string{"us", "eu"}, 2, 25, false)
	const sql = `SELECT region, COUNT(*) AS n, SUM(amount) AS s FROM ds.orders GROUP BY region ORDER BY region`
	first := ev.query(t, adminP, sql)
	if first.Stats.CacheMisses == 0 || first.Stats.CacheHits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d", first.Stats.CacheHits, first.Stats.CacheMisses)
	}
	second := ev.query(t, adminP, sql)
	if second.Stats.CacheHits != first.Stats.CacheMisses || second.Stats.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want %d/0", second.Stats.CacheHits, second.Stats.CacheMisses, first.Stats.CacheMisses)
	}
	if fingerprint(first.Batch) != fingerprint(second.Batch) {
		t.Fatal("cached result differs from cold result")
	}
	// Logical scan accounting is identical whether served from cache.
	if first.Stats.RowsScanned != second.Stats.RowsScanned || first.Stats.FilesScanned != second.Stats.FilesScanned {
		t.Fatalf("stats drifted: %+v vs %+v", first.Stats, second.Stats)
	}
}

func TestScanCacheGenerationInvalidation(t *testing.T) {
	opts := DefaultOptions()
	opts.EnableScanCache = true
	ev := newEnv(t, opts)
	schema := vector.NewSchema(vector.Field{Name: "x", Type: vector.Int64})
	write := func(val int64) {
		bl := vector.NewBuilder(schema)
		for i := 0; i < 10; i++ {
			bl.Append(vector.IntValue(val))
		}
		file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Same key: the object store bumps the generation.
		if _, err := ev.store.Put(ev.cred, "lake", "gen/part-000.blk", file, "application/x-blk"); err != nil {
			t.Fatal(err)
		}
	}
	write(1)
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "gen", Type: catalog.BigLake, Schema: schema,
		Cloud: "gcp", Bucket: "lake", Prefix: "gen/", Connection: "lake-conn",
	}); err != nil {
		t.Fatal(err)
	}
	const sql = `SELECT SUM(x) AS s FROM ds.gen`
	if got := ev.query(t, adminP, sql).Batch.Column("s").Value(0).AsInt(); got != 10 {
		t.Fatalf("v1 sum = %d", got)
	}
	// Warm the cache, then overwrite the object in place.
	ev.query(t, adminP, sql)
	write(5)
	res := ev.query(t, adminP, sql)
	if got := res.Batch.Column("s").Value(0).AsInt(); got != 50 {
		t.Fatalf("post-overwrite sum = %d, stale cache entry served", got)
	}
	if res.Stats.CacheHits != 0 {
		t.Fatalf("overwritten generation must miss, got %d hits", res.Stats.CacheHits)
	}
	// The old generation's entry is dead weight but harmless; a repeat
	// of the new generation now hits.
	if again := ev.query(t, adminP, sql); again.Stats.CacheHits == 0 {
		t.Fatal("new generation did not cache")
	}
}

func TestScanCacheEviction(t *testing.T) {
	opts := DefaultOptions()
	opts.EnableScanCache = true
	opts.ScanCacheBytes = 2000 // roughly one file's decoded footprint
	ev := newEnv(t, opts)
	ev.createOrders(t, []string{"us", "eu", "jp"}, 4, 20, false)
	const sql = `SELECT COUNT(*) AS n FROM ds.orders`
	first := ev.query(t, adminP, sql)
	if first.Batch.Column("n").Value(0).AsInt() != 240 {
		t.Fatalf("count = %v", first.Batch.Row(0))
	}
	if kept := ev.eng.Obs.Gauge("engine.scan.cache_entries").Get(); kept >= 12 {
		t.Fatalf("tiny budget kept %d of 12 entries", kept)
	}
	second := ev.query(t, adminP, sql)
	if second.Batch.Column("n").Value(0).AsInt() != 240 {
		t.Fatalf("post-eviction count = %v", second.Batch.Row(0))
	}
	if second.Stats.CacheHits+second.Stats.CacheMisses != 12 {
		t.Fatalf("lookups = %d, want 12", second.Stats.CacheHits+second.Stats.CacheMisses)
	}
}

func TestFooterReadsCountOnlySurvivors(t *testing.T) {
	// Partition-pruned files must not be counted as footer reads: 3
	// regions x 4 files, a region filter prunes 8 of 12 before any
	// footer peek.
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu", "jp"}, 4, 10, false)
	res := ev.query(t, adminP, `SELECT COUNT(*) AS n FROM ds.orders WHERE region = 'jp'`)
	if res.Batch.Column("n").Value(0).AsInt() != 40 {
		t.Fatalf("count = %v", res.Batch.Row(0))
	}
	if res.Stats.FooterReads != 4 {
		t.Fatalf("footer reads = %d, want 4 (only non-pruned files)", res.Stats.FooterReads)
	}
}
