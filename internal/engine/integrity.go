package engine

import (
	"errors"
	"fmt"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/integrity"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// This file is the scan path's integrity pipeline: verify every fetch,
// never retry bad bytes against the same source blindly, and contain
// durable damage by quarantining the file in the transaction log.
//
// Per file the flow is:
//
//  1. quarantine gate — a marked file fails fast with a typed error
//     naming table/file, or is skipped with a warning under the
//     explicit Options.SkipQuarantined opt-in;
//  2. fetch + verify — the GET's response is checked for truncation
//     (body shorter than the object's size) and staleness (generation
//     differs from the snapshot's pinned generation), and the decode
//     verifies every colfmt chunk and footer CRC; a failed decode
//     never populates the scan cache;
//  3. alternate-source re-fetch — on corruption, all cached
//     generations of the object are evicted and ONE fresh fetch runs;
//     in-flight corruption (a sick response) heals here;
//  4. quarantine — corruption that survives the re-fetch means the
//     stored copy itself is damaged: the file is quarantined via a
//     sealed commit and the query degrades per policy.

// verifyFetched checks response-level integrity of one completed GET:
// stale-generation substitution and truncation. Checksums can't catch
// either — a stale object's checksums are self-consistent, and a
// truncated body may cut cleanly between chunks — so the scan pins the
// snapshot's generation and the reported object size instead.
func verifyFetched(f bigmeta.FileEntry, data []byte, info objstore.ObjectInfo) error {
	if f.Generation > 0 && info.Generation != f.Generation {
		return &integrity.Error{Source: "objstore.stale", Bucket: f.Bucket, Key: f.Key,
			Detail: fmt.Sprintf("got generation %d, snapshot pinned %d", info.Generation, f.Generation)}
	}
	if int64(len(data)) != info.Size {
		return &integrity.Error{Source: "objstore.truncated", Bucket: f.Bucket, Key: f.Key,
			Detail: fmt.Sprintf("got %d bytes, object reports %d", len(data), info.Size)}
	}
	return nil
}

// recordDetection counts one detected corruption under
// "integrity.detected.*" (total and per verification site) and logs it
// to the "integrity.detections" event stream, so tests can reconcile
// detected counts against the harness's "integrity.injected.*".
func (e *Engine) recordDetection(err error) {
	var ie *integrity.Error
	source := "unknown"
	if errors.As(err, &ie) {
		source = ie.Source
	}
	e.Obs.Counter("integrity.detected.scan").Add(1)
	e.Obs.Counter("integrity.detected." + source).Add(1)
	e.Obs.Event("integrity.detections", err.Error())
}

// containCorrupt handles corruption that survived the alternate-source
// re-fetch: the durable copy is damaged. The file is quarantined
// through a sealed log commit; under SkipQuarantined the scan then
// proceeds without it (skipped=true), otherwise the typed corruption
// error surfaces to the query.
func (e *Engine) containCorrupt(ctx *QueryContext, t catalog.Table, f bigmeta.FileEntry, cause error) (skipped bool, err error) {
	var ie *integrity.Error
	source := "engine.scan"
	if errors.As(cause, &ie) {
		source = ie.Source
	}
	if e.Log != nil {
		_, qerr := e.Log.QuarantineFile(string(ctx.Principal), t.FullName(), bigmeta.QuarantineMark{
			Key:    f.Key,
			Source: source,
			Reason: cause.Error(),
			Time:   e.Clock.Now(),
		})
		if qerr == nil {
			e.Obs.Counter("integrity.quarantines").Add(1)
			e.Obs.Event("integrity.warnings",
				fmt.Sprintf("quarantined %s/%s (table %s): %v", f.Bucket, f.Key, t.FullName(), cause))
			if e.Opts.SkipQuarantined {
				return true, nil
			}
		}
	}
	return false, cause
}

// fileRead is one worker's outcome for a single file.
type fileRead struct {
	batch     *vector.Batch
	hit, miss bool
}

// readFileOnce performs one verified fetch-and-decode of a file:
// GET (with response verification inside the hedged attempt, so a
// corrupt response is never blindly retried in place), then cache
// lookup by the *actual* generation, then decode with CRC
// verification. A decode that fails verification never populates the
// scan cache.
func (e *Engine) readFileOnce(ctx *QueryContext, tr sim.Charger, fsp *obs.Span, store *objstore.Store, cred objstore.Credential, t catalog.Table, f bigmeta.FileEntry, filePreds []colfmt.Predicate) (fileRead, error) {
	var rd fileRead
	var data []byte
	var info objstore.ObjectInfo
	err := e.Res.HedgedDo(tr, ctx.Budget, "GET "+f.Bucket+"/"+f.Key, func(ch sim.Charger) error {
		d, oi, ge := store.GetOn(ch, cred, f.Bucket, f.Key)
		if ge != nil {
			return ge
		}
		if verr := verifyFetched(f, d, oi); verr != nil {
			return integrity.Annotate(verr, t.FullName(), f.Bucket, f.Key)
		}
		data, info = d, oi
		return nil
	})
	if err != nil {
		return rd, err
	}

	if e.scanCache != nil {
		// The file-entry generation may be unknown (0): the GET just
		// told us the real one, so the decode may still be reusable —
		// or worth caching for the next query.
		cacheKey := scanCacheKey{Cloud: t.Cloud, Bucket: f.Bucket, Key: f.Key, Generation: info.Generation}
		if full, ok := e.scanCache.get(cacheKey); ok {
			rd.hit = true
			fsp.SetStr("cache", "hit")
			b, err := finishDecoded(ctx.mem, full, filePreds, f, t)
			if err != nil {
				return rd, err
			}
			rd.batch = b
			return rd, nil
		}
		rd.miss = true
		fsp.SetStr("cache", "miss")
		full, err := decodeFile(data, nil)
		if err != nil {
			// Poisoning guard: the failed decode is not cached.
			return rd, integrity.Annotate(fmt.Errorf("engine: %s/%s: %w", f.Bucket, f.Key, err), t.FullName(), f.Bucket, f.Key)
		}
		e.scanCache.put(cacheKey, full)
		b, err := finishDecoded(ctx.mem, full, filePreds, f, t)
		if err != nil {
			return rd, err
		}
		rd.batch = b
		return rd, nil
	}

	b, err := decodeFile(data, filePreds)
	if err != nil {
		return rd, integrity.Annotate(fmt.Errorf("engine: %s/%s: %w", f.Bucket, f.Key, err), t.FullName(), f.Bucket, f.Key)
	}
	b, err = injectPartitionColumns(b, f.Partition, t)
	if err != nil {
		return rd, err
	}
	rd.batch = b
	return rd, nil
}
