package engine

// Dynamic partition pruning must never prune the preserved side of a
// LEFT JOIN: a left row without a match is still a result row
// (null-extended), so file-pruning the left table by the right
// side's key range would silently drop it. Today the only scan order
// that records such a range requires a WHERE conjunct on the right
// table — which happens to also drop the null-extended rows — but
// correctness must not hang on that accident (an IS NULL predicate
// or outer-aware filter pushdown would break it). These tests pin
// the invariant directly.

import (
	"testing"

	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/vector"
)

// createFactsAndDim builds ds.facts (two files with disjoint key
// ranges, so DPP at file granularity could prune one) and ds.dim
// (keys covering only the second file's range, with a filterable
// column so the dimension scans first under DPP).
func createFactsAndDim(t *testing.T, ev *env) {
	t.Helper()
	factsSchema := vector.NewSchema(
		vector.Field{Name: "fk", Type: vector.Int64},
		vector.Field{Name: "fv", Type: vector.String},
	)
	writeFile := func(name string, schema vector.Schema, rows [][]vector.Value) {
		bl := vector.NewBuilder(schema)
		for _, r := range rows {
			bl.Append(r...)
		}
		data, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.store.Put(ev.cred, "lake", name, data, "application/x-blk"); err != nil {
			t.Fatal(err)
		}
	}
	low := [][]vector.Value{}
	for k := int64(0); k < 10; k++ {
		low = append(low, []vector.Value{vector.IntValue(k), vector.StringValue("low")})
	}
	high := [][]vector.Value{}
	for k := int64(100); k < 110; k++ {
		high = append(high, []vector.Value{vector.IntValue(k), vector.StringValue("high")})
	}
	writeFile("facts/part-000.blk", factsSchema, low)
	writeFile("facts/part-001.blk", factsSchema, high)
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "facts", Type: catalog.BigLake, Schema: factsSchema,
		Cloud: "gcp", Bucket: "lake", Prefix: "facts/", Connection: "lake-conn",
		MetadataCaching: true,
	}); err != nil {
		t.Fatal(err)
	}

	dimSchema := vector.NewSchema(
		vector.Field{Name: "dk", Type: vector.Int64},
		vector.Field{Name: "dx", Type: vector.Int64},
	)
	dim := [][]vector.Value{}
	for k := int64(100); k < 110; k++ {
		dim = append(dim, []vector.Value{vector.IntValue(k), vector.IntValue(1)})
	}
	writeFile("dim/part-000.blk", dimSchema, dim)
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "dim", Type: catalog.BigLake, Schema: dimSchema,
		Cloud: "gcp", Bucket: "lake", Prefix: "dim/", Connection: "lake-conn",
		MetadataCaching: true,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDPPDoesNotPruneLeftJoinPreservedSide: the dimension's WHERE
// filter makes it scan first; its key range [100,110) must not prune
// the facts file holding keys 0..9.
func TestDPPDoesNotPruneLeftJoinPreservedSide(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	createFactsAndDim(t, ev)
	sql := "SELECT f.fk, d.dk FROM ds.facts AS f LEFT JOIN ds.dim AS d ON f.fk = d.dk WHERE d.dx >= 0"
	ctx := NewContext(adminP, "dpp-left")
	res, err := ev.eng.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	// The WHERE drops null-extended rows, so 10 matched rows remain —
	// but the preserved-side file must have been read, not pruned.
	if res.Batch.N != 10 {
		t.Fatalf("rows = %d, want 10", res.Batch.N)
	}
	if ctx.Stats.FilesPruned != 0 {
		t.Fatalf("FilesPruned = %d: DPP pruned the preserved side of a LEFT JOIN", ctx.Stats.FilesPruned)
	}

	// Same shape as an INNER join: now pruning the facts file IS the
	// optimization, and the row set is identical.
	ctx2 := NewContext(adminP, "dpp-inner")
	res2, err := ev.eng.Query(ctx2, "SELECT f.fk, d.dk FROM ds.facts AS f JOIN ds.dim AS d ON f.fk = d.dk WHERE d.dx >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Batch.N != 10 {
		t.Fatalf("inner rows = %d, want 10", res2.Batch.N)
	}
	if ctx2.Stats.FilesPruned == 0 {
		t.Fatal("inner join should still DPP-prune the low-key facts file")
	}
}

// TestDPPStillPrunesLeftJoinRightSide: ranges learned from the
// preserved side may prune the joined side — rows there that cannot
// match simply never surface.
func TestDPPStillPrunesLeftJoinRightSide(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	createFactsAndDim(t, ev)
	// Filter facts so it scans first with keys 0..9; dim holds only
	// 100..109, so its sole file is prunable.
	sql := "SELECT f.fk, d.dk FROM ds.facts AS f LEFT JOIN ds.dim AS d ON f.fk = d.dk WHERE f.fv = 'low'"
	ctx := NewContext(adminP, "dpp-left-right")
	res, err := ev.eng.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.N != 10 {
		t.Fatalf("rows = %d, want 10 null-extended", res.Batch.N)
	}
	dk := res.Batch.Column("dk")
	for r := 0; r < res.Batch.N; r++ {
		if !dk.Value(r).IsNull() {
			t.Fatalf("row %d: dk = %v, want NULL", r, dk.Value(r))
		}
	}
	if ctx.Stats.FilesPruned == 0 {
		t.Fatal("dim file outside the facts key range should be DPP-pruned")
	}
}
