package engine

import (
	"container/list"
	"sync"

	"biglake/internal/obs"
	"biglake/internal/vector"
)

// DefaultScanCacheBytes is the decoded-byte budget of the scan cache
// when Options.ScanCacheBytes is zero.
const DefaultScanCacheBytes = 256 << 20

// scanCacheKey identifies one immutable object version. Object-store
// generations increment on every overwrite, so (cloud, bucket, key,
// generation) pins exact content: a new generation is simply a
// different cache entry and stale ones age out of the LRU.
type scanCacheKey struct {
	Cloud      string
	Bucket     string
	Key        string
	Generation int64
}

// scanCacheEntry is a fully decoded file: the unfiltered batch as the
// vectorized reader produced it (before predicate filtering, which
// depends on the query and is re-applied per lookup).
type scanCacheEntry struct {
	key   scanCacheKey
	batch *vector.Batch
	bytes int64
}

// scanCache is a byte-budgeted LRU over decoded file batches.
type scanCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recent; values are *scanCacheEntry
	items  map[scanCacheKey]*list.Element
	// entries/bytes are registry gauges mirroring occupancy (nil-safe).
	entries *obs.Gauge
	bytes   *obs.Gauge
}

// observe installs the registry gauges the cache keeps current.
func (c *scanCache) observe(entries, bytes *obs.Gauge) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = entries
	c.bytes = bytes
	entries.Set(int64(c.lru.Len()))
	bytes.Set(c.used)
}

func newScanCache(budget int64) *scanCache {
	if budget <= 0 {
		budget = DefaultScanCacheBytes
	}
	return &scanCache{
		budget: budget,
		lru:    list.New(),
		items:  make(map[scanCacheKey]*list.Element),
	}
}

// get returns the decoded batch for an object generation, if cached.
func (c *scanCache) get(key scanCacheKey) (*vector.Batch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*scanCacheEntry).batch, true
}

// put inserts a decoded batch, evicting least-recently-used entries
// past the byte budget. Oversized batches (bigger than the whole
// budget) are not cached at all.
func (c *scanCache) put(key scanCacheKey, b *vector.Batch) {
	size := batchBytes(b)
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.lru.MoveToFront(el)
		ent := el.Value.(*scanCacheEntry)
		c.used += size - ent.bytes
		ent.batch, ent.bytes = b, size
	} else {
		el := c.lru.PushFront(&scanCacheEntry{key: key, batch: b, bytes: size})
		c.items[key] = el
		c.used += size
	}
	for c.used > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*scanCacheEntry)
		c.lru.Remove(back)
		delete(c.items, ent.key)
		c.used -= ent.bytes
	}
	c.entries.Set(int64(c.lru.Len()))
	c.bytes.Set(c.used)
}

// removeLocked unlinks one element and updates occupancy gauges.
func (c *scanCache) removeLocked(el *list.Element) {
	ent := el.Value.(*scanCacheEntry)
	c.lru.Remove(el)
	delete(c.items, ent.key)
	c.used -= ent.bytes
	c.entries.Set(int64(c.lru.Len()))
	c.bytes.Set(c.used)
}

// evictObject removes every cached generation of one object — the
// cache-poisoning guard. A decode that fails checksum verification
// must never populate the cache, and any resident entry for the same
// object is no longer trusted either (the store may be serving stale
// or rotten bytes); dropping all generations forces the next read to
// re-fetch and re-verify from the source. Returns how many entries
// were dropped.
func (c *scanCache) evictObject(cloud, bucket, key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, el := range c.items {
		if k.Cloud == cloud && k.Bucket == bucket && k.Key == key {
			c.removeLocked(el)
			n++
		}
	}
	return n
}

// batchBytes estimates the in-memory size of a decoded batch.
func batchBytes(b *vector.Batch) int64 {
	var n int64
	for _, c := range b.Cols {
		n += int64(len(c.Ints))*8 + int64(len(c.Floats))*8 + int64(len(c.Bools)) +
			int64(len(c.Nulls)) + int64(len(c.Codes))*4 + int64(len(c.Runs))*8
		for _, s := range c.Strs {
			n += int64(len(s)) + 16
		}
	}
	return n
}
