package engine

import (
	"errors"
	"testing"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/integrity"
	"biglake/internal/objstore"
	"biglake/internal/vector"
)

// TestScanCacheEvictObjectDropsAllGenerations pins the eviction
// primitive the poisoning guard relies on: evicting an object removes
// every cached generation of it — and only it.
func TestScanCacheEvictObjectDropsAllGenerations(t *testing.T) {
	c := newScanCache(1 << 20)
	bl := vector.NewBuilder(vector.NewSchema(vector.Field{Name: "x", Type: vector.Int64}))
	bl.Append(vector.IntValue(1))
	b := bl.Build()
	c.put(scanCacheKey{Cloud: "gcp", Bucket: "lake", Key: "t/a.blk", Generation: 1}, b)
	c.put(scanCacheKey{Cloud: "gcp", Bucket: "lake", Key: "t/a.blk", Generation: 2}, b)
	c.put(scanCacheKey{Cloud: "gcp", Bucket: "lake", Key: "t/b.blk", Generation: 1}, b)
	if n := c.evictObject("gcp", "lake", "t/a.blk"); n != 2 {
		t.Fatalf("evicted %d entries, want 2", n)
	}
	if _, ok := c.get(scanCacheKey{Cloud: "gcp", Bucket: "lake", Key: "t/a.blk", Generation: 2}); ok {
		t.Fatal("a.blk generation survived eviction")
	}
	if _, ok := c.get(scanCacheKey{Cloud: "gcp", Bucket: "lake", Key: "t/b.blk", Generation: 1}); !ok {
		t.Fatal("unrelated object was evicted")
	}
	if c.used != batchBytes(b) {
		t.Fatalf("byte accounting drifted: used=%d want=%d", c.used, batchBytes(b))
	}
}

// poisonWorld builds a one-file Native managed table ds.m whose file
// list (and pinned generation) comes from the transaction log, so the
// scan path runs with no footer peeks in the way. writeVersion rewrites
// the file in place with val repeated rows times and commits the swap.
func poisonWorld(t *testing.T, ev *env) (writeVersion func(val int64) string) {
	t.Helper()
	schema := vector.NewSchema(vector.Field{Name: "x", Type: vector.Int64})
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "m", Type: catalog.Native, Schema: schema,
		Cloud: "gcp", Bucket: "lake", Prefix: "managed/m/",
	}); err != nil {
		t.Fatal(err)
	}
	const key = "managed/m/part-000.blk"
	return func(val int64) string {
		t.Helper()
		bl := vector.NewBuilder(schema)
		for i := 0; i < 10; i++ {
			bl.Append(vector.IntValue(val))
		}
		file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		info, err := ev.store.Put(ev.cred, "lake", key, file, "application/x-blk")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.log.Commit("loader", map[string]bigmeta.TableDelta{
			"ds.m": {Removed: []string{key}, Added: []bigmeta.FileEntry{{
				Bucket: "lake", Key: key, Size: info.Size,
				Generation: info.Generation, RowCount: 10,
			}}},
		}); err != nil {
			t.Fatal(err)
		}
		return key
	}
}

// TestScanCachePoisoningGuard is the end-to-end regression: when every
// GET response is silently corrupted, the scan must fail with a typed
// integrity error, the failed decode must never populate the scan
// cache, and the resident entry for the object must be evicted — then,
// once the store is healthy again and the quarantine lifted, a clean
// read repopulates the cache with the new version's rows.
func TestScanCachePoisoningGuard(t *testing.T) {
	opts := DefaultOptions()
	opts.EnableScanCache = true
	ev := newEnv(t, opts)
	writeVersion := poisonWorld(t, ev)
	const sql = `SELECT SUM(x) AS s FROM ds.m`

	// Warm the cache with a clean read of version 1.
	key := writeVersion(1)
	if got := ev.query(t, adminP, sql).Batch.Column("s").Value(0).AsInt(); got != 10 {
		t.Fatalf("v1 sum = %d", got)
	}
	if got := ev.eng.Obs.Gauge("engine.scan.cache_entries").Get(); got != 1 {
		t.Fatalf("warm cache entries = %d, want 1", got)
	}

	// Swap in version 2: the snapshot now pins a new generation, so the
	// next read must fetch — through a store that corrupts every
	// response.
	writeVersion(5)
	ev.store.InjectFaults(objstore.FaultProfile{Seed: 7, CorruptRate: 1})
	if _, err := ev.eng.Query(NewContext(adminP, "poison"), sql); err == nil {
		t.Fatal("query over all-corrupt responses succeeded")
	} else if !errors.Is(err, integrity.ErrCorrupt) {
		t.Fatalf("corruption surfaced untyped: %v", err)
	}
	// Neither the rotten decode nor the stale resident entry may stay:
	// the v1 entry was evicted, the poisoned v2 decode never cached.
	if got := ev.eng.Obs.Gauge("engine.scan.cache_entries").Get(); got != 0 {
		t.Fatalf("cache entries after poisoned read = %d, want 0", got)
	}
	snap := ev.eng.Obs.Snapshot()
	if snap.Counters["integrity.detected.scan"] == 0 {
		t.Fatal("integrity.detected.scan never incremented")
	}
	if snap.Counters["integrity.quarantines"] == 0 {
		t.Fatal("persistent corruption did not quarantine the file")
	}
	marks := ev.log.Quarantined("ds.m")
	if len(marks) != 1 || marks[0].Key != key {
		t.Fatalf("quarantine marks = %+v", marks)
	}

	// Heal the store, lift the quarantine: the next read re-fetches,
	// re-verifies, repopulates the cache, and serves version 2.
	ev.store.ClearFaults()
	if _, err := ev.log.Commit(string(adminP), map[string]bigmeta.TableDelta{
		"ds.m": {Unquarantine: []string{key}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := ev.query(t, adminP, sql).Batch.Column("s").Value(0).AsInt(); got != 50 {
		t.Fatalf("post-recovery sum = %d, want 50", got)
	}
	if got := ev.eng.Obs.Gauge("engine.scan.cache_entries").Get(); got != 1 {
		t.Fatalf("cache entries after recovery = %d, want 1", got)
	}
}

// TestQuarantinedFileFailsFastAndSkipOptIn pins the containment
// policy: a quarantined file fails the query with a typed error naming
// table and file, and the explicit SkipQuarantined opt-in degrades to
// skip-and-warn with a strict subset of the rows.
func TestQuarantinedFileFailsFastAndSkipOptIn(t *testing.T) {
	ev := newEnv(t, DefaultOptions())
	ev.createOrders(t, []string{"us", "eu"}, 1, 10, false)
	const sql = `SELECT COUNT(*) AS n FROM ds.orders`
	if got := ev.query(t, adminP, sql).Batch.Column("n").Value(0).AsInt(); got != 20 {
		t.Fatalf("baseline count = %d", got)
	}
	if _, err := ev.log.QuarantineFile(string(adminP), "ds.orders", bigmeta.QuarantineMark{
		Key: "orders/region=eu/part-000.blk", Source: "test", Reason: "synthetic", Time: ev.clock.Now(),
	}); err != nil {
		t.Fatal(err)
	}

	_, err := ev.eng.Query(NewContext(adminP, "q-fail"), sql)
	if err == nil {
		t.Fatal("query over a quarantined file succeeded without opt-in")
	}
	var ie *integrity.Error
	if !errors.As(err, &ie) {
		t.Fatalf("quarantine error untyped: %v", err)
	}
	if ie.Table != "ds.orders" || ie.Key != "orders/region=eu/part-000.blk" {
		t.Fatalf("error does not name table/file: %+v", ie)
	}

	ev.eng.Opts.SkipQuarantined = true
	res := ev.query(t, adminP, sql)
	if got := res.Batch.Column("n").Value(0).AsInt(); got != 10 {
		t.Fatalf("skip-and-warn count = %d, want 10 (eu file skipped)", got)
	}
	if res.Stats.QuarantineSkips != 1 {
		t.Fatalf("QuarantineSkips = %d, want 1", res.Stats.QuarantineSkips)
	}
}
