package colfmt

// Round-trip property test: random typed columns (dictionary-friendly
// low-cardinality strings, RLE-friendly runs, nulls, multiple and
// empty row groups) must decode to exactly the values encoded, the
// two readers must agree with each other, and every footer stat
// (min/max/null count) must match the decoded data it describes. The
// differential oracle trusts colfmt decoding as its ground truth, so
// this is the layer its guarantees bottom out in.

import (
	"errors"
	"fmt"
	"testing"

	"biglake/internal/integrity"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// randomBatch builds a seeded batch shaped to exercise the encoder's
// choices: runs, low cardinality, nulls, negative and extreme values.
func randomBatch(rng *sim.RNG, rows int) *vector.Batch {
	schema := vector.NewSchema(
		vector.Field{Name: "i", Type: vector.Int64},
		vector.Field{Name: "f", Type: vector.Float64},
		vector.Field{Name: "s", Type: vector.String},
		vector.Field{Name: "b", Type: vector.Bool},
		vector.Field{Name: "ts", Type: vector.Timestamp},
	)
	words := []string{"aa", "bb", "cc", "dd"}
	bl := vector.NewBuilder(schema)
	runVal := int64(0)
	runLeft := 0
	for r := 0; r < rows; r++ {
		if runLeft == 0 { // RLE-friendly runs in the int column
			runVal = int64(rng.Intn(5))
			runLeft = 1 + rng.Intn(12)
		}
		runLeft--
		null := func(p int) bool { return rng.Intn(100) < p }
		iv := vector.IntValue(runVal)
		if null(10) {
			iv = vector.NullValue
		}
		fv := vector.FloatValue(float64(rng.Intn(2000)-1000) * 0.5)
		if null(15) {
			fv = vector.NullValue
		}
		sv := vector.StringValue(words[rng.Intn(len(words))])
		if null(10) {
			sv = vector.NullValue
		}
		bv := vector.BoolValue(rng.Intn(2) == 0)
		if null(20) {
			bv = vector.NullValue
		}
		tv := vector.TimestampValue(20240101 + int64(rng.Intn(365)))
		if null(5) {
			tv = vector.NullValue
		}
		bl.Append(iv, fv, sv, bv, tv)
	}
	return bl.Build()
}

func valuesEqual(a, b vector.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	if a.Type != b.Type {
		return false
	}
	switch a.Type {
	case vector.Float64:
		return a.F == b.F
	case vector.String, vector.Bytes:
		return a.S == b.S
	case vector.Bool:
		return a.B == b.B
	default:
		return a.I == b.I
	}
}

func TestRoundTripProperty(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed)
			rows := 1 + rng.Intn(300)
			in := randomBatch(rng, rows)
			// Small row groups force several groups per file.
			opts := WriterOptions{RowGroupRows: 1 + rng.Intn(64)}
			if seed%4 == 0 {
				opts.DisableEncodings = true // plain baseline must agree too
			}
			file, err := WriteFile(in, opts)
			if err != nil {
				t.Fatal(err)
			}

			// Vectorized reader round-trip.
			vr, err := NewVectorizedReader(file, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			out, err := vr.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if out.N != in.N {
				t.Fatalf("rows: %d != %d", out.N, in.N)
			}
			if !out.Schema.Equal(in.Schema) {
				t.Fatalf("schema drift: %v vs %v", out.Schema, in.Schema)
			}
			for r := 0; r < in.N; r++ {
				want, got := in.Row(r), out.Row(r)
				for c := range want {
					if !valuesEqual(want[c], got[c]) {
						t.Fatalf("row %d col %s: %v != %v", r, in.Schema.Fields[c].Name, got[c], want[c])
					}
				}
			}

			// Row reader must agree with the vectorized reader.
			rr, err := NewRowReader(file, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; ; r++ {
				row, err := rr.Next()
				if err != nil {
					t.Fatal(err)
				}
				if row == nil {
					if r != in.N {
						t.Fatalf("row reader stopped at %d of %d", r, in.N)
					}
					break
				}
				for c := range row {
					if !valuesEqual(row[c], in.Row(r)[c]) {
						t.Fatalf("row reader row %d col %d: %v != %v", r, c, row[c], in.Row(r)[c])
					}
				}
			}

			verifyFooterStats(t, file, in)
		})
	}
}

// verifyFooterStats recomputes per-row-group min/max/null counts from
// the source batch and requires the footer to match exactly.
func verifyFooterStats(t *testing.T, file []byte, in *vector.Batch) {
	t.Helper()
	footer, err := ReadFooter(file)
	if err != nil {
		t.Fatal(err)
	}
	start := 0
	for gi, rg := range footer.RowGroups {
		end := start + int(rg.Rows)
		if end > in.N {
			t.Fatalf("row group %d overruns batch: %d > %d", gi, end, in.N)
		}
		for _, ch := range rg.Chunks {
			ci := in.Schema.Index(ch.Column)
			if ci < 0 {
				t.Fatalf("row group %d: unknown column %q", gi, ch.Column)
			}
			var min, max vector.Value
			nulls := int64(0)
			for r := start; r < end; r++ {
				v := in.Row(r)[ci]
				if v.IsNull() {
					nulls++
					continue
				}
				if min.IsNull() || v.Compare(min) < 0 {
					min = v
				}
				if max.IsNull() || v.Compare(max) > 0 {
					max = v
				}
			}
			if ch.Stats.Nulls != nulls {
				t.Fatalf("group %d col %s: footer nulls %d, data %d", gi, ch.Column, ch.Stats.Nulls, nulls)
			}
			if !valuesEqual(ch.Stats.Min.ToValue(), min) {
				t.Fatalf("group %d col %s: footer min %v, data %v", gi, ch.Column, ch.Stats.Min.ToValue(), min)
			}
			if !valuesEqual(ch.Stats.Max.ToValue(), max) {
				t.Fatalf("group %d col %s: footer max %v, data %v", gi, ch.Column, ch.Stats.Max.ToValue(), max)
			}
		}
		start = end
	}
	if start != in.N {
		t.Fatalf("row groups cover %d of %d rows", start, in.N)
	}
}

// TestRoundTripBitFlips is the corruption arm of the round-trip
// property: every byte of a written file is covered by a checksum
// (chunk CRCs, footer CRC, or the trailer fields those checks parse),
// so flipping ANY single bit must make Verify return a typed
// integrity error — never a silent success, never an untyped panic or
// garbage decode. CRC-32C detects all single-bit errors, so there is
// no lucky flip.
func TestRoundTripBitFlips(t *testing.T) {
	flip := func(file []byte, bit int) []byte {
		out := append([]byte(nil), file...)
		out[bit/8] ^= 1 << (bit % 8)
		return out
	}
	check := func(t *testing.T, file []byte, bit int) {
		t.Helper()
		bad := flip(file, bit)
		err := Verify(bad)
		if err == nil {
			t.Fatalf("bit %d (byte %d of %d): flip verified clean", bit, bit/8, len(file))
		}
		if !errors.Is(err, integrity.ErrCorrupt) {
			t.Fatalf("bit %d: flip produced untyped error: %v", bit, err)
		}
		// The real read path must refuse it too (typed), not decode
		// garbage rows.
		if vr, rerr := NewVectorizedReader(bad, nil, nil); rerr == nil {
			if _, rerr = vr.ReadAll(); rerr == nil {
				t.Fatalf("bit %d: corrupt file decoded without error", bit)
			} else if !errors.Is(rerr, integrity.ErrCorrupt) {
				t.Fatalf("bit %d: read path error untyped: %v", bit, rerr)
			}
		} else if !errors.Is(rerr, integrity.ErrCorrupt) {
			t.Fatalf("bit %d: reader constructor error untyped: %v", bit, rerr)
		}
	}

	// Exhaustive over a small file: every single bit.
	rng := sim.NewRNG(77)
	small := randomBatch(rng, 8)
	file, err := WriteFile(small, WriterOptions{RowGroupRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(file); err != nil {
		t.Fatalf("pristine file failed verification: %v", err)
	}
	for bit := 0; bit < len(file)*8; bit++ {
		check(t, file, bit)
	}

	// Sampled over larger seeded files: 64 random flips each.
	for seed := uint64(1); seed <= 5; seed++ {
		rng := sim.NewRNG(seed ^ 0xb17f11b5)
		in := randomBatch(rng, 50+rng.Intn(200))
		file, err := WriteFile(in, WriterOptions{RowGroupRows: 1 + rng.Intn(64)})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(file); err != nil {
			t.Fatalf("seed %d: pristine file failed verification: %v", seed, err)
		}
		for i := 0; i < 64; i++ {
			check(t, file, rng.Intn(len(file)*8))
		}
	}
}

// TestRoundTripEmpty pins the degenerate shapes: a zero-row file and
// an empty row group produced by flushing an empty batch.
func TestRoundTripEmpty(t *testing.T) {
	schema := vector.NewSchema(
		vector.Field{Name: "i", Type: vector.Int64},
		vector.Field{Name: "s", Type: vector.String},
	)
	empty := vector.NewBuilder(schema).Build()
	file, err := WriteFile(empty, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vr, err := NewVectorizedReader(file, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := vr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 0 {
		t.Fatalf("rows = %d, want 0", out.N)
	}
	if !out.Schema.Equal(schema) {
		t.Fatalf("schema lost on empty file: %v", out.Schema)
	}

	// Writer-level: an empty WriteBatch between real ones must not
	// corrupt grouping or stats.
	w := NewWriter(schema, WriterOptions{RowGroupRows: 4})
	bl := vector.NewBuilder(schema)
	bl.Append(vector.IntValue(1), vector.StringValue("a"))
	if err := w.WriteBatch(bl.Build()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(vector.NewBuilder(schema).Build()); err != nil {
		t.Fatal(err)
	}
	bl2 := vector.NewBuilder(schema)
	bl2.Append(vector.IntValue(2), vector.StringValue("b"))
	if err := w.WriteBatch(bl2.Build()); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	vr2, err := NewVectorizedReader(data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := vr2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if out2.N != 2 {
		t.Fatalf("rows = %d, want 2", out2.N)
	}
	if out2.Row(0)[0].I != 1 || out2.Row(1)[0].I != 2 {
		t.Fatalf("rows = %v / %v", out2.Row(0), out2.Row(1))
	}
}
