package colfmt

import (
	"fmt"

	"biglake/internal/vector"
)

// Predicate is a simple pushdown predicate `Column Op Value` used for
// row-group skipping and row filtering during scans.
type Predicate struct {
	Column string
	Op     vector.CmpOp
	Value  vector.Value
}

// String renders the predicate.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Column, p.Op, p.Value)
}

// StatsCanSatisfy reports whether a chunk with the given stats could
// contain rows satisfying the predicate; false means the whole group
// can be skipped.
func (p Predicate) StatsCanSatisfy(st ColumnStats) bool {
	min, max := st.Min.ToValue(), st.Max.ToValue()
	if min.IsNull() || max.IsNull() {
		// All-null or unknown stats: only NULL rows exist or we cannot
		// prune; predicates never match NULL, but without reliable
		// stats we conservatively keep the group when stats are
		// unknown. All-null groups (Min null with Nulls>0) are
		// skippable for any comparison.
		return !(min.IsNull() && max.IsNull() && st.Nulls > 0)
	}
	switch p.Op {
	case vector.EQ:
		return p.Value.Compare(min) >= 0 && p.Value.Compare(max) <= 0
	case vector.NE:
		// Only skippable if every row equals Value.
		return !(min.Compare(max) == 0 && min.Compare(p.Value) == 0 && st.Nulls == 0)
	case vector.LT:
		return min.Compare(p.Value) < 0
	case vector.LE:
		return min.Compare(p.Value) <= 0
	case vector.GT:
		return max.Compare(p.Value) > 0
	case vector.GE:
		return max.Compare(p.Value) >= 0
	}
	return true
}

// EvalPredicates computes the conjunction of predicates over a batch.
func EvalPredicates(b *vector.Batch, preds []Predicate) ([]bool, error) {
	return EvalPredicatesWith(nil, b, preds)
}

// EvalPredicatesWith is EvalPredicates drawing its masks from al (nil
// = heap). The first predicate's compare mask becomes the result
// directly and later predicates fold into it in place, so the common
// single-conjunct scan (a point lookup) runs one kernel pass with no
// all-true initialization.
func EvalPredicatesWith(al vector.Alloc, b *vector.Batch, preds []Predicate) ([]bool, error) {
	if al == nil {
		al = vector.Heap
	}
	var mask []bool
	for _, p := range preds {
		c := b.Column(p.Column)
		if c == nil {
			return nil, fmt.Errorf("colfmt: predicate column %q not in batch", p.Column)
		}
		cm := vector.CompareConstWith(al, c, p.Op, p.Value)
		if mask == nil {
			mask = cm
			continue
		}
		for i := range mask {
			mask[i] = mask[i] && cm[i]
		}
	}
	if mask == nil {
		mask = al.Bools(b.N)
		for i := range mask {
			mask[i] = true
		}
	}
	return mask, nil
}

// VectorizedReader scans a file emitting encoded columnar batches,
// using footer stats to skip row groups that cannot satisfy the
// predicates. This is the reader of §3.4's second generation: column
// chunks flow into vectorized evaluation without ever becoming rows.
type VectorizedReader struct {
	file    []byte
	footer  *Footer
	columns []string
	preds   []Predicate
	group   int
	// GroupsRead counts row groups actually decoded (observability
	// for pruning tests).
	GroupsRead int
	// GroupsSkipped counts stat-pruned row groups.
	GroupsSkipped int
}

// NewVectorizedReader opens a reader over complete file bytes. columns
// nil means all columns; preds are applied as both group-skip
// conditions and row filters.
func NewVectorizedReader(file []byte, columns []string, preds []Predicate) (*VectorizedReader, error) {
	footer, err := ReadFooter(file)
	if err != nil {
		return nil, err
	}
	schema := footer.Schema()
	if columns == nil {
		for _, f := range schema.Fields {
			columns = append(columns, f.Name)
		}
	}
	need := map[string]bool{}
	for _, c := range columns {
		if schema.Index(c) < 0 {
			return nil, fmt.Errorf("colfmt: unknown column %q", c)
		}
		need[c] = true
	}
	for _, p := range preds {
		if schema.Index(p.Column) < 0 {
			return nil, fmt.Errorf("colfmt: unknown predicate column %q", p.Column)
		}
	}
	return &VectorizedReader{file: file, footer: footer, columns: columns, preds: preds}, nil
}

// Schema returns the projected output schema.
func (r *VectorizedReader) Schema() vector.Schema {
	full := r.footer.Schema()
	out, _ := full.Select(r.columns)
	return out
}

// Next returns the next batch, or nil when the file is exhausted.
// Returned batches have predicates already applied.
func (r *VectorizedReader) Next() (*vector.Batch, error) {
	for r.group < len(r.footer.RowGroups) {
		rg := r.footer.RowGroups[r.group]
		r.group++

		skip := false
		for _, p := range r.preds {
			for _, ch := range rg.Chunks {
				if ch.Column == p.Column && !p.StatsCanSatisfy(ch.Stats) {
					skip = true
				}
			}
		}
		if skip {
			r.GroupsSkipped++
			continue
		}
		r.GroupsRead++

		// Decode only projected + predicate columns.
		needed := map[string]bool{}
		for _, c := range r.columns {
			needed[c] = true
		}
		for _, p := range r.preds {
			needed[p.Column] = true
		}
		cols := map[string]*vector.Column{}
		for _, ch := range rg.Chunks {
			if !needed[ch.Column] {
				continue
			}
			c, err := ReadChunk(r.file, ch)
			if err != nil {
				return nil, err
			}
			cols[ch.Column] = c
		}

		// Evaluate predicates on encoded columns.
		var mask []bool
		if len(r.preds) > 0 {
			mask = make([]bool, int(rg.Rows))
			for i := range mask {
				mask[i] = true
			}
			for _, p := range r.preds {
				mask = vector.And(mask, vector.CompareConst(cols[p.Column], p.Op, p.Value))
			}
		}

		schema := r.Schema()
		outCols := make([]*vector.Column, len(r.columns))
		for i, name := range r.columns {
			outCols[i] = cols[name]
		}
		batch, err := vector.NewBatch(schema, outCols)
		if err != nil {
			return nil, err
		}
		if mask != nil {
			if vector.CountMask(mask) == 0 {
				continue
			}
			batch, err = vector.Filter(batch, mask)
			if err != nil {
				return nil, err
			}
		}
		return batch, nil
	}
	return nil, nil
}

// ReadAll drains the reader into one concatenated batch (possibly
// empty).
func (r *VectorizedReader) ReadAll() (*vector.Batch, error) {
	var out *vector.Batch
	for {
		b, err := r.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		out, err = vector.AppendBatch(out, b)
		if err != nil {
			return nil, err
		}
	}
	if out == nil {
		out = vector.EmptyBatch(r.Schema())
	}
	return out, nil
}

// RowReader is the deliberately row-oriented baseline reader (§3.4
// first prototype): every row group is fully decoded, every row is
// materialized as boxed values, predicates are evaluated row-at-a-time
// and the surviving rows are re-columnarized by the caller.
type RowReader struct {
	file   []byte
	footer *Footer
	schema vector.Schema
	group  int
	rows   [][]vector.Value
	pos    int
	preds  []Predicate
	cols   []string
}

// NewRowReader opens the row-oriented reader.
func NewRowReader(file []byte, columns []string, preds []Predicate) (*RowReader, error) {
	footer, err := ReadFooter(file)
	if err != nil {
		return nil, err
	}
	schema := footer.Schema()
	if columns == nil {
		for _, f := range schema.Fields {
			columns = append(columns, f.Name)
		}
	}
	for _, c := range columns {
		if schema.Index(c) < 0 {
			return nil, fmt.Errorf("colfmt: unknown column %q", c)
		}
	}
	return &RowReader{file: file, footer: footer, schema: schema, preds: preds, cols: columns}, nil
}

// Schema returns the projected output schema.
func (r *RowReader) Schema() vector.Schema {
	out, _ := r.schema.Select(r.cols)
	return out
}

// Next returns the next row (projected), or nil at EOF. No row-group
// skipping: the baseline reader peeks at data to decide, as pre-cache
// engines did.
func (r *RowReader) Next() ([]vector.Value, error) {
	for {
		if r.pos < len(r.rows) {
			row := r.rows[r.pos]
			r.pos++
			return row, nil
		}
		if r.group >= len(r.footer.RowGroups) {
			return nil, nil
		}
		rg := r.footer.RowGroups[r.group]
		r.group++

		// Decode every chunk fully (row-oriented readers reassemble
		// whole records).
		cols := make([]*vector.Column, len(r.schema.Fields))
		for i, f := range r.schema.Fields {
			for _, ch := range rg.Chunks {
				if ch.Column == f.Name {
					c, err := ReadChunk(r.file, ch)
					if err != nil {
						return nil, err
					}
					cols[i] = c.Decode()
				}
			}
		}
		projIdx := make([]int, len(r.cols))
		for i, name := range r.cols {
			projIdx[i] = r.schema.Index(name)
		}
		r.rows = r.rows[:0]
		r.pos = 0
		for i := 0; i < int(rg.Rows); i++ {
			keep := true
			for _, p := range r.preds {
				ci := r.schema.Index(p.Column)
				v := cols[ci].Value(i)
				if v.IsNull() || !p.Op.Eval(v.Compare(p.Value)) {
					keep = false
					break
				}
			}
			if !keep {
				continue
			}
			row := make([]vector.Value, len(projIdx))
			for j, ci := range projIdx {
				row[j] = cols[ci].Value(i)
			}
			r.rows = append(r.rows, row)
		}
	}
}

// ReadAllColumnar drains the row reader and converts the rows back to
// a columnar batch — the translation penalty the vectorized reader
// removed.
func (r *RowReader) ReadAllColumnar() (*vector.Batch, error) {
	bl := vector.NewBuilder(r.Schema())
	for {
		row, err := r.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		bl.Append(row...)
	}
	return bl.Build(), nil
}
