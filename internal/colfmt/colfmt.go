// Package colfmt implements the open self-describing columnar file
// format BigLake tables store data in — the repository's Apache
// Parquet stand-in (§2.1, §3.3, §3.4). Files consist of row groups of
// independently-encoded column chunks (PLAIN / DICT / RLE), followed
// by a footer holding the schema, row-group index, and per-column
// statistics (min/max, null count, distinct estimate).
//
// Two readers are provided on purpose:
//
//   - RowReader models Dremel's original row-oriented Parquet reader:
//     it materializes every row as boxed values and re-columnarizes at
//     the end. This is the §3.4 baseline.
//   - VectorizedReader emits encoded vector.Column chunks directly,
//     skipping whole row groups using footer statistics. This is the
//     vectorized reader whose introduction doubled ReadRows throughput
//     and improved server CPU efficiency by an order of magnitude.
package colfmt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"biglake/internal/integrity"
	"biglake/internal/vector"
)

// Magic trails the file, like Parquet's "PAR1".
const Magic = "BLK1"

// trailerLen is the fixed trailer after the footer JSON: 4 bytes of
// footer CRC-32C, 4 bytes of footer length, then the magic.
const trailerLen = 12

// ColumnStats summarizes one column within a row group or file.
type ColumnStats struct {
	Min      StatValue `json:"min"`
	Max      StatValue `json:"max"`
	Nulls    int64     `json:"nulls"`
	Distinct int64     `json:"distinct"`
}

// StatValue is a JSON-serializable vector.Value.
type StatValue struct {
	Type vector.Type `json:"type"`
	I    int64       `json:"i,omitempty"`
	F    float64     `json:"f,omitempty"`
	S    string      `json:"s,omitempty"`
	B    bool        `json:"b,omitempty"`
}

// ToValue converts back to a vector.Value.
func (sv StatValue) ToValue() vector.Value {
	return vector.Value{Type: sv.Type, I: sv.I, F: sv.F, S: sv.S, B: sv.B}
}

// FromValue converts a vector.Value into its stat form.
func FromValue(v vector.Value) StatValue {
	return StatValue{Type: v.Type, I: v.I, F: v.F, S: v.S, B: v.B}
}

// ChunkMeta locates one column chunk within the file.
type ChunkMeta struct {
	Column string `json:"column"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
	// CRC is the CRC-32C of the encoded chunk bytes, verified on every
	// decode so a flipped bit in the body becomes a typed error, never
	// a silent mis-decode.
	CRC   uint32      `json:"crc"`
	Stats ColumnStats `json:"stats"`
}

// RowGroupMeta describes one row group.
type RowGroupMeta struct {
	Rows   int64       `json:"rows"`
	Chunks []ChunkMeta `json:"chunks"`
}

// FieldMeta is one schema field in the footer.
type FieldMeta struct {
	Name string      `json:"name"`
	Type vector.Type `json:"type"`
}

// Footer is the file's self-describing metadata.
type Footer struct {
	Fields    []FieldMeta    `json:"fields"`
	RowGroups []RowGroupMeta `json:"row_groups"`
	Rows      int64          `json:"rows"`
}

// Schema reconstructs the vector schema from the footer.
func (f *Footer) Schema() vector.Schema {
	fields := make([]vector.Field, len(f.Fields))
	for i, fm := range f.Fields {
		fields[i] = vector.Field{Name: fm.Name, Type: fm.Type}
	}
	return vector.Schema{Fields: fields}
}

// ColumnStatsFor merges per-row-group stats for one column across the
// whole file; ok is false if the column is unknown.
func (f *Footer) ColumnStatsFor(name string) (ColumnStats, bool) {
	var out ColumnStats
	found := false
	for _, rg := range f.RowGroups {
		for _, ch := range rg.Chunks {
			if ch.Column != name {
				continue
			}
			if !found {
				out = ch.Stats
				found = true
				continue
			}
			if min := ch.Stats.Min.ToValue(); !min.IsNull() && (out.Min.ToValue().IsNull() || min.Compare(out.Min.ToValue()) < 0) {
				out.Min = ch.Stats.Min
			}
			if max := ch.Stats.Max.ToValue(); !max.IsNull() && (out.Max.ToValue().IsNull() || max.Compare(out.Max.ToValue()) > 0) {
				out.Max = ch.Stats.Max
			}
			out.Nulls += ch.Stats.Nulls
			out.Distinct += ch.Stats.Distinct // upper bound across groups
		}
	}
	if !found {
		for _, fm := range f.Fields {
			if fm.Name == name {
				return ColumnStats{}, true
			}
		}
	}
	return out, found
}

// WriterOptions tunes file layout.
type WriterOptions struct {
	// RowGroupRows caps rows per row group (default 8192).
	RowGroupRows int
	// DisableEncodings forces PLAIN chunks (for baselines/ablations).
	DisableEncodings bool
}

// Writer accumulates batches and serializes a columnar file.
type Writer struct {
	schema vector.Schema
	opts   WriterOptions
	pend   *vector.Batch
	body   bytes.Buffer
	footer Footer
}

// NewWriter returns a writer for schema.
func NewWriter(schema vector.Schema, opts WriterOptions) *Writer {
	if opts.RowGroupRows <= 0 {
		opts.RowGroupRows = 8192
	}
	w := &Writer{schema: schema, opts: opts}
	for _, f := range schema.Fields {
		w.footer.Fields = append(w.footer.Fields, FieldMeta{Name: f.Name, Type: f.Type})
	}
	return w
}

// WriteBatch appends rows; full row groups are flushed to the body.
func (w *Writer) WriteBatch(b *vector.Batch) error {
	if !b.Schema.Equal(w.schema) {
		return fmt.Errorf("colfmt: batch schema %v != file schema %v", b.Schema, w.schema)
	}
	merged, err := vector.AppendBatch(w.pend, b)
	if err != nil {
		return err
	}
	w.pend = merged
	for w.pend != nil && w.pend.N >= w.opts.RowGroupRows {
		head, tail, err := splitBatch(w.pend, w.opts.RowGroupRows)
		if err != nil {
			return err
		}
		if err := w.flushGroup(head); err != nil {
			return err
		}
		w.pend = tail
	}
	return nil
}

func splitBatch(b *vector.Batch, n int) (head, tail *vector.Batch, err error) {
	if b.N <= n {
		return b, nil, nil
	}
	headIdx := make([]int, n)
	for i := range headIdx {
		headIdx[i] = i
	}
	tailIdx := make([]int, b.N-n)
	for i := range tailIdx {
		tailIdx[i] = n + i
	}
	hc := make([]*vector.Column, len(b.Cols))
	tc := make([]*vector.Column, len(b.Cols))
	for i, c := range b.Cols {
		hc[i] = vector.Gather(c, headIdx)
		tc[i] = vector.Gather(c, tailIdx)
	}
	head, err = vector.NewBatch(b.Schema, hc)
	if err != nil {
		return nil, nil, err
	}
	tail, err = vector.NewBatch(b.Schema, tc)
	return head, tail, err
}

// chooseEncoding picks the cheapest physical encoding for a chunk.
func chooseEncoding(c *vector.Column) *vector.Column {
	if c.Len == 0 {
		return c
	}
	distinct := c.DistinctCount()
	if distinct > 0 && distinct*2 <= c.Len {
		dict := vector.DictEncode(c)
		rle := vector.RLEncode(c)
		if len(rle.Runs)*3 <= c.Len {
			return rle
		}
		return dict
	}
	return c
}

func (w *Writer) flushGroup(b *vector.Batch) error {
	rg := RowGroupMeta{Rows: int64(b.N)}
	for i, c := range b.Cols {
		enc := c
		if !w.opts.DisableEncodings {
			enc = chooseEncoding(c)
		}
		min, max, nulls := vector.MinMax(c)
		chunk := vector.EncodeColumn(enc)
		rg.Chunks = append(rg.Chunks, ChunkMeta{
			Column: w.schema.Fields[i].Name,
			Offset: int64(w.body.Len()),
			Length: int64(len(chunk)),
			CRC:    integrity.Checksum(chunk),
			Stats: ColumnStats{
				Min:      FromValue(min),
				Max:      FromValue(max),
				Nulls:    nulls,
				Distinct: int64(enc.DistinctCount()),
			},
		})
		w.body.Write(chunk)
	}
	w.footer.RowGroups = append(w.footer.RowGroups, rg)
	w.footer.Rows += int64(b.N)
	return nil
}

// Finish flushes pending rows and returns the complete file bytes.
func (w *Writer) Finish() ([]byte, error) {
	if w.pend != nil && w.pend.N > 0 {
		if err := w.flushGroup(w.pend); err != nil {
			return nil, err
		}
		w.pend = nil
	}
	footerJSON, err := json.Marshal(&w.footer)
	if err != nil {
		return nil, err
	}
	out := bytes.Buffer{}
	out.Write(w.body.Bytes())
	out.Write(footerJSON)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], integrity.Checksum(footerJSON))
	out.Write(crcBuf[:])
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(footerJSON)))
	out.Write(lenBuf[:])
	out.WriteString(Magic)
	return out.Bytes(), nil
}

// WriteFile is a convenience that writes one batch as a whole file.
func WriteFile(b *vector.Batch, opts WriterOptions) ([]byte, error) {
	w := NewWriter(b.Schema, opts)
	if err := w.WriteBatch(b); err != nil {
		return nil, err
	}
	return w.Finish()
}

// FooterSize returns the byte length of the footer region (footer JSON
// + trailer) for a file, so callers can model a ranged footer read.
func FooterSize(file []byte) (int64, error) {
	if len(file) < trailerLen || string(file[len(file)-4:]) != Magic {
		return 0, &integrity.Error{Source: "colfmt.footer", Detail: "not a columnar file: missing magic trailer"}
	}
	flen := binary.LittleEndian.Uint32(file[len(file)-8 : len(file)-4])
	return int64(flen) + trailerLen, nil
}

// ReadFooter parses and checksum-verifies the footer from complete
// file bytes. A truncated file, a mangled trailer, or a flipped bit
// anywhere in the footer JSON surfaces as a typed integrity error.
func ReadFooter(file []byte) (*Footer, error) {
	if len(file) < trailerLen || string(file[len(file)-4:]) != Magic {
		return nil, &integrity.Error{Source: "colfmt.footer", Detail: "missing magic trailer"}
	}
	flen := int(binary.LittleEndian.Uint32(file[len(file)-8 : len(file)-4]))
	if flen < 0 || flen+trailerLen > len(file) {
		return nil, &integrity.Error{Source: "colfmt.footer",
			Detail: fmt.Sprintf("footer length %d exceeds file size %d", flen, len(file))}
	}
	footerJSON := file[len(file)-trailerLen-flen : len(file)-trailerLen]
	want := binary.LittleEndian.Uint32(file[len(file)-trailerLen : len(file)-8])
	if got := integrity.Checksum(footerJSON); got != want {
		return nil, &integrity.Error{Source: "colfmt.footer",
			Detail: fmt.Sprintf("footer checksum mismatch: got %08x want %08x", got, want)}
	}
	var f Footer
	if err := json.Unmarshal(footerJSON, &f); err != nil {
		return nil, &integrity.Error{Source: "colfmt.footer", Detail: "bad footer JSON: " + err.Error()}
	}
	return &f, nil
}

// ReadChunk checksum-verifies and decodes one column chunk from file
// bytes. Any mismatch between the stored CRC and the bytes on hand is
// a typed integrity error naming the column, never a mis-decode.
func ReadChunk(file []byte, m ChunkMeta) (*vector.Column, error) {
	if m.Offset < 0 || m.Length < 0 || m.Offset+m.Length > int64(len(file)) {
		return nil, &integrity.Error{Source: "colfmt.chunk", Block: m.Column,
			Detail: fmt.Sprintf("chunk [%d,+%d) out of bounds of %d-byte file", m.Offset, m.Length, len(file))}
	}
	raw := file[m.Offset : m.Offset+m.Length]
	if got := integrity.Checksum(raw); got != m.CRC {
		return nil, &integrity.Error{Source: "colfmt.chunk", Block: m.Column,
			Detail: fmt.Sprintf("chunk checksum mismatch: got %08x want %08x", got, m.CRC)}
	}
	col, err := vector.DecodeColumn(raw)
	if err != nil {
		return nil, &integrity.Error{Source: "colfmt.chunk", Block: m.Column,
			Detail: "decode failed despite matching checksum: " + err.Error()}
	}
	return col, nil
}

// Verify walks the whole file — footer and every chunk CRC — without
// decoding any data. It is the scrubber's unit of work: nil means the
// bytes at rest match every embedded checksum.
func Verify(file []byte) error {
	f, err := ReadFooter(file)
	if err != nil {
		return err
	}
	for gi, rg := range f.RowGroups {
		for _, m := range rg.Chunks {
			if m.Offset < 0 || m.Length < 0 || m.Offset+m.Length > int64(len(file)) {
				return &integrity.Error{Source: "colfmt.chunk", Block: m.Column,
					Detail: fmt.Sprintf("row group %d chunk [%d,+%d) out of bounds of %d-byte file",
						gi, m.Offset, m.Length, len(file))}
			}
			if got := integrity.Checksum(file[m.Offset : m.Offset+m.Length]); got != m.CRC {
				return &integrity.Error{Source: "colfmt.chunk", Block: m.Column,
					Detail: fmt.Sprintf("row group %d chunk checksum mismatch: got %08x want %08x", gi, got, m.CRC)}
			}
		}
	}
	return nil
}
