package colfmt

import (
	"fmt"
	"testing"
	"testing/quick"

	"biglake/internal/sim"
	"biglake/internal/vector"
)

func sampleSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "country", Type: vector.String},
		vector.Field{Name: "amount", Type: vector.Float64},
	)
}

func sampleBatch(n int, seed uint64) *vector.Batch {
	r := sim.NewRNG(seed)
	countries := []string{"us", "de", "fr", "jp", "br"}
	bl := vector.NewBuilder(sampleSchema())
	for i := 0; i < n; i++ {
		bl.Append(
			vector.IntValue(int64(i)),
			vector.StringValue(countries[r.Intn(len(countries))]),
			vector.FloatValue(float64(r.Intn(10000))/100),
		)
	}
	return bl.Build()
}

func writeSample(t *testing.T, n int) []byte {
	t.Helper()
	file, err := WriteFile(sampleBatch(n, 1), WriterOptions{RowGroupRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	return file
}

func TestWriteReadRoundTrip(t *testing.T) {
	want := sampleBatch(250, 1)
	file, err := WriteFile(want, WriterOptions{RowGroupRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewVectorizedReader(file, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N {
		t.Fatalf("rows %d, want %d", got.N, want.N)
	}
	for i := 0; i < want.N; i++ {
		wr, gr := want.Row(i), got.Row(i)
		for j := range wr {
			if !wr[j].Equal(gr[j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, gr[j], wr[j])
			}
		}
	}
}

func TestFooterContents(t *testing.T) {
	file := writeSample(t, 250)
	f, err := ReadFooter(file)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rows != 250 {
		t.Fatalf("rows = %d", f.Rows)
	}
	if len(f.RowGroups) != 3 { // 100+100+50
		t.Fatalf("row groups = %d", len(f.RowGroups))
	}
	if f.RowGroups[2].Rows != 50 {
		t.Fatalf("last group rows = %d", f.RowGroups[2].Rows)
	}
	st, ok := f.ColumnStatsFor("id")
	if !ok {
		t.Fatal("no id stats")
	}
	if st.Min.ToValue().AsInt() != 0 || st.Max.ToValue().AsInt() != 249 {
		t.Fatalf("id stats = %+v", st)
	}
	if _, ok := f.ColumnStatsFor("nope"); ok {
		t.Fatal("unknown column should not have stats")
	}
}

func TestFooterSize(t *testing.T) {
	file := writeSample(t, 50)
	n, err := FooterSize(file)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 8 || n > int64(len(file)) {
		t.Fatalf("footer size = %d of %d", n, len(file))
	}
	if _, err := FooterSize([]byte("tiny")); err == nil {
		t.Fatal("non-file should error")
	}
}

func TestReadFooterRejectsCorrupt(t *testing.T) {
	if _, err := ReadFooter([]byte("not a columnar file at all")); err == nil {
		t.Fatal("bad magic should error")
	}
	file := writeSample(t, 10)
	file[len(file)-5] ^= 0xFF // corrupt footer length region
	if _, err := ReadFooter(file); err == nil {
		t.Fatal("corrupt footer should error")
	}
}

func TestProjection(t *testing.T) {
	file := writeSample(t, 120)
	r, err := NewVectorizedReader(file, []string{"country"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema.Len() != 1 || b.Schema.Fields[0].Name != "country" || b.N != 120 {
		t.Fatalf("projected = %v x %d", b.Schema, b.N)
	}
	if _, err := NewVectorizedReader(file, []string{"ghost"}, nil); err == nil {
		t.Fatal("unknown projection column should error")
	}
}

func TestPredicatePushdownResults(t *testing.T) {
	file := writeSample(t, 300)
	preds := []Predicate{{Column: "id", Op: vector.GE, Value: vector.IntValue(290)}}
	r, err := NewVectorizedReader(file, nil, preds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 10 {
		t.Fatalf("filtered rows = %d, want 10", b.N)
	}
	for i := 0; i < b.N; i++ {
		if b.Column("id").Value(i).AsInt() < 290 {
			t.Fatal("predicate violated")
		}
	}
}

func TestRowGroupSkipping(t *testing.T) {
	// id is monotonically increasing, so a selective id predicate must
	// skip all but one row group without decoding them.
	file := writeSample(t, 1000) // 10 groups of 100
	preds := []Predicate{{Column: "id", Op: vector.EQ, Value: vector.IntValue(555)}}
	r, err := NewVectorizedReader(file, nil, preds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 1 {
		t.Fatalf("rows = %d", b.N)
	}
	if r.GroupsRead != 1 || r.GroupsSkipped != 9 {
		t.Fatalf("read %d skipped %d, want 1/9", r.GroupsRead, r.GroupsSkipped)
	}
}

func TestPredicateOnUnprojectedColumn(t *testing.T) {
	file := writeSample(t, 200)
	preds := []Predicate{{Column: "id", Op: vector.LT, Value: vector.IntValue(5)}}
	r, err := NewVectorizedReader(file, []string{"country"}, preds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 5 || b.Schema.Len() != 1 {
		t.Fatalf("got %d rows schema %v", b.N, b.Schema)
	}
}

func TestRowReaderMatchesVectorized(t *testing.T) {
	file := writeSample(t, 500)
	preds := []Predicate{{Column: "country", Op: vector.EQ, Value: vector.StringValue("de")}}
	vr, err := NewVectorizedReader(file, []string{"id", "amount"}, preds)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := vr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRowReader(file, []string{"id", "amount"}, preds)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := rr.ReadAllColumnar()
	if err != nil {
		t.Fatal(err)
	}
	if vb.N != rb.N {
		t.Fatalf("vectorized %d rows, row-oriented %d", vb.N, rb.N)
	}
	for i := 0; i < vb.N; i++ {
		va, ra := vb.Row(i), rb.Row(i)
		for j := range va {
			if !va[j].Equal(ra[j]) {
				t.Fatalf("row %d col %d mismatch", i, j)
			}
		}
	}
}

func TestRowReaderUnknownColumn(t *testing.T) {
	file := writeSample(t, 10)
	if _, err := NewRowReader(file, []string{"ghost"}, nil); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestStatsCanSatisfy(t *testing.T) {
	st := ColumnStats{Min: FromValue(vector.IntValue(10)), Max: FromValue(vector.IntValue(20))}
	cases := []struct {
		op   vector.CmpOp
		val  int64
		want bool
	}{
		{vector.EQ, 15, true}, {vector.EQ, 5, false}, {vector.EQ, 25, false},
		{vector.LT, 10, false}, {vector.LT, 11, true},
		{vector.LE, 10, true}, {vector.LE, 9, false},
		{vector.GT, 20, false}, {vector.GT, 19, true},
		{vector.GE, 20, true}, {vector.GE, 21, false},
		{vector.NE, 15, true},
	}
	for _, tc := range cases {
		p := Predicate{Column: "c", Op: tc.op, Value: vector.IntValue(tc.val)}
		if got := p.StatsCanSatisfy(st); got != tc.want {
			t.Errorf("%v %d: got %v, want %v", tc.op, tc.val, got, tc.want)
		}
	}
	// NE over a constant chunk equal to the value with no nulls: skippable.
	constSt := ColumnStats{Min: FromValue(vector.IntValue(7)), Max: FromValue(vector.IntValue(7))}
	p := Predicate{Column: "c", Op: vector.NE, Value: vector.IntValue(7)}
	if p.StatsCanSatisfy(constSt) {
		t.Fatal("NE over all-equal chunk should be skippable")
	}
	// All-null chunk is skippable for any comparison.
	nullSt := ColumnStats{Nulls: 5}
	if (Predicate{Column: "c", Op: vector.EQ, Value: vector.IntValue(1)}).StatsCanSatisfy(nullSt) {
		t.Fatal("all-null chunk should be skippable")
	}
}

func TestWriterSchemaMismatch(t *testing.T) {
	w := NewWriter(sampleSchema(), WriterOptions{})
	other := vector.MustBatch(vector.NewSchema(vector.Field{Name: "x", Type: vector.Int64}),
		[]*vector.Column{vector.NewInt64Column([]int64{1})})
	if err := w.WriteBatch(other); err == nil {
		t.Fatal("schema mismatch should error")
	}
}

func TestMultipleWriteBatchCalls(t *testing.T) {
	w := NewWriter(sampleSchema(), WriterOptions{RowGroupRows: 64})
	total := 0
	for i := 0; i < 5; i++ {
		b := sampleBatch(50, uint64(i+1))
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
		total += b.N
	}
	file, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := ReadFooter(file)
	if f.Rows != int64(total) {
		t.Fatalf("rows = %d, want %d", f.Rows, total)
	}
	for _, rg := range f.RowGroups[:len(f.RowGroups)-1] {
		if rg.Rows != 64 {
			t.Fatalf("group rows = %d, want 64", rg.Rows)
		}
	}
}

func TestEncodingsChosenForLowCardinality(t *testing.T) {
	// country has 5 distinct values over many rows: chunk must be
	// encoded, making the file much smaller than the disabled-encoding
	// variant.
	b := sampleBatch(5000, 3)
	enc, err := WriteFile(b, WriterOptions{RowGroupRows: 5000})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := WriteFile(b, WriterOptions{RowGroupRows: 5000, DisableEncodings: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(plain) {
		t.Fatalf("encoded file %d >= plain file %d", len(enc), len(plain))
	}
}

func TestEmptyFile(t *testing.T) {
	w := NewWriter(sampleSchema(), WriterOptions{})
	file, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f, err := ReadFooter(file)
	if err != nil || f.Rows != 0 {
		t.Fatalf("empty footer: %v rows=%d", err, f.Rows)
	}
	r, err := NewVectorizedReader(file, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ReadAll()
	if err != nil || b.N != 0 {
		t.Fatalf("empty read: %v n=%d", err, b.N)
	}
}

func TestEvalPredicates(t *testing.T) {
	b := sampleBatch(100, 4)
	mask, err := EvalPredicates(b, []Predicate{
		{Column: "id", Op: vector.GE, Value: vector.IntValue(10)},
		{Column: "id", Op: vector.LT, Value: vector.IntValue(20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if vector.CountMask(mask) != 10 {
		t.Fatalf("matched %d, want 10", vector.CountMask(mask))
	}
	if _, err := EvalPredicates(b, []Predicate{{Column: "ghost", Op: vector.EQ, Value: vector.IntValue(1)}}); err == nil {
		t.Fatal("missing predicate column should error")
	}
}

func TestPropertyRoundTripArbitraryRowCounts(t *testing.T) {
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw % 600)
		b := sampleBatch(n, uint64(nRaw)+7)
		file, err := WriteFile(b, WriterOptions{RowGroupRows: 97})
		if err != nil {
			return false
		}
		r, err := NewVectorizedReader(file, nil, nil)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || got.N != n {
			return false
		}
		for i := 0; i < n; i += 13 {
			if got.Column("id").Value(i).AsInt() != b.Column("id").Value(i).AsInt() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPruningNeverLosesRows(t *testing.T) {
	// Any id range predicate must return exactly the rows a full scan
	// filter would — pruning is an optimization, never a semantics
	// change.
	file := writeSample(t, 730)
	r := sim.NewRNG(21)
	for trial := 0; trial < 20; trial++ {
		lo := int64(r.Intn(730))
		preds := []Predicate{{Column: "id", Op: vector.GE, Value: vector.IntValue(lo)}}
		vr, err := NewVectorizedReader(file, []string{"id"}, preds)
		if err != nil {
			t.Fatal(err)
		}
		b, err := vr.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if int64(b.N) != 730-lo {
			t.Fatalf("lo=%d got %d rows, want %d", lo, b.N, 730-lo)
		}
	}
}

func TestChunkOutOfBounds(t *testing.T) {
	file := writeSample(t, 10)
	if _, err := ReadChunk(file, ChunkMeta{Column: "x", Offset: int64(len(file)), Length: 10}); err == nil {
		t.Fatal("oob chunk should error")
	}
}

func BenchmarkVectorizedVsRowReader(b *testing.B) {
	batch := sampleBatch(20000, 5)
	file, err := WriteFile(batch, WriterOptions{RowGroupRows: 4096})
	if err != nil {
		b.Fatal(err)
	}
	preds := []Predicate{{Column: "country", Op: vector.EQ, Value: vector.StringValue("de")}}
	b.Run("vectorized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, _ := NewVectorizedReader(file, []string{"id", "amount"}, preds)
			if _, err := r.ReadAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("row_oriented", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, _ := NewRowReader(file, []string{"id", "amount"}, preds)
			if _, err := r.ReadAllColumnar(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func ExampleWriteFile() {
	bl := vector.NewBuilder(vector.NewSchema(vector.Field{Name: "id", Type: vector.Int64}))
	bl.Append(vector.IntValue(1))
	bl.Append(vector.IntValue(2))
	file, _ := WriteFile(bl.Build(), WriterOptions{})
	footer, _ := ReadFooter(file)
	fmt.Println(footer.Rows)
	// Output: 2
}
