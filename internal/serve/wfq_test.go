package serve

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"biglake/internal/sim"
)

// wfqHarness drives the admitter with closed-loop backlogged tenants
// under a deterministic seeded schedule: every tenant keeps `depth`
// submissions outstanding (resubmitting on each grant), and the
// single-threaded serve loop releases grants in FIFO order at a fixed
// virtual-time step. Returns bytes served per tenant over the run.
func wfqHarness(t *testing.T, seed uint64, tenants int, weightOf func(i int) float64, depthOf func(i int) int, grants int) []int64 {
	t.Helper()
	cfg := Config{
		MaxConcurrent: 4,
		MemoryBudget:  1 << 40,
		MaxQueue:      1 << 20,
		MaxQueueWait:  time.Hour,
	}
	tcfg := map[string]TenantConfig{}
	for i := 0; i < tenants; i++ {
		tcfg[fmt.Sprintf("t%02d", i)] = TenantConfig{Weight: weightOf(i)}
	}
	cfg.Tenants = tcfg
	adm := newAdmitter(cfg.withDefaults(), nil)

	rng := sim.NewRNG(seed)
	served := make([]int64, tenants) // bytes granted per tenant
	counts := make([]int64, tenants)
	var inService []*Grant
	now := time.Duration(0)
	total := 0

	var submit func(i int)
	submit = func(i int) {
		cost := int64(minCost) * int64(1+rng.Intn(8))
		adm.submit(fmt.Sprintf("t%02d", i), cost, now, func(g *Grant, err error) {
			if err != nil {
				t.Fatalf("tenant %d shed: %v", i, err)
			}
			served[i] += g.cost
			counts[i]++
			total++
			inService = append(inService, g)
			if total+len(inService) < grants+2*cfg.MaxConcurrent {
				// Closed loop: stay backlogged until the end of the run.
				submit(i)
			}
		})
	}
	for i := 0; i < tenants; i++ {
		for d := 0; d < depthOf(i); d++ {
			submit(i)
		}
	}
	for total < grants && len(inService) > 0 {
		g := inService[0]
		inService = inService[1:]
		now += time.Millisecond
		adm.release(g, 0, now)
	}
	if total < grants {
		t.Fatalf("served %d grants, wanted %d", total, grants)
	}
	return served
}

// TestWFQFairShareProperty is the seeded fairness property: across
// 1→64 tenants, with equal, linear, and extreme weight skews and
// skewed offered loads (some tenants queue 8x deeper than others),
// every continuously-backlogged tenant's served byte share must stay
// within 15% (relative) of its weight share, up to one max-cost
// request of discretization slack.
func TestWFQFairShareProperty(t *testing.T) {
	weightSchemes := map[string]func(i int) float64{
		"equal":   func(i int) float64 { return 1 },
		"linear":  func(i int) float64 { return float64(i%4 + 1) },
		"extreme": func(i int) float64 { return []float64{1, 8}[i%2] },
	}
	depthSchemes := map[string]func(i int) int{
		"uniform": func(i int) int { return 2 },
		"skewed":  func(i int) int { return []int{1, 1, 1, 8}[i%4] },
	}
	for _, tenants := range []int{1, 2, 4, 8, 16, 64} {
		for wname, weightOf := range weightSchemes {
			for dname, depthOf := range depthSchemes {
				name := fmt.Sprintf("n%02d_%s_%s", tenants, wname, dname)
				t.Run(name, func(t *testing.T) {
					grants := 250 * tenants
					served := wfqHarness(t, 0xb161a4e+uint64(tenants), tenants, weightOf, depthOf, grants)
					var totalBytes int64
					var totalWeight float64
					for i := 0; i < tenants; i++ {
						totalBytes += served[i]
						totalWeight += weightOf(i)
					}
					// One max-cost request of slack: WFQ bounds per-flow
					// lag by the largest indivisible unit of work.
					slack := float64(8 * minCost)
					for i := 0; i < tenants; i++ {
						want := float64(totalBytes) * weightOf(i) / totalWeight
						got := float64(served[i])
						lo, hi := 0.85*want-slack, 1.15*want+slack
						if got < lo || got > hi {
							t.Errorf("tenant %d (w=%.0f): served %.0f bytes, want %.0f ± 15%% (+%0.f slack)",
								i, weightOf(i), got, want, slack)
						}
					}
				})
			}
		}
	}
}

// TestWFQDeterministic reruns one skewed schedule and requires
// byte-identical per-tenant service.
func TestWFQDeterministic(t *testing.T) {
	weight := func(i int) float64 { return float64(i%3 + 1) }
	depth := func(i int) int { return []int{1, 4}[i%2] }
	a := wfqHarness(t, 42, 16, weight, depth, 2000)
	b := wfqHarness(t, 42, 16, weight, depth, 2000)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
}

// TestWFQIdleFlowGainsNoCredit checks the virtual-time reset: a tenant
// that sat idle while others drained cannot burst past its fair share
// when it returns.
func TestWFQIdleFlowGainsNoCredit(t *testing.T) {
	q := newWFQ()
	mk := func(tenant string, seq int64, cost int64) *ticket {
		return &ticket{tenant: tenant, seq: seq, cost: cost}
	}
	// Tenant a runs alone for a while, advancing virtual time.
	for i := int64(0); i < 10; i++ {
		q.push(mk("a", i, 100), 1)
		q.pop()
	}
	// Tenant b arrives late: its first ticket must start at the
	// current virtual time, not at zero — so it does not preempt a's
	// equally-weighted next ticket by more than one quantum.
	q.push(mk("b", 100, 100), 1)
	q.push(mk("a", 101, 100), 1)
	first := q.pop()
	second := q.pop()
	if first.tenant == "b" && second.tenant == "b" {
		t.Fatal("idle tenant burst ahead with saved credit")
	}
	// And strictly: b's finish tag must be >= the queue's virtual time
	// baseline, i.e. roughly tied with a's, not far earlier.
	if first.vfinish < q.vtime-200 {
		t.Fatalf("stale finish tag %f vs vtime %f", first.vfinish, q.vtime)
	}
}
