// Package serve is the multi-tenant query service front end: long-
// lived sessions with an explicit parse → prepare → execute
// lifecycle, bounded-page result streaming, cooperative cancellation
// wired into engine retry budgets, and one open transaction session
// per principal. Every execution passes through admission control —
// memory-budgeted, concurrency-capped, weighted-fair across tenants —
// which sheds load with typed "overloaded, retry after" errors
// instead of collapsing, and accounts per-tenant quota and egress
// through the obs metrics registry.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"biglake/internal/engine"
	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/security"
	"biglake/internal/sqlparse"
	"biglake/internal/systables"
	"biglake/internal/txn"
	"biglake/internal/vector"
)

// Serve-layer sentinel errors.
var (
	// ErrServerClosed rejects work on a shut-down server.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrSessionClosed rejects work on a closed session.
	ErrSessionClosed = errors.New("serve: session closed")
	// ErrTxnOpen rejects BEGIN while the principal already holds an
	// open transaction session (one per principal).
	ErrTxnOpen = errors.New("serve: principal already has an open transaction")
	// ErrNoTxn rejects COMMIT/ROLLBACK outside a transaction.
	ErrNoTxn = errors.New("serve: no open transaction")
)

// defaultTableCost is the admission cost charged for a referenced
// table with no metadata (external tables, empty tables).
const defaultTableCost = 256 << 10

// Server fronts one engine (and optionally one transaction manager)
// with sessions and admission control. Metrics flow into the engine's
// obs registry when one is installed.
type Server struct {
	eng  *engine.Engine
	txns *txn.Manager
	cfg  Config
	adm  *admitter
	c    serveCounters

	mu       sync.Mutex
	closed   bool
	sessSeq  int64
	sessions int
	sessMap  map[string]*Session
	openTxns map[security.Principal]*txn.Session
}

// New builds a server over eng. txns may be nil: BEGIN then fails
// with the engine's no-transaction error.
func New(eng *engine.Engine, txns *txn.Manager, cfg Config) *Server {
	cfg = cfg.withDefaults()
	srv := &Server{
		eng:      eng,
		txns:     txns,
		cfg:      cfg,
		adm:      newAdmitter(cfg, eng.Obs),
		c:        resolveServeCounters(eng.Obs),
		sessMap:  map[string]*Session{},
		openTxns: map[security.Principal]*txn.Session{},
	}
	// The server is the system-table provider's session source and SLO
	// configurator: system.sessions enumerates open sessions and
	// system.slo reports against these objectives.
	eng.Sys.ConfigureSLOs(cfg.SLOs)
	eng.Sys.SetSessions(srv.sessionRows)
	return srv
}

// sessionRows snapshots the open sessions for system.sessions. Session
// pointers are copied out under the server mutex first; each session's
// counters are then read under its own mutex (the same srv.mu → s.mu
// order beginTxn-free paths use, never the reverse).
func (s *Server) sessionRows() []systables.SessionRow {
	s.mu.Lock()
	open := make([]*Session, 0, len(s.sessMap))
	for _, sess := range s.sessMap {
		open = append(open, sess)
	}
	s.mu.Unlock()
	rows := make([]systables.SessionRow, 0, len(open))
	for _, sess := range open {
		sess.mu.Lock()
		rows = append(rows, systables.SessionRow{
			ID:        sess.ID,
			Principal: string(sess.Principal),
			Inflight:  int64(len(sess.inflight)),
			Queries:   sess.qseq,
			TxnOpen:   sess.txn != nil && sess.txn.Active(),
		})
		sess.mu.Unlock()
	}
	return rows
}

// Usage returns the per-tenant accounting snapshot.
func (s *Server) Usage() map[string]TenantUsage { return s.adm.usage() }

// Open starts a session for principal. name, when non-empty, prefixes
// the session ID (and thus every query ID) for stable tracing.
func (s *Server) Open(principal security.Principal, name string) (*Session, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	s.sessSeq++
	seq := s.sessSeq
	s.sessions++
	n := s.sessions
	if name == "" {
		name = "sess"
	}
	sess := &Session{
		srv:       s,
		ID:        fmt.Sprintf("%s-%d", name, seq),
		Principal: principal,
		inflight:  map[string]*engine.QueryContext{},
	}
	s.sessMap[sess.ID] = sess
	s.mu.Unlock()
	s.c.sessions.Set(int64(n))
	return sess, nil
}

// Close shuts the server: existing sessions keep draining, new Opens
// fail.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Session is one client's stateful connection: a query-ID sequence,
// at most one open transaction, and the set of in-flight queries that
// Cancel kills.
type Session struct {
	srv       *Server
	ID        string
	Principal security.Principal

	mu       sync.Mutex
	closed   bool
	qseq     int64
	shedSeq  int64
	txn      *txn.Session
	inflight map[string]*engine.QueryContext
}

// Parse runs phase one of the lifecycle: SQL text to AST. No engine
// or admission resources are touched.
func (s *Session) Parse(sql string) (*Prepared, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrSessionClosed
	}
	stmt, _, err := s.srv.eng.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Prepared{sess: s, sql: sql, stmt: stmt, kind: sqlparse.Kind(stmt)}, nil
}

// Query is the convenience path: parse, prepare, and execute in one
// blocking call.
func (s *Session) Query(sql string) (*Cursor, error) {
	p, err := s.Parse(sql)
	if err != nil {
		return nil, err
	}
	if err := p.Prepare(); err != nil {
		return nil, err
	}
	return p.Execute()
}

// Cancel cooperatively kills every in-flight query on the session:
// each one's retry budget collapses, so it unwinds at its next
// object-store operation or page fetch.
func (s *Session) Cancel() {
	s.mu.Lock()
	ctxs := make([]*engine.QueryContext, 0, len(s.inflight))
	for _, ctx := range s.inflight {
		ctxs = append(ctxs, ctx)
	}
	s.mu.Unlock()
	for _, ctx := range ctxs {
		s.srv.c.canceled.Add(1)
		ctx.Cancel()
	}
}

// Close cancels in-flight work, rolls back any open transaction, and
// retires the session.
func (s *Session) Close() error {
	s.Cancel()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	open := s.txn
	s.txn = nil
	s.mu.Unlock()
	var err error
	if open != nil {
		s.srv.unregisterTxn(s.Principal, open)
		if open.Active() {
			err = open.Rollback()
		}
	}
	s.srv.mu.Lock()
	s.srv.sessions--
	n := s.srv.sessions
	delete(s.srv.sessMap, s.ID)
	s.srv.mu.Unlock()
	s.srv.c.sessions.Set(int64(n))
	return err
}

// TxnOpen reports whether the session holds an open transaction.
func (s *Session) TxnOpen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txn != nil && s.txn.Active()
}

func (s *Session) trackInflight(qid string, ctx *engine.QueryContext) {
	s.mu.Lock()
	s.inflight[qid] = ctx
	s.mu.Unlock()
}

func (s *Session) removeInflight(qid string) {
	s.mu.Lock()
	delete(s.inflight, qid)
	s.mu.Unlock()
}

// Prepared is phase two's output: a parsed statement with resolved
// table references and an admission cost estimate.
type Prepared struct {
	sess *Session
	sql  string
	stmt sqlparse.Statement
	kind string

	prepared bool
	tables   []string
	cost     int64
	deadline time.Duration
	qid      string // optional caller-pinned query ID
}

// Kind returns the statement class ("select", "insert", ...).
func (p *Prepared) Kind() string { return p.kind }

// Tables returns the referenced tables resolved by Prepare.
func (p *Prepared) Tables() []string { return p.tables }

// Cost returns the admission cost estimate in bytes.
func (p *Prepared) Cost() int64 { return p.cost }

// SetDeadline overrides the server's per-query deadline for this
// statement only.
func (p *Prepared) SetDeadline(d time.Duration) { p.deadline = d }

// SetQueryID pins the query ID (and therefore the retry budget's
// jitter seed) instead of using the session sequence — the
// differential oracle pins it so served and direct execution retry
// identically.
func (p *Prepared) SetQueryID(id string) { p.qid = id }

// Prepare resolves referenced tables and estimates the admission cost
// as the statement's metadata-visible working set: the summed file
// bytes of each referenced table's latest snapshot, floored per table
// for metadata-less (external or empty) tables.
func (p *Prepared) Prepare() error {
	if p.prepared {
		return nil
	}
	s := p.sess
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrSessionClosed
	}
	p.tables = sqlparse.ReferencedTables(p.stmt)
	cost := int64(minCost)
	for _, t := range p.tables {
		var bytes int64
		if files, _, err := s.srv.eng.Log.Snapshot(t, -1); err == nil && len(files) > 0 {
			for i := range files {
				bytes += files[i].Size
			}
		}
		if bytes == 0 {
			bytes = defaultTableCost
		}
		cost += bytes
	}
	p.cost = cost
	p.prepared = true
	return nil
}

// Execute is the blocking phase three: admission (queueing if the
// server is busy), then execution, returning a paged cursor. Overload
// surfaces as a typed resilience.OverloadError rather than queueing
// without bound.
func (p *Prepared) Execute() (*Cursor, error) {
	type outcome struct {
		cur *Cursor
		err error
	}
	ch := make(chan outcome, 1)
	p.ExecuteAt(p.sess.srv.eng.Clock.Now(), func(_ time.Duration, run func() (*Cursor, error), err error) {
		if err != nil {
			ch <- outcome{nil, err}
			return
		}
		cur, rerr := run()
		ch <- outcome{cur, rerr}
	})
	o := <-ch
	return o.cur, o.err
}

// ExecuteAt is the event-driven phase three used by the deterministic
// load harness: the statement is submitted to admission at (virtual)
// time now, and deliver is invoked exactly once — inline for an
// immediate grant or typed rejection, later for a queued ticket —
// with either an error or the grant time plus a run closure that
// performs the execution and returns its cursor.
func (p *Prepared) ExecuteAt(now time.Duration, deliver func(grantedAt time.Duration, run func() (*Cursor, error), err error)) {
	if !p.prepared {
		if err := p.Prepare(); err != nil {
			deliver(0, nil, err)
			return
		}
	}
	p.sess.srv.adm.submit(string(p.sess.Principal), p.cost, now, func(g *Grant, err error) {
		if err != nil {
			p.sess.recordShed(p, now, err)
			deliver(0, nil, err)
			return
		}
		deliver(g.grantedAt, func() (*Cursor, error) { return p.sess.runStatement(p, g) }, nil)
	})
}

// recordShed lands an admission rejection in system.jobs: the
// statement never ran, so the record carries a synthetic query ID
// (outside the q-sequence that seeds retry budgets) and zero resource
// counts.
func (s *Session) recordShed(p *Prepared, now time.Duration, cause error) {
	sys := s.srv.eng.Sys
	if !sys.Enabled() {
		return
	}
	s.mu.Lock()
	s.shedSeq++
	qid := fmt.Sprintf("%s-shed%03d", s.ID, s.shedSeq)
	s.mu.Unlock()
	sys.RecordJob(systables.JobRecord{
		QueryID:    qid,
		Principal:  string(s.Principal),
		SQL:        p.sql,
		Kind:       p.kind,
		Class:      engine.QueryClass(p.stmt),
		State:      systables.StateShed,
		ErrorClass: classifyServeError(cause),
		Start:      now,
	})
}

// classifyServeError extends the engine's error classification with
// the serve- and txn-layer causes this package can see.
func classifyServeError(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrQuotaExceeded):
		return "quota"
	case errors.Is(err, txn.ErrConflict):
		return "txn_conflict"
	}
	return systables.ClassifyError(err)
}

// runStatement executes an admitted statement. The grant is handed to
// the cursor on success and released here on every error path.
func (s *Session) runStatement(p *Prepared, g *Grant) (cur *Cursor, err error) {
	srv := s.srv
	defer func() {
		if err != nil {
			// Zero service time on errors: failed admissions should not
			// drag the retry-after EWMA toward zero or infinity.
			srv.adm.release(g, 0, g.grantedAt)
		}
	}()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	s.qseq++
	qid := p.qid
	if qid == "" {
		qid = fmt.Sprintf("%s-q%03d", s.ID, s.qseq)
	}
	open := s.txn
	s.mu.Unlock()

	wallStart := time.Now()
	ctx := engine.NewContext(s.Principal, qid)
	// The serve layer owns job recording: the statement lands in
	// system.jobs exactly once, at cursor close (or on the error paths
	// below), with admission wait and egress attached — not at engine
	// return, where the stream outcome is unknown.
	ctx.SkipJobRecord = true
	ctx.SQLText = p.sql
	// Seed the retry budget exactly as engine.Execute would, but
	// before execution starts, so Cancel from another goroutine works
	// and served execution retries identically to direct execution
	// (the differential oracle diffs the two).
	ctx.Budget = resilience.NewBudget(srv.eng.Clock, engine.QueryRetryBudget, resilience.Seed64(qid))
	deadline := srv.cfg.Deadline
	if p.deadline > 0 {
		deadline = p.deadline
	}
	if deadline > 0 {
		ctx.Deadline = deadline
		ctx.Budget.SetDeadline(srv.eng.Clock.Now() + deadline)
	}

	var tr *obs.Trace
	if srv.eng.Tracer != nil {
		tr = srv.eng.Tracer.Start(qid, srv.eng.Clock)
		root := tr.Root()
		root.SetStr("tenant", string(s.Principal))
		root.SetStr("kind", p.kind)
		adm := root.Child("admission")
		adm.SetInt("cost_bytes", g.cost)
		adm.SetInt("queue_wait_us", g.queuedFor.Microseconds())
		adm.End()
		ctx.Trace = tr
		ctx.Span = root
	}

	s.trackInflight(qid, ctx)
	var res *engine.Result
	if open != nil {
		res, err = open.ExecStmt(ctx, p.stmt)
		if !open.Active() {
			// COMMIT, ROLLBACK, or an abort closed the transaction.
			s.clearTxn(open)
		}
	} else {
		switch p.stmt.(type) {
		case *sqlparse.BeginStmt:
			res, err = s.beginTxn(ctx, qid)
		case *sqlparse.CommitStmt, *sqlparse.RollbackStmt:
			err = ErrNoTxn
		default:
			res, err = srv.eng.Execute(ctx, p.stmt)
		}
	}
	if tr != nil {
		tr.Finish()
	}
	job := systables.JobRecord{
		QueryID:       qid,
		Principal:     string(s.Principal),
		SQL:           p.sql,
		Kind:          p.kind,
		Class:         engine.QueryClass(p.stmt),
		State:         systables.StateDone,
		AdmissionWait: g.queuedFor,
		Start:         ctx.Stats.SimStart,
		ExecSim:       ctx.Stats.SimElapsed,
		RowsScanned:   ctx.Stats.RowsScanned,
		BytesScanned:  ctx.Stats.BytesScanned,
		CacheHits:     ctx.Stats.CacheHits,
		QuarantineSkips: ctx.Stats.QuarantineSkips,
	}
	if err != nil {
		s.removeInflight(qid)
		job.ErrorClass = classifyServeError(err)
		job.State = systables.StateFailed
		if job.ErrorClass == "cancelled" {
			job.State = systables.StateCancelled
		}
		if job.ErrorClass == "txn_conflict" {
			job.AbortCause = err.Error()
		}
		job.Wall = time.Since(wallStart)
		srv.eng.Sys.RecordJob(job)
		return nil, err
	}
	batch := res.Batch
	if batch == nil {
		batch = vector.EmptyBatch(vector.Schema{})
	}
	// Cursors outlive the query: pages stream to the client long after
	// the engine has recycled the query's arena. The engine detaches
	// its own results, but the session boundary owns the lifetime
	// guarantee, so enforce it here too.
	batch = vector.DetachBatch(batch)
	job.ExecSim = res.Stats.SimElapsed
	job.Start = res.Stats.SimStart
	return &Cursor{
		sess:      s,
		ctx:       ctx,
		grant:     g,
		qid:       qid,
		batch:     batch,
		page:      srv.cfg.PageRows,
		stats:     res.Stats,
		job:       job,
		wallStart: wallStart,
	}, nil
}

// beginTxn opens the principal's transaction session, enforcing one
// open transaction per principal across all sessions.
func (s *Session) beginTxn(ctx *engine.QueryContext, qid string) (*engine.Result, error) {
	srv := s.srv
	if srv.txns == nil {
		// No transaction manager installed: surface the engine's error.
		return srv.eng.Execute(ctx, &sqlparse.BeginStmt{})
	}
	srv.mu.Lock()
	if _, dup := srv.openTxns[s.Principal]; dup {
		srv.mu.Unlock()
		return nil, ErrTxnOpen
	}
	ts := srv.txns.Begin(s.Principal, qid)
	srv.openTxns[s.Principal] = ts
	n := len(srv.openTxns)
	srv.mu.Unlock()
	s.mu.Lock()
	s.txn = ts
	s.mu.Unlock()
	srv.c.txnOpen.Set(int64(n))
	out := vector.MustBatch(
		vector.NewSchema(vector.Field{Name: "txn_id", Type: vector.String}),
		[]*vector.Column{vector.NewStringColumn([]string{qid})})
	return &engine.Result{Batch: out}, nil
}

func (s *Session) clearTxn(ts *txn.Session) {
	s.mu.Lock()
	if s.txn == ts {
		s.txn = nil
	}
	s.mu.Unlock()
	s.srv.unregisterTxn(s.Principal, ts)
}

func (srv *Server) unregisterTxn(p security.Principal, ts *txn.Session) {
	srv.mu.Lock()
	if srv.openTxns[p] == ts {
		delete(srv.openTxns, p)
	}
	n := len(srv.openTxns)
	srv.mu.Unlock()
	srv.c.txnOpen.Set(int64(n))
}

// Cursor streams one query's result in bounded pages. The admission
// grant is held until Close (or CloseAt), so capacity accounting
// covers result delivery, not just execution.
type Cursor struct {
	sess  *Session
	ctx   *engine.QueryContext
	grant *Grant
	qid   string
	batch *vector.Batch
	page  int
	stats engine.ExecStats

	// job is the statement's pre-filled system.jobs record; CloseAt
	// finalizes it (egress, rows delivered, wall time, stream outcome)
	// and hands it to the provider exactly once.
	job       systables.JobRecord
	wallStart time.Time

	mu        sync.Mutex
	off       int
	sentFirst bool
	closed    bool
	egress    int64
	failErr   error
}

// Stats returns the execution stats recorded when the query ran.
func (c *Cursor) Stats() engine.ExecStats { return c.stats }

// Egress returns the result bytes streamed so far.
func (c *Cursor) Egress() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.egress
}

// Next returns the next page of at most PageRows rows. The first page
// is always returned (possibly with zero rows) so the schema reaches
// the client; after exhaustion Next returns (nil, nil). A canceled or
// past-deadline query fails here, releasing its admission hold.
func (c *Cursor) Next() (*vector.Batch, error) {
	c.mu.Lock()
	if c.closed || (c.sentFirst && c.off >= c.batch.N) {
		c.mu.Unlock()
		return nil, nil
	}
	if err := c.ctx.Budget.CheckDeadline(c.sess.srv.eng.Clock); err != nil {
		c.failErr = err
		c.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("serve: result stream killed: %w", err)
	}
	n := c.batch.N - c.off
	if n > c.page {
		n = c.page
	}
	pg := pageOf(c.batch, c.off, n)
	c.off += n
	c.sentFirst = true
	c.egress += pageBytes(pg)
	c.mu.Unlock()
	c.sess.srv.c.pages.Add(1)
	return pg, nil
}

// All drains the cursor, reassembling the pages into one batch, and
// closes it.
func (c *Cursor) All() (*vector.Batch, error) {
	var pages []*vector.Batch
	for {
		pg, err := c.Next()
		if err != nil {
			return nil, err
		}
		if pg == nil {
			break
		}
		pages = append(pages, pg)
	}
	c.Close()
	return concatPages(pages)
}

// Cancel cooperatively kills the query and its stream: in-flight
// engine work fails at its next budget check and the next Next
// returns the cancellation error.
func (c *Cursor) Cancel() {
	c.sess.srv.c.canceled.Add(1)
	c.ctx.Cancel()
}

// Close releases the cursor's admission hold and charges its egress
// to the tenant. Idempotent.
func (c *Cursor) Close() { c.CloseAt(c.sess.srv.eng.Clock.Now()) }

// CloseAt is Close with a caller-supplied release time — the
// deterministic load harness passes its virtual event-loop time so
// queue drains and service-time accounting stay on one time base.
func (c *Cursor) CloseAt(now time.Duration) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	egress := c.egress
	rows := int64(c.off)
	failErr := c.failErr
	c.mu.Unlock()
	c.sess.removeInflight(c.qid)
	c.sess.srv.adm.release(c.grant, egress, now)

	// Finalize the job record now that the stream outcome is known.
	// Recording happens after every lock above is released, and the
	// provider copies under its own locks only, so a concurrent scan of
	// system.jobs (even from this very session) cannot deadlock.
	job := c.job
	job.RowsReturned = rows
	job.BytesReturned = egress
	job.Wall = time.Since(c.wallStart)
	if failErr != nil {
		job.ErrorClass = classifyServeError(failErr)
		job.State = systables.StateFailed
		if job.ErrorClass == "cancelled" {
			job.State = systables.StateCancelled
		}
	}
	c.sess.srv.eng.Sys.RecordJob(job)
}

// pageOf slices rows [off, off+n) of b into a plain-encoded page.
func pageOf(b *vector.Batch, off, n int) *vector.Batch {
	if off == 0 && n >= b.N {
		return b
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = off + i
	}
	cols := make([]*vector.Column, len(b.Cols))
	for i, col := range b.Cols {
		cols[i] = vector.Gather(col, idx)
	}
	return &vector.Batch{Schema: b.Schema, Cols: cols, N: n}
}

// pageBytes estimates a page's wire size for egress accounting — same
// shape as the engine's scan-cache estimator.
func pageBytes(b *vector.Batch) int64 {
	var n int64
	for _, c := range b.Cols {
		n += int64(len(c.Ints))*8 + int64(len(c.Floats))*8 + int64(len(c.Bools)) +
			int64(len(c.Nulls)) + int64(len(c.Codes))*4 + int64(len(c.Runs))*8
		for _, s := range c.Strs {
			n += int64(len(s)) + 16
		}
	}
	return n
}

// concatPages reassembles pages into one batch (used by All and the
// serve-path oracle diff). Multi-page streams are always plain-encoded
// (every page went through Gather); a single page may carry the
// original encoding and is returned as-is.
func concatPages(pages []*vector.Batch) (*vector.Batch, error) {
	if len(pages) == 0 {
		return vector.EmptyBatch(vector.Schema{}), nil
	}
	if len(pages) == 1 {
		return pages[0], nil
	}
	first := pages[0]
	total := 0
	for _, p := range pages {
		total += p.N
	}
	cols := make([]*vector.Column, len(first.Cols))
	for ci := range first.Cols {
		t := first.Cols[ci].Type
		out := &vector.Column{Type: t, Len: total, Enc: vector.Plain}
		var nulls []bool
		row := 0
		for _, p := range pages {
			col := p.Cols[ci]
			if col.Enc != vector.Plain {
				return nil, fmt.Errorf("serve: unexpected non-plain column in page %d", row)
			}
			for i := 0; i < p.N; i++ {
				if col.Nulls != nil && col.Nulls[i] {
					if nulls == nil {
						nulls = make([]bool, total)
					}
					nulls[row+i] = true
				}
			}
			switch t {
			case vector.Int64, vector.Timestamp:
				out.Ints = append(out.Ints, col.Ints...)
			case vector.Float64:
				out.Floats = append(out.Floats, col.Floats...)
			case vector.Bool:
				out.Bools = append(out.Bools, col.Bools...)
			case vector.String, vector.Bytes:
				out.Strs = append(out.Strs, col.Strs...)
			}
			row += p.N
		}
		out.Nulls = nulls
		cols[ci] = out
	}
	return &vector.Batch{Schema: first.Schema, Cols: cols, N: total}, nil
}

// Clock returns the server's simulated time so harnesses share its
// time base.
func (s *Server) Clock() time.Duration { return s.eng.Clock.Now() }
