package serve

// wfq is a virtual-time weighted fair queue over admission tickets
// (self-clocked fair queuing). Each tenant is a flow with a weight; a
// queued ticket is stamped with a virtual finish tag
//
//	start  = max(queue.vtime, flow.lastFinish)
//	finish = start + cost/weight
//
// and the queue always releases the smallest finish tag, ties broken
// by arrival order. Backlogged tenants therefore drain estimated
// bytes in proportion to their weights, while a flow that went idle
// rejoins at the current virtual time instead of cashing in credit
// saved while it was away.
type wfq struct {
	items []*ticket // min-heap on (vfinish, seq)
	flows map[string]*wfqFlow
	vtime float64
}

type wfqFlow struct {
	lastFinish float64
	queued     int
}

func newWFQ() *wfq { return &wfq{flows: map[string]*wfqFlow{}} }

func (q *wfq) len() int { return len(q.items) }

// push stamps the ticket's finish tag under the flow's weight and
// inserts it.
func (q *wfq) push(t *ticket, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	f := q.flows[t.tenant]
	if f == nil {
		f = &wfqFlow{}
		q.flows[t.tenant] = f
	}
	start := q.vtime
	if f.lastFinish > start {
		start = f.lastFinish
	}
	t.vfinish = start + float64(t.cost)/weight
	f.lastFinish = t.vfinish
	f.queued++
	q.items = append(q.items, t)
	q.up(len(q.items) - 1)
}

// peek returns the earliest-finishing ticket without removing it.
func (q *wfq) peek() *ticket {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// pop removes and returns the earliest-finishing ticket, advancing
// virtual time to its finish tag.
func (q *wfq) pop() *ticket {
	t := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = nil
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	if t.vfinish > q.vtime {
		q.vtime = t.vfinish
	}
	if f := q.flows[t.tenant]; f != nil {
		f.queued--
		// An idle flow's lastFinish is only history; drop the entry so
		// tenant churn cannot grow the map without bound. The max() in
		// push restores the same behaviour when the flow returns.
		if f.queued == 0 && f.lastFinish <= q.vtime {
			delete(q.flows, t.tenant)
		}
	}
	return t
}

func (q *wfq) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.vfinish != b.vfinish {
		return a.vfinish < b.vfinish
	}
	return a.seq < b.seq
}

func (q *wfq) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *wfq) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && q.less(l, least) {
			least = l
		}
		if r < n && q.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		q.items[i], q.items[least] = q.items[least], q.items[i]
		i = least
	}
}
