package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"biglake/internal/engine"
	"biglake/internal/resilience"
	"biglake/internal/wal"
)

// gcConverged runs orphan GC until it deletes nothing, returning how
// many objects the first pass reclaimed; a second pass must always
// come back empty.
func gcConverged(t *testing.T, ev *env) int {
	t.Helper()
	rep, err := wal.GCOrphans(ev.store, ev.cred, "data-bucket", []string{"blmt/"}, ev.log)
	if err != nil {
		t.Fatal(err)
	}
	again, err := wal.GCOrphans(ev.store, ev.cred, "data-bucket", []string{"blmt/"}, ev.log)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Deleted) != 0 {
		t.Fatalf("GC did not converge: second pass deleted %v", again.Deleted)
	}
	return len(rep.Deleted)
}

// TestCancelMidResultStream kills a query between pages: the stream
// fails with the typed cancellation error, the admission hold is
// released, and nothing leaks.
func TestCancelMidResultStream(t *testing.T) {
	ev := newEnv(t, Config{PageRows: 2})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 10)
	sess := ev.open(t, adminP)
	defer sess.Close()

	cur, err := sess.Query("SELECT id, v FROM ds.t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	cur.Cancel()
	if _, err := cur.Next(); !errors.Is(err, resilience.ErrCanceled) {
		t.Fatalf("post-cancel Next: %v, want ErrCanceled", err)
	}
	// The failed Next released the admission hold.
	if running, mem, queued := ev.admState(); running != 0 || mem != 0 || queued != 0 {
		t.Fatalf("leaked admission state: running=%d mem=%d queued=%d", running, mem, queued)
	}
	if got := ev.eng.Obs.Get("serve.canceled"); got != 1 {
		t.Fatalf("serve.canceled = %d", got)
	}
	// A canceled SELECT wrote nothing: zero orphans.
	if n := gcConverged(t, ev); n != 0 {
		t.Fatalf("mid-stream cancel left %d orphans", n)
	}
	// The session stays usable.
	cur2, err := sess.Query("SELECT id FROM ds.t")
	if err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
	if got, err := cur2.All(); err != nil || got.N != 10 {
		t.Fatalf("after cancel: n=%v err=%v", got, err)
	}
}

// TestSessionCancelKillsInflightStream covers Session.Cancel: every
// in-flight query on the session dies at its next page fetch.
func TestSessionCancelKillsInflightStream(t *testing.T) {
	ev := newEnv(t, Config{PageRows: 2})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 8)
	sess := ev.open(t, adminP)
	defer sess.Close()

	cur, err := sess.Query("SELECT id FROM ds.t")
	if err != nil {
		t.Fatal(err)
	}
	sess.Cancel()
	if _, err := cur.Next(); !errors.Is(err, resilience.ErrCanceled) {
		t.Fatalf("Next after session cancel: %v", err)
	}
	if running, _, _ := ev.admState(); running != 0 {
		t.Fatalf("running = %d after cancel", running)
	}
}

// TestKillMidCommit aborts transactions at several points inside the
// commit protocol by bounding COMMIT with deadlines that expire
// between its journal/data/seal writes. Every abort must leave: a
// closed txn session, a released admission budget, an unchanged
// table, and an object store that orphan GC fully reclaims (second
// pass empty).
func TestKillMidCommit(t *testing.T) {
	deadlines := []time.Duration{
		1 * time.Microsecond, // before any durable write
		30 * time.Millisecond,
		60 * time.Millisecond,
		90 * time.Millisecond,
		120 * time.Millisecond,
	}
	aborts := 0
	for _, d := range deadlines {
		t.Run(d.String(), func(t *testing.T) {
			ev := newEnv(t, Config{})
			ev.createTable(t, "a")
			ev.createTable(t, "b")
			ev.seedRows(t, "a", 3)
			ev.seedRows(t, "b", 3)
			sess := ev.open(t, adminP)
			defer sess.Close()

			mustRun := func(q string) {
				t.Helper()
				cur, err := sess.Query(q)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				cur.Close()
			}
			mustRun("BEGIN")
			mustRun("INSERT INTO ds.a VALUES (100, 1), (101, 2)")
			mustRun("INSERT INTO ds.b VALUES (200, 3)")

			p, err := sess.Parse("COMMIT")
			if err != nil {
				t.Fatal(err)
			}
			p.SetDeadline(d)
			cur, err := p.Execute()
			if err == nil {
				// Deadline outlasted the whole commit: fine, but then the
				// commit must be complete and visible.
				cur.Close()
				assertCount(t, ev, "a", 5)
				if n := gcConverged(t, ev); n != 0 {
					t.Fatalf("successful commit left %d orphans", n)
				}
				return
			}
			aborts++
			if resilience.Classify(err) != resilience.Deadline {
				t.Fatalf("kill error class = %v (%v), want deadline", resilience.Classify(err), err)
			}
			// Admission budget released by the error path.
			if running, mem, _ := ev.admState(); running != 0 || mem != 0 {
				t.Fatalf("leaked admission: running=%d mem=%d", running, mem)
			}
			// The txn session is closed and the principal can BEGIN anew.
			if sess.TxnOpen() {
				t.Fatal("txn still open after mid-commit kill")
			}
			mustRun("BEGIN")
			mustRun("ROLLBACK")
			// The table is unchanged...
			assertCount(t, ev, "a", 3)
			assertCount(t, ev, "b", 3)
			// ...and whatever debris the partial commit wrote is fully
			// reclaimed: GC converges with nothing left behind.
			gcConverged(t, ev)
			assertCount(t, ev, "a", 3)
			assertCount(t, ev, "b", 3)
		})
	}
	if aborts < 2 {
		t.Fatalf("only %d/%d deadlines aborted mid-commit; sweep needs retuning", aborts, len(deadlines))
	}
}

func assertCount(t *testing.T, ev *env, table string, want int) {
	t.Helper()
	res, err := ev.eng.Query(engine.NewContext(adminP, fmt.Sprintf("count-%s-%d", table, ev.clock.Now())),
		"SELECT id FROM ds."+table)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.N != want {
		t.Fatalf("ds.%s rows = %d, want %d", table, res.Batch.N, want)
	}
}

// TestConcurrentCancelDuringCommit cancels from another goroutine
// while COMMIT runs. Whatever point the cancellation lands at, the
// invariants hold: either the commit completed atomically or it
// aborted with zero surviving orphans.
func TestConcurrentCancelDuringCommit(t *testing.T) {
	ev := newEnv(t, Config{})
	ev.createTable(t, "a")
	ev.seedRows(t, "a", 3)
	sess := ev.open(t, adminP)
	defer sess.Close()

	mustRun := func(q string) {
		t.Helper()
		cur, err := sess.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		cur.Close()
	}
	mustRun("BEGIN")
	mustRun("INSERT INTO ds.a VALUES (100, 1)")

	p, err := sess.Parse("COMMIT")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		cur, err := p.Execute()
		if err == nil {
			cur.Close()
		}
		done <- err
	}()
	sess.Cancel() // races the commit on purpose
	err = <-done

	if sess.TxnOpen() {
		t.Fatal("txn open after commit/cancel race")
	}
	if running, mem, _ := ev.admState(); running != 0 || mem != 0 {
		t.Fatalf("leaked admission: running=%d mem=%d", running, mem)
	}
	gcConverged(t, ev)
	if err == nil {
		assertCount(t, ev, "a", 4)
	} else {
		if resilience.Classify(err) != resilience.Deadline {
			t.Fatalf("cancel surfaced as %v (%v)", resilience.Classify(err), err)
		}
		assertCount(t, ev, "a", 3)
	}
}
