package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"biglake/internal/systables"
)

func collect(t *testing.T, cur *Cursor) [][]string {
	t.Helper()
	b, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]string, b.N)
	for i := 0; i < b.N; i++ {
		row := make([]string, len(b.Cols))
		for j, c := range b.Cols {
			v := c.Value(i)
			switch {
			case v.S != "":
				row[j] = v.S
			default:
				row[j] = fmt.Sprint(v.I)
			}
		}
		out[i] = row
	}
	return out
}

// TestSelfObservation is the satellite regression: a query over
// system.jobs issued through a serve session must (a) see every
// previously closed statement, (b) not see itself (it is recorded at
// cursor close, after its scan), and (c) record itself exactly once,
// visible to the next query. Run under -race this also proves the
// registry/ring locking cannot deadlock against the scan's snapshot.
func TestSelfObservation(t *testing.T) {
	ev := newEnv(t, Config{})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 8)

	sess := ev.open(t, adminP)
	defer sess.Close()

	cur, err := sess.Query("SELECT id FROM ds.t WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.All(); err != nil {
		t.Fatal(err)
	}

	jobs := ev.eng.Sys.Jobs()
	served := 0
	for _, j := range jobs {
		if j.Principal == string(adminP) && j.Kind == "select" {
			served++
		}
	}
	if served != 1 {
		t.Fatalf("jobs after one served select = %d, want 1", served)
	}

	// The system.jobs query itself: its scan must not include its own
	// record, and afterwards it must appear exactly once.
	cur, err = sess.Query("SELECT query_id, state FROM system.jobs WHERE kind = 'select'")
	if err != nil {
		t.Fatal(err)
	}
	rows := collect(t, cur)
	if len(rows) != 1 {
		t.Fatalf("system.jobs sees %d select jobs during its own scan, want 1 (not itself)", len(rows))
	}

	cur, err = sess.Query("SELECT query_id FROM system.jobs WHERE kind = 'select'")
	if err != nil {
		t.Fatal(err)
	}
	rows = collect(t, cur)
	if len(rows) != 2 {
		t.Fatalf("system.jobs select jobs after self-query closed = %d, want 2 (recorded exactly once)", len(rows))
	}

	// Concurrent hammering: sessions querying system.jobs while other
	// sessions record — no deadlock, no race (the -race run proves it).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := ev.srv.Open(adminP, fmt.Sprintf("w%d", w))
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for i := 0; i < 20; i++ {
				sql := "SELECT query_id FROM system.jobs"
				if i%2 == 1 {
					sql = "SELECT id FROM ds.t WHERE id = 1"
				}
				cur, err := s.Query(sql)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := cur.All(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestServeShedRecorded: admission rejections land in system.jobs as
// state=shed with a classified cause and never consume a query ID from
// the retry-budget sequence.
func TestServeShedRecorded(t *testing.T) {
	ev := newEnv(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 4)

	sess := ev.open(t, adminP)
	defer sess.Close()

	// Hold the only slot with an open cursor, queue one, then overflow.
	hold, err := sess.Query("SELECT id FROM ds.t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	var queued, shed int
	for i := 0; i < 3; i++ {
		p, err := sess.Parse("SELECT id FROM ds.t WHERE id = 2")
		if err != nil {
			t.Fatal(err)
		}
		p.ExecuteAt(ev.clock.Now(), func(_ time.Duration, run func() (*Cursor, error), err error) {
			if err != nil {
				shed++
				return
			}
			queued++
			if run != nil {
				if cur, rerr := run(); rerr == nil {
					cur.Close()
				}
			}
		})
	}
	hold.Close()
	if shed == 0 {
		t.Fatal("no submissions shed with MaxQueue 1")
	}
	var shedRecs int
	for _, j := range ev.eng.Sys.Jobs() {
		if j.State == systables.StateShed {
			shedRecs++
			if j.ErrorClass != "overload_queue_full" {
				t.Errorf("shed error class = %q", j.ErrorClass)
			}
			if j.Class != "point" {
				t.Errorf("shed class = %q, want point", j.Class)
			}
		}
	}
	if shedRecs != shed {
		t.Fatalf("shed records = %d, want %d", shedRecs, shed)
	}
}

// TestServeSessionsAndSLOTables: system.sessions enumerates open
// sessions through SQL and serve's Config.SLOs override lands in
// system.slo.
func TestServeSessionsAndSLOTables(t *testing.T) {
	ev := newEnv(t, Config{SLOs: []systables.SLOTarget{
		{Class: "point", Objective: 5 * time.Millisecond, Target: 0.5},
	}})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 4)

	s1 := ev.open(t, adminP)
	defer s1.Close()
	s2 := ev.open(t, adminP)

	cur, err := s1.Query("SELECT session_id, principal FROM system.sessions ORDER BY session_id")
	if err != nil {
		t.Fatal(err)
	}
	rows := collect(t, cur)
	if len(rows) != 2 {
		t.Fatalf("system.sessions rows = %d, want 2", len(rows))
	}
	s2.Close()

	cur, err = s1.Query("SELECT session_id FROM system.sessions")
	if err != nil {
		t.Fatal(err)
	}
	if rows := collect(t, cur); len(rows) != 1 {
		t.Fatalf("system.sessions after close = %d rows, want 1", len(rows))
	}

	// The configured objective replaced the default.
	cur, err = s1.Query("SELECT class, objective_us FROM system.slo WHERE class = 'point'")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 1 || b.Column("objective_us").Value(0).I != 5000 {
		t.Fatalf("point objective row = %+v", b)
	}
}

// TestServeRecordsOnce: a served statement is recorded exactly once —
// by the cursor, not additionally by engine.Execute.
func TestServeRecordsOnce(t *testing.T) {
	ev := newEnv(t, Config{})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 4)
	base := len(ev.eng.Sys.Jobs())

	sess := ev.open(t, adminP)
	defer sess.Close()
	cur, err := sess.Query("SELECT id FROM ds.t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ev.eng.Sys.Jobs()); got != base {
		t.Fatalf("job recorded before cursor close: %d vs base %d", got, base)
	}
	if _, err := cur.All(); err != nil { // All closes
		t.Fatal(err)
	}
	jobs := ev.eng.Sys.Jobs()
	if got := len(jobs); got != base+1 {
		t.Fatalf("jobs after close = %d, want %d", got, base+1)
	}
	last := jobs[len(jobs)-1]
	if last.State != systables.StateDone || last.RowsReturned != 1 || last.BytesReturned == 0 {
		t.Fatalf("final record = %+v", last)
	}
	if last.SQL == "" || last.QueryID == "" {
		t.Fatalf("record missing identity: %+v", last)
	}
	// Closing again must not double-record.
	cur.Close()
	if got := len(ev.eng.Sys.Jobs()); got != base+1 {
		t.Fatalf("double close double-recorded: %d", got)
	}
}
