// Package loadtest is the seeded, deterministic load/soak driver for
// the serve layer. It replaces wall-clock concurrency with a single-
// threaded virtual-time event loop: arrivals and completions are heap-
// ordered events, each admitted query executes synchronously against
// the engine (its service time measured as the simulated-clock delta),
// and its completion is scheduled back onto the virtual timeline at
// grant time + service time. Admission, queueing, weighted-fair
// scheduling, and load shedding therefore behave exactly as they would
// under thousands of concurrent tenants — but every run with the same
// seed is bit-identical, so soak results are comparable across
// machines and regressions are diffs, not noise.
package loadtest

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"biglake/internal/resilience"
	"biglake/internal/security"
	"biglake/internal/serve"
	"biglake/internal/sim"
)

// Query is one generated statement plus its traffic class ("olap",
// "point", "dml", ...) for reporting.
type Query struct {
	SQL  string
	Kind string
}

// Gen produces tenant traffic. It must be deterministic in its
// arguments: the harness calls it in event order with a per-tenant
// seeded RNG.
type Gen func(rng *sim.RNG, tenant, seq int) Query

// Config shapes one load run.
type Config struct {
	// Seed drives every random choice (arrival jitter, query mix).
	Seed uint64
	// Tenants is the number of synthetic tenants; each gets its own
	// server session and principal.
	Tenants int
	// QueriesPerTenant fixes each tenant's offered arrivals, so
	// Offered = Tenants * QueriesPerTenant exactly.
	QueriesPerTenant int
	// Interarrival is the virtual time between one tenant's arrivals,
	// jittered ±50% by the seeded RNG. Lower = more offered load.
	Interarrival time.Duration
	// Gen generates each query.
	Gen Gen
	// TenantPrincipal names tenant i; default "t%04d@bench".
	TenantPrincipal func(i int) security.Principal
}

// Principal returns tenant i's principal under cfg.
func (cfg Config) Principal(i int) security.Principal {
	if cfg.TenantPrincipal != nil {
		return cfg.TenantPrincipal(i)
	}
	return security.Principal(fmt.Sprintf("t%04d@bench", i))
}

// Result is one run's aggregate report. All fields are deterministic
// functions of (server state, Config), so two same-seed runs must be
// reflect.DeepEqual.
type Result struct {
	Offered   int
	Completed int
	// Failed counts admitted queries that errored during execution or
	// streaming (chaos faults, deadlines).
	Failed int
	// Rejected counts load-shed submissions by typed reason:
	// queue_full, queue_wait, quota, other.
	Rejected map[string]int
	// EgressBytes sums result bytes streamed to completed queries.
	EgressBytes int64
	// Makespan is the virtual time of the last event.
	Makespan time.Duration
	// P50/P99/P999 are completed-query latencies (arrival → final page
	// delivered) on the virtual timeline.
	P50, P99, P999 time.Duration
	// GoodputQPS is completed queries per virtual second.
	GoodputQPS float64
	// PerTenantCompleted is indexed by tenant.
	PerTenantCompleted []int
	// FairMin/FairMax/FairRatio summarize per-tenant goodput spread
	// (min clamped to 1 so the ratio stays finite and JSON-safe).
	FairMin, FairMax int
	FairRatio        float64
	// ByKind counts completions per traffic class.
	ByKind map[string]int
	// Checksum folds every completion and rejection into one value —
	// the cheap way to assert two runs took identical trajectories.
	Checksum uint64
}

const (
	evArrival = iota
	evComplete
)

type event struct {
	at      time.Duration
	seq     int64
	kind    int
	tenant  int
	qseq    int
	arrival time.Duration
	cur     *serve.Cursor
	class   string
}

// eventHeap orders by (at, seq): virtual time, then scheduling order.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e *event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *eventHeap) pop() *event {
	old := *h
	e := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[last] = nil
	*h = old[:last]
	n := len(*h)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.less(l, least) {
			least = l
		}
		if r < n && h.less(r, least) {
			least = r
		}
		if least == i {
			break
		}
		(*h)[i], (*h)[least] = (*h)[least], (*h)[i]
		i = least
	}
	return e
}

// MinService floors each measured service time so a fully-cached query
// still occupies capacity for a nonzero slice of virtual time.
const MinService = 100 * time.Microsecond

// Run drives the server with cfg's synthetic tenants and returns the
// aggregate report. Deterministic: same seed, same server state, same
// Result.
func Run(srv *serve.Server, cfg Config) (*Result, error) {
	if cfg.Tenants <= 0 || cfg.QueriesPerTenant <= 0 || cfg.Gen == nil {
		return nil, errors.New("loadtest: Tenants, QueriesPerTenant, and Gen are required")
	}
	if cfg.Interarrival <= 0 {
		cfg.Interarrival = 50 * time.Millisecond
	}

	res := &Result{
		Rejected:           map[string]int{},
		ByKind:             map[string]int{},
		PerTenantCompleted: make([]int, cfg.Tenants),
	}
	sum := fnv.New64a()
	mix := func(vals ...int64) {
		var buf [8]byte
		for _, v := range vals {
			for i := 0; i < 8; i++ {
				buf[i] = byte(uint64(v) >> (8 * i))
			}
			sum.Write(buf[:])
		}
	}

	sessions := make([]*serve.Session, cfg.Tenants)
	rngs := make([]*sim.RNG, cfg.Tenants)
	for i := 0; i < cfg.Tenants; i++ {
		s, err := srv.Open(cfg.Principal(i), fmt.Sprintf("lt%04d", i))
		if err != nil {
			return nil, err
		}
		sessions[i] = s
		rngs[i] = sim.NewRNG(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(i+1)))
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()

	var heap eventHeap
	var eseq int64
	schedule := func(e *event) {
		eseq++
		e.seq = eseq
		heap.push(e)
	}

	// Pre-schedule every arrival: tenant phases are staggered across
	// one interarrival period, each subsequent gap jittered ±50%.
	for i := 0; i < cfg.Tenants; i++ {
		at := time.Duration(float64(cfg.Interarrival) * float64(i) / float64(cfg.Tenants))
		for k := 0; k < cfg.QueriesPerTenant; k++ {
			schedule(&event{at: at, kind: evArrival, tenant: i, qseq: k})
			gap := float64(cfg.Interarrival) * (0.5 + rngs[i].Float64())
			at += time.Duration(gap)
		}
	}

	var latencies []time.Duration
	var loopErr error
	for len(heap) > 0 && loopErr == nil {
		ev := heap.pop()
		now := ev.at
		if now > res.Makespan {
			res.Makespan = now
		}
		switch ev.kind {
		case evArrival:
			i := ev.tenant
			q := cfg.Gen(rngs[i], i, ev.qseq)
			p, err := sessions[i].Parse(q.SQL)
			if err != nil {
				loopErr = fmt.Errorf("loadtest: tenant %d generated unparsable SQL %q: %w", i, q.SQL, err)
				break
			}
			if err := p.Prepare(); err != nil {
				loopErr = err
				break
			}
			res.Offered++
			arrival := now
			p.ExecuteAt(now, func(grantedAt time.Duration, run func() (*serve.Cursor, error), err error) {
				if err != nil {
					res.Rejected[rejectReason(err)]++
					mix(int64(i), int64(ev.qseq), -1, int64(len(res.Rejected)))
					return
				}
				start := srv.Clock()
				cur, rerr := run()
				if rerr != nil {
					res.Failed++
					mix(int64(i), int64(ev.qseq), -2, 0)
					return
				}
				// Drain the paged stream now — the engine consumes
				// simulated time here — and land the completion on the
				// virtual timeline at grant + measured service time.
				for {
					pg, perr := cur.Next()
					if perr != nil {
						res.Failed++
						mix(int64(i), int64(ev.qseq), -3, 0)
						cur.CloseAt(grantedAt)
						return
					}
					if pg == nil {
						break
					}
				}
				svc := srv.Clock() - start
				if svc < MinService {
					svc = MinService
				}
				schedule(&event{
					at: grantedAt + svc, kind: evComplete, tenant: i, qseq: ev.qseq,
					arrival: arrival, cur: cur, class: q.Kind,
				})
			})
		case evComplete:
			ev.cur.CloseAt(now)
			res.Completed++
			res.PerTenantCompleted[ev.tenant]++
			res.EgressBytes += ev.cur.Egress()
			lat := now - ev.arrival
			latencies = append(latencies, lat)
			if ev.class != "" {
				res.ByKind[ev.class]++
			}
			mix(int64(ev.tenant), int64(ev.qseq), int64(lat), ev.cur.Egress())
		}
	}
	if loopErr != nil {
		return nil, loopErr
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = percentile(latencies, 0.50)
	res.P99 = percentile(latencies, 0.99)
	res.P999 = percentile(latencies, 0.999)
	if res.Makespan > 0 {
		res.GoodputQPS = float64(res.Completed) / res.Makespan.Seconds()
	}
	res.FairMin = math.MaxInt
	for _, c := range res.PerTenantCompleted {
		if c < res.FairMin {
			res.FairMin = c
		}
		if c > res.FairMax {
			res.FairMax = c
		}
	}
	if res.FairMin == math.MaxInt {
		res.FairMin = 0
	}
	den := res.FairMin
	if den < 1 {
		den = 1
	}
	res.FairRatio = float64(res.FairMax) / float64(den)
	res.Checksum = sum.Sum64()
	return res, nil
}

func rejectReason(err error) string {
	var oe *resilience.OverloadError
	if errors.As(err, &oe) {
		return oe.Reason
	}
	if errors.Is(err, serve.ErrQuotaExceeded) {
		return "quota"
	}
	return "other"
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
