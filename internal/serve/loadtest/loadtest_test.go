package loadtest

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/serve"
	"biglake/internal/sim"
	"biglake/internal/txn"
	"biglake/internal/vector"
	"biglake/internal/wal"
)

const adminP = security.Principal("admin@corp")

// world builds a complete stack with one managed table ds.t (8 rows)
// and grants every tenant principal editor access.
func world(t *testing.T, cfg serve.Config, tenants int, lcfg Config) *serve.Server {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa@corp"}
	for _, b := range []string{"data-bucket", "journal-bucket"} {
		if err := store.CreateBucket(cred, b); err != nil {
			t.Fatal(err)
		}
	}
	cat := catalog.New()
	cat.CreateDataset(catalog.Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"})
	auth := security.NewAuthority("secret", adminP)
	auth.RegisterConnection(adminP, security.Connection{Name: "conn", ServiceAccount: cred, Cloud: "gcp"})
	log := bigmeta.NewLog(clock, nil)
	j, err := wal.Open(store, cred, "journal-bucket", "")
	if err != nil {
		t.Fatal(err)
	}
	log.AttachJournal(j)
	stores := map[string]*objstore.Store{"gcp": store}
	bm := blmt.New(cat, auth, log, clock, stores)
	bm.DefaultCloud, bm.DefaultBucket, bm.DefaultConnection = "gcp", "data-bucket", "conn"
	bm.Journal = j
	meta := bigmeta.NewCache(clock, nil)
	eng := engine.New(cat, auth, meta, log, clock, stores, engine.DefaultOptions())
	eng.ManagedCred = cred
	eng.SetMutator(bm)
	if err := cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "t", Type: catalog.Managed,
		Schema: vector.NewSchema(
			vector.Field{Name: "id", Type: vector.Int64},
			vector.Field{Name: "v", Type: vector.Int64},
		),
		Cloud: "gcp", Bucket: "data-bucket", Prefix: "blmt/ds/t/", Connection: "conn",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(engine.NewContext(adminP, "seed"),
		"INSERT INTO ds.t VALUES (0,0),(1,10),(2,20),(3,30),(4,40),(5,50),(6,60),(7,70)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tenants; i++ {
		if err := auth.GrantTable(adminP, "ds.t", lcfg.Principal(i), security.RoleEditor); err != nil {
			t.Fatal(err)
		}
	}
	return serve.New(eng, txn.NewManager(eng, j), cfg)
}

// mixedGen is a small OLAP/point/DML mix over ds.t.
func mixedGen(rng *sim.RNG, tenant, seq int) Query {
	switch rng.Intn(10) {
	case 0:
		return Query{Kind: "dml", SQL: fmt.Sprintf("INSERT INTO ds.t VALUES (%d, %d)", 1000+tenant*1000+seq, seq)}
	case 1, 2, 3:
		return Query{Kind: "olap", SQL: "SELECT v, COUNT(*) AS n FROM ds.t GROUP BY v ORDER BY v"}
	default:
		return Query{Kind: "point", SQL: fmt.Sprintf("SELECT id, v FROM ds.t WHERE id = %d", rng.Intn(8))}
	}
}

func TestLoadRunCompletes(t *testing.T) {
	lcfg := Config{
		Seed: 7, Tenants: 8, QueriesPerTenant: 6,
		Interarrival: 200 * time.Millisecond, Gen: mixedGen,
	}
	srv := world(t, serve.Config{MaxConcurrent: 4, PageRows: 3}, lcfg.Tenants, lcfg)
	res, err := Run(srv, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 48 {
		t.Fatalf("offered = %d", res.Offered)
	}
	if res.Completed+res.Failed+totalRejected(res) != res.Offered {
		t.Fatalf("accounting mismatch: %+v", res)
	}
	if res.Completed == 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("degenerate latency stats: %+v", res)
	}
	if res.EgressBytes == 0 {
		t.Fatal("no egress recorded")
	}
	if res.ByKind["point"] == 0 || res.ByKind["olap"] == 0 {
		t.Fatalf("mix missing classes: %v", res.ByKind)
	}
}

// TestLoadRunDeterministic runs the same seed against two identically-
// built worlds and requires bit-identical results — the property the
// soak gate in CI relies on.
func TestLoadRunDeterministic(t *testing.T) {
	lcfg := Config{
		Seed: 99, Tenants: 12, QueriesPerTenant: 5,
		Interarrival: 30 * time.Millisecond, Gen: mixedGen,
	}
	scfg := serve.Config{MaxConcurrent: 2, MaxQueue: 6, MaxQueueWait: 500 * time.Millisecond, PageRows: 4}
	run := func() *Result {
		srv := world(t, scfg, lcfg.Tenants, lcfg)
		res, err := Run(srv, lcfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	// Different seed must actually change the trajectory, or the
	// checksum is vacuous.
	lcfg.Seed = 100
	if c := run(); c.Checksum == a.Checksum {
		t.Fatal("different seed produced identical checksum")
	}
}

// TestLoadShedsUnderOverload drives far past capacity and checks the
// server degrades by shedding typed rejections while still completing
// work.
func TestLoadShedsUnderOverload(t *testing.T) {
	// Arrivals every ~20µs/tenant vastly outpace the warm-cache service
	// floor (MinService per slot), so the queue must overflow.
	lcfg := Config{
		Seed: 3, Tenants: 16, QueriesPerTenant: 8,
		Interarrival: 20 * time.Microsecond, Gen: mixedGen,
	}
	srv := world(t, serve.Config{MaxConcurrent: 2, MaxQueue: 4, MaxQueueWait: 200 * time.Millisecond, PageRows: 8},
		lcfg.Tenants, lcfg)
	res, err := Run(srv, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if totalRejected(res) == 0 {
		t.Fatalf("expected load shedding: %+v", res)
	}
	if res.Completed == 0 {
		t.Fatal("overload collapsed goodput to zero")
	}
	if res.Rejected["other"] != 0 {
		t.Fatalf("untyped rejections: %v", res.Rejected)
	}
}

func totalRejected(r *Result) int {
	n := 0
	for _, v := range r.Rejected {
		n += v
	}
	return n
}
