package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/systables"
)

// ErrQuotaExceeded matches every QuotaError via errors.Is.
var ErrQuotaExceeded = errors.New("serve: tenant egress quota exceeded")

// QuotaError rejects a submission from a tenant whose cumulative
// result egress exceeded its configured quota. Unlike an overload
// shed, retrying does not help until the quota is raised.
type QuotaError struct {
	Tenant string
	Quota  int64
	Used   int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("serve: tenant %q egress quota exceeded (%d of %d bytes)", e.Tenant, e.Used, e.Quota)
}

// Is makes errors.Is(err, ErrQuotaExceeded) true.
func (e *QuotaError) Is(target error) bool { return target == ErrQuotaExceeded }

// TenantConfig is one tenant's service contract.
type TenantConfig struct {
	// Weight sets the tenant's share of contended capacity — the fair
	// queue serves backlogged tenants in proportion to their weights.
	// Values <= 0 mean 1.
	Weight float64
	// EgressQuota, when > 0, caps the tenant's cumulative result bytes;
	// once exceeded, new submissions fail with QuotaError until the
	// quota is raised.
	EgressQuota int64
}

// Config tunes a Server and its admission controller. The zero value
// gets sensible defaults from withDefaults.
type Config struct {
	// MemoryBudget bounds the summed admission cost (estimated working
	// set bytes) of concurrently running queries. Default 256 MiB.
	MemoryBudget int64
	// MaxConcurrent caps concurrently executing queries. Default 16.
	MaxConcurrent int
	// MaxQueue bounds the admission queue; submissions beyond it are
	// shed with a typed queue_full overload error. Default
	// 4*MaxConcurrent.
	MaxQueue int
	// MaxQueueWait bounds how long a ticket may sit queued (in the
	// caller's time base — simulated time for the load harness) before
	// it is shed with a queue_wait overload error rather than served
	// stale. Default 2s.
	MaxQueueWait time.Duration
	// PageRows bounds each result page streamed by a Cursor. Default
	// 1024.
	PageRows int
	// Deadline, when > 0, bounds each query to that much simulated
	// time; serve seeds the retry budget so the deadline also makes the
	// query cancelable.
	Deadline time.Duration
	// DefaultTenant applies to tenants absent from Tenants.
	DefaultTenant TenantConfig
	// Tenants holds per-tenant overrides keyed by principal.
	Tenants map[string]TenantConfig
	// SLOs sets the per-query-class latency objectives surfaced by
	// system.slo (class, objective, target attainment). Empty installs
	// systables.DefaultSLOTargets.
	SLOs []systables.SLOTarget
}

func (c Config) withDefaults() Config {
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 256 << 20
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 2 * time.Second
	}
	if c.PageRows <= 0 {
		c.PageRows = 1024
	}
	return c
}

// minCost floors every admission cost so control statements and
// unknown tables still hold a nonzero slice of the memory budget.
const minCost = 64 << 10

// ticket is one queued admission request.
type ticket struct {
	tenant   string
	cost     int64
	seq      int64
	submitAt time.Duration
	vfinish  float64
	deliver  func(*Grant, error)
}

// Grant is one admitted query's hold on server capacity. It is
// released exactly once — by cursor close, or by the error path of the
// execution it admitted.
type Grant struct {
	tenant    string
	cost      int64
	grantedAt time.Duration
	queuedFor time.Duration
	released  bool // guarded by the admitter's mu
}

type tenantState struct {
	cfg        TenantConfig
	egress     int64
	admitted   int64
	completed  int64
	completedC *obs.Counter
	egressC    *obs.Counter
}

func (ts *tenantState) weight() float64 {
	if ts.cfg.Weight <= 0 {
		return 1
	}
	return ts.cfg.Weight
}

// serveCounters is the pre-resolved handle set for the serve layer's
// hot-path metrics; all fields are nil-safe when no registry is
// installed.
type serveCounters struct {
	submitted     *obs.Counter
	admitted      *obs.Counter
	completed     *obs.Counter
	canceled      *obs.Counter
	pages         *obs.Counter
	egress        *obs.Counter
	rejectedFull  *obs.Counter
	rejectedWait  *obs.Counter
	rejectedQuota *obs.Counter
	queueDepth    *obs.Gauge
	running       *obs.Gauge
	memUsed       *obs.Gauge
	sessions      *obs.Gauge
	txnOpen       *obs.Gauge
	queueWait     *obs.Histogram
}

func resolveServeCounters(r *obs.Registry) serveCounters {
	if r == nil {
		return serveCounters{}
	}
	return serveCounters{
		submitted:     r.Counter("serve.submitted"),
		admitted:      r.Counter("serve.admitted"),
		completed:     r.Counter("serve.completed"),
		canceled:      r.Counter("serve.canceled"),
		pages:         r.Counter("serve.pages"),
		egress:        r.Counter("serve.egress.bytes"),
		rejectedFull:  r.Counter("serve.rejected.queue_full"),
		rejectedWait:  r.Counter("serve.rejected.queue_wait"),
		rejectedQuota: r.Counter("serve.rejected.quota"),
		queueDepth:    r.Gauge("serve.queue.depth"),
		running:       r.Gauge("serve.running"),
		memUsed:       r.Gauge("serve.mem.used"),
		sessions:      r.Gauge("serve.sessions.active"),
		txnOpen:       r.Gauge("serve.txn.open"),
		queueWait: r.Histogram("serve.queue.wait_us", []int64{
			100, 1000, 10_000, 100_000, 1_000_000, 10_000_000,
		}),
	}
}

// admitter is the admission controller: memory-budgeted, concurrency-
// capped, with a weighted fair queue across tenants and graceful load
// shedding. Time is always supplied by the caller (`now`), so the
// same controller serves both the wall-clock blocking path and the
// load harness's virtual-time event loop.
type admitter struct {
	cfg Config
	c   serveCounters
	reg *obs.Registry

	mu      sync.Mutex
	q       *wfq
	seq     int64
	running int
	memUsed int64
	ewmaSvc float64 // EWMA of per-query service time (sim ns)
	tenants map[string]*tenantState
}

func newAdmitter(cfg Config, reg *obs.Registry) *admitter {
	return &admitter{
		cfg:     cfg,
		c:       resolveServeCounters(reg),
		reg:     reg,
		q:       newWFQ(),
		tenants: map[string]*tenantState{},
	}
}

func (a *admitter) tenantLocked(name string) *tenantState {
	ts := a.tenants[name]
	if ts == nil {
		cfg, ok := a.cfg.Tenants[name]
		if !ok {
			cfg = a.cfg.DefaultTenant
		}
		ts = &tenantState{cfg: cfg}
		if a.reg != nil {
			ts.completedC = a.reg.Counter("serve.tenant." + name + ".completed")
			ts.egressC = a.reg.Counter("serve.tenant." + name + ".egress_bytes")
		}
		a.tenants[name] = ts
	}
	return ts
}

func (a *admitter) fitsLocked(cost int64) bool {
	return a.running < a.cfg.MaxConcurrent && a.memUsed+cost <= a.cfg.MemoryBudget
}

// retryAfterLocked derives the backoff hint shipped inside overload
// errors: the observed per-query service time scaled by how much work
// is ahead of a resubmission, floored at 1ms.
func (a *admitter) retryAfterLocked() time.Duration {
	svc := a.ewmaSvc
	if svc <= 0 {
		svc = float64(10 * time.Millisecond)
	}
	ra := time.Duration(svc * float64(a.q.len()+1) / float64(a.cfg.MaxConcurrent))
	if ra < time.Millisecond {
		ra = time.Millisecond
	}
	return ra
}

func (a *admitter) observeServiceLocked(d time.Duration) {
	if d < 0 {
		return
	}
	if a.ewmaSvc == 0 {
		a.ewmaSvc = float64(d)
		return
	}
	a.ewmaSvc = 0.8*a.ewmaSvc + 0.2*float64(d)
}

func (a *admitter) grantLocked(tenant string, cost int64, submitAt, now time.Duration) *Grant {
	ts := a.tenantLocked(tenant)
	ts.admitted++
	a.running++
	a.memUsed += cost
	a.c.admitted.Add(1)
	a.c.running.Set(int64(a.running))
	a.c.memUsed.Set(a.memUsed)
	wait := now - submitAt
	if wait < 0 {
		wait = 0
	}
	a.c.queueWait.Observe(wait.Microseconds())
	return &Grant{tenant: tenant, cost: cost, grantedAt: now, queuedFor: wait}
}

// submit requests capacity for one query at time now. deliver is
// invoked exactly once — inline for an immediate grant or typed
// rejection, or later (from the release that freed capacity) for a
// queued ticket — and never while the admitter's lock is held.
func (a *admitter) submit(tenant string, cost int64, now time.Duration, deliver func(*Grant, error)) {
	if cost < minCost {
		cost = minCost
	}
	if cost > a.cfg.MemoryBudget {
		// A query larger than the whole budget still runs — alone.
		cost = a.cfg.MemoryBudget
	}
	a.mu.Lock()
	a.c.submitted.Add(1)
	ts := a.tenantLocked(tenant)
	if q := ts.cfg.EgressQuota; q > 0 && ts.egress >= q {
		used := ts.egress
		a.c.rejectedQuota.Add(1)
		a.mu.Unlock()
		deliver(nil, &QuotaError{Tenant: tenant, Quota: q, Used: used})
		return
	}
	// Grant inline only when nothing is queued: queued tickets hold
	// strict priority, or a steady trickle would starve the queue.
	if a.q.len() == 0 && a.fitsLocked(cost) {
		g := a.grantLocked(tenant, cost, now, now)
		a.mu.Unlock()
		deliver(g, nil)
		return
	}
	if a.q.len() >= a.cfg.MaxQueue {
		ra := a.retryAfterLocked()
		a.c.rejectedFull.Add(1)
		a.mu.Unlock()
		deliver(nil, &resilience.OverloadError{Op: "serve.admission", Reason: "queue_full", RetryAfter: ra})
		return
	}
	a.seq++
	t := &ticket{tenant: tenant, cost: cost, seq: a.seq, submitAt: now, deliver: deliver}
	a.q.push(t, ts.weight())
	a.c.queueDepth.Set(int64(a.q.len()))
	a.mu.Unlock()
}

type pendingDeliver struct {
	t *ticket
	g *Grant
	e error
}

// release returns a grant's capacity at time now, charges egress to
// the tenant, and drains the queue: stale heads are shed with typed
// queue_wait errors, fitting heads are granted. Idempotent per grant.
func (a *admitter) release(g *Grant, egress int64, now time.Duration) {
	if g == nil {
		return
	}
	a.mu.Lock()
	if g.released {
		a.mu.Unlock()
		return
	}
	g.released = true
	a.running--
	a.memUsed -= g.cost
	ts := a.tenantLocked(g.tenant)
	ts.completed++
	a.c.completed.Add(1)
	ts.completedC.Add(1)
	if egress > 0 {
		ts.egress += egress
		a.c.egress.Add(egress)
		ts.egressC.Add(egress)
	}
	a.observeServiceLocked(now - g.grantedAt)

	// Lazy shedding: queue-wait limits are enforced when a ticket
	// reaches the head, not by timers — deterministic under both wall
	// and virtual time.
	var out []pendingDeliver
	for a.q.len() > 0 {
		head := a.q.peek()
		if a.cfg.MaxQueueWait > 0 && now-head.submitAt > a.cfg.MaxQueueWait {
			t := a.q.pop()
			a.c.rejectedWait.Add(1)
			out = append(out, pendingDeliver{t: t, e: &resilience.OverloadError{
				Op: "serve.admission", Reason: "queue_wait", RetryAfter: a.retryAfterLocked(),
			}})
			continue
		}
		if !a.fitsLocked(head.cost) {
			break
		}
		t := a.q.pop()
		out = append(out, pendingDeliver{t: t, g: a.grantLocked(t.tenant, t.cost, t.submitAt, now)})
	}
	a.c.running.Set(int64(a.running))
	a.c.memUsed.Set(a.memUsed)
	a.c.queueDepth.Set(int64(a.q.len()))
	a.mu.Unlock()
	for _, p := range out {
		p.t.deliver(p.g, p.e)
	}
}

// TenantUsage is one tenant's cumulative accounting snapshot.
type TenantUsage struct {
	Admitted  int64
	Completed int64
	Egress    int64
}

// Usage returns per-tenant accounting for every tenant seen so far.
func (a *admitter) usage() map[string]TenantUsage {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]TenantUsage, len(a.tenants))
	for name, ts := range a.tenants {
		out[name] = TenantUsage{Admitted: ts.admitted, Completed: ts.completed, Egress: ts.egress}
	}
	return out
}
