package serve

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/resilience"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/txn"
	"biglake/internal/vector"
	"biglake/internal/wal"
)

const adminP = security.Principal("admin@corp")

type env struct {
	clock *sim.Clock
	store *objstore.Store
	cat   *catalog.Catalog
	auth  *security.Authority
	log   *bigmeta.Log
	blmt  *blmt.Manager
	eng   *engine.Engine
	mgr   *txn.Manager
	j     *wal.Journal
	cred  objstore.Credential
	srv   *Server
}

// newEnv wires the full stack — store, catalog, authority, log,
// journal, engine, blmt mutator, txn manager — and fronts it with a
// server under cfg.
func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa@corp"}
	for _, b := range []string{"data-bucket", "journal-bucket"} {
		if err := store.CreateBucket(cred, b); err != nil {
			t.Fatal(err)
		}
	}
	cat := catalog.New()
	cat.CreateDataset(catalog.Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"})
	auth := security.NewAuthority("secret", adminP)
	auth.RegisterConnection(adminP, security.Connection{Name: "conn", ServiceAccount: cred, Cloud: "gcp"})
	log := bigmeta.NewLog(clock, nil)
	j, err := wal.Open(store, cred, "journal-bucket", "")
	if err != nil {
		t.Fatal(err)
	}
	log.AttachJournal(j)
	stores := map[string]*objstore.Store{"gcp": store}
	bm := blmt.New(cat, auth, log, clock, stores)
	bm.DefaultCloud, bm.DefaultBucket, bm.DefaultConnection = "gcp", "data-bucket", "conn"
	bm.Journal = j
	meta := bigmeta.NewCache(clock, nil)
	eng := engine.New(cat, auth, meta, log, clock, stores, engine.DefaultOptions())
	eng.ManagedCred = cred
	eng.SetMutator(bm)
	mgr := txn.NewManager(eng, j)
	return &env{clock: clock, store: store, cat: cat, auth: auth, log: log,
		blmt: bm, eng: eng, mgr: mgr, j: j, cred: cred,
		srv: New(eng, mgr, cfg)}
}

func (ev *env) createTable(t *testing.T, name string) {
	t.Helper()
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: name, Type: catalog.Managed,
		Schema: vector.NewSchema(
			vector.Field{Name: "id", Type: vector.Int64},
			vector.Field{Name: "v", Type: vector.Int64},
		),
		Cloud: "gcp", Bucket: "data-bucket",
		Prefix: "blmt/ds/" + name + "/", Connection: "conn",
	}); err != nil {
		t.Fatal(err)
	}
}

// seedRows autocommits n rows into ds.<table> via the engine.
func (ev *env) seedRows(t *testing.T, table string, n int) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO ds.%s VALUES ", table)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i*10)
	}
	if _, err := ev.eng.Query(engine.NewContext(adminP, fmt.Sprintf("seed-%s", table)), sb.String()); err != nil {
		t.Fatal(err)
	}
}

func (ev *env) open(t *testing.T, p security.Principal) *Session {
	t.Helper()
	s, err := ev.srv.Open(p, "t")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// admState reads the admitter's capacity accounting.
func (ev *env) admState() (running int, memUsed int64, queued int) {
	a := ev.srv.adm
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running, a.memUsed, a.q.len()
}

func TestSessionLifecyclePaging(t *testing.T) {
	ev := newEnv(t, Config{PageRows: 3})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 10)

	sess := ev.open(t, adminP)
	defer sess.Close()

	p, err := sess.Parse("SELECT id, v FROM ds.t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != "select" {
		t.Fatalf("kind = %q", p.Kind())
	}
	if err := p.Prepare(); err != nil {
		t.Fatal(err)
	}
	if got := p.Tables(); len(got) != 1 || got[0] != "ds.t" {
		t.Fatalf("tables = %v", got)
	}
	if p.Cost() <= minCost {
		t.Fatalf("cost = %d, want > floor (table has data)", p.Cost())
	}
	cur, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// Capacity is held while the cursor streams.
	if running, mem, _ := ev.admState(); running != 1 || mem < p.Cost() {
		t.Fatalf("mid-stream: running=%d mem=%d", running, mem)
	}
	var sizes []int
	var total int
	for {
		pg, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pg == nil {
			break
		}
		if len(pg.Schema.Fields) != 2 {
			t.Fatalf("page schema: %v", pg.Schema.Fields)
		}
		sizes = append(sizes, pg.N)
		total += pg.N
	}
	if want := []int{3, 3, 3, 1}; fmt.Sprint(sizes) != fmt.Sprint(want) {
		t.Fatalf("page sizes = %v, want %v", sizes, want)
	}
	if total != 10 {
		t.Fatalf("rows = %d", total)
	}
	if cur.Egress() == 0 {
		t.Fatal("no egress accounted")
	}
	cur.Close()
	if running, mem, _ := ev.admState(); running != 0 || mem != 0 {
		t.Fatalf("after close: running=%d mem=%d", running, mem)
	}
	u := ev.srv.Usage()[string(adminP)]
	if u.Completed != 1 || u.Egress != cur.Egress() {
		t.Fatalf("usage = %+v (egress %d)", u, cur.Egress())
	}
	if got := ev.eng.Obs.Get("serve.admitted"); got != 1 {
		t.Fatalf("serve.admitted = %d", got)
	}
}

// TestPagedEqualsDirect reassembles a paged stream and compares it to
// direct engine execution row-for-row.
func TestPagedEqualsDirect(t *testing.T) {
	ev := newEnv(t, Config{PageRows: 4})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 23)

	const q = "SELECT id, v FROM ds.t WHERE id < 17 ORDER BY id DESC"
	direct, err := ev.eng.Query(engine.NewContext(adminP, "direct"), q)
	if err != nil {
		t.Fatal(err)
	}
	sess := ev.open(t, adminP)
	defer sess.Close()
	cur, err := sess.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if got.N != direct.Batch.N {
		t.Fatalf("rows: served %d direct %d", got.N, direct.Batch.N)
	}
	for r := 0; r < got.N; r++ {
		for c := range got.Cols {
			a, b := got.Cols[c].Value(r), direct.Batch.Cols[c].Value(r)
			if a != b {
				t.Fatalf("row %d col %d: served %v direct %v", r, c, a, b)
			}
		}
	}
}

func TestZeroRowResultStillReturnsSchema(t *testing.T) {
	ev := newEnv(t, Config{})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 3)
	sess := ev.open(t, adminP)
	defer sess.Close()
	cur, err := sess.Query("SELECT id FROM ds.t WHERE id > 100")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	pg, err := cur.Next()
	if err != nil {
		t.Fatal(err)
	}
	if pg == nil || pg.N != 0 || len(pg.Schema.Fields) != 1 {
		t.Fatalf("first page = %+v", pg)
	}
	if pg2, _ := cur.Next(); pg2 != nil {
		t.Fatalf("second page = %+v", pg2)
	}
}

// TestOverloadShedsTyped drives the admitter past its caps and checks
// rejections are typed, counted, and carry retry-after hints — and
// that capacity freed later actually grants queued work.
func TestOverloadShedsTyped(t *testing.T) {
	ev := newEnv(t, Config{MaxConcurrent: 1, MaxQueue: 1, MaxQueueWait: time.Hour})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 4)
	sess := ev.open(t, adminP)
	defer sess.Close()

	prep := func() *Prepared {
		p, err := sess.Parse("SELECT id FROM ds.t")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	now := ev.clock.Now()

	var first *Cursor
	prep().ExecuteAt(now, func(_ time.Duration, run func() (*Cursor, error), err error) {
		if err != nil {
			t.Fatalf("first: %v", err)
		}
		c, rerr := run()
		if rerr != nil {
			t.Fatalf("first run: %v", rerr)
		}
		first = c
	})
	if first == nil {
		t.Fatal("first query not granted inline")
	}

	var queuedRan bool
	prep().ExecuteAt(now, func(_ time.Duration, run func() (*Cursor, error), err error) {
		if err != nil {
			t.Fatalf("queued: %v", err)
		}
		c, rerr := run()
		if rerr != nil {
			t.Fatalf("queued run: %v", rerr)
		}
		c.Close()
		queuedRan = true
	})
	if queuedRan {
		t.Fatal("second query should be queued, not run inline")
	}

	var shedErr error
	prep().ExecuteAt(now, func(_ time.Duration, _ func() (*Cursor, error), err error) { shedErr = err })
	if shedErr == nil {
		t.Fatal("third query should be shed")
	}
	if !errors.Is(shedErr, resilience.ErrOverloaded) {
		t.Fatalf("shed error = %v, want ErrOverloaded", shedErr)
	}
	var oe *resilience.OverloadError
	if !errors.As(shedErr, &oe) || oe.Reason != "queue_full" || oe.RetryAfter <= 0 {
		t.Fatalf("overload error = %+v", oe)
	}
	if got := ev.eng.Obs.Get("serve.rejected.queue_full"); got != 1 {
		t.Fatalf("serve.rejected.queue_full = %d", got)
	}

	// Freeing the running query must grant the queued one.
	first.Close()
	if !queuedRan {
		t.Fatal("queued query did not run after release")
	}
	if running, mem, queued := ev.admState(); running != 0 || mem != 0 || queued != 0 {
		t.Fatalf("end state: running=%d mem=%d queued=%d", running, mem, queued)
	}
}

func TestQueueWaitShedding(t *testing.T) {
	ev := newEnv(t, Config{MaxConcurrent: 1, MaxQueue: 8, MaxQueueWait: 10 * time.Millisecond})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 4)
	sess := ev.open(t, adminP)
	defer sess.Close()

	p1, _ := sess.Parse("SELECT id FROM ds.t")
	var first *Cursor
	p1.ExecuteAt(0, func(_ time.Duration, run func() (*Cursor, error), err error) {
		if err != nil {
			t.Fatal(err)
		}
		first, err = run()
		if err != nil {
			t.Fatal(err)
		}
	})

	var waitErr error
	p2, _ := sess.Parse("SELECT id FROM ds.t")
	p2.ExecuteAt(0, func(_ time.Duration, _ func() (*Cursor, error), err error) { waitErr = err })
	if waitErr != nil {
		t.Fatalf("queued submission rejected eagerly: %v", waitErr)
	}

	// Release far past the ticket's wait bound: the stale head is shed
	// with a typed queue_wait error instead of being served.
	first.CloseAt(time.Second)
	var oe *resilience.OverloadError
	if waitErr == nil || !errors.As(waitErr, &oe) || oe.Reason != "queue_wait" {
		t.Fatalf("stale ticket error = %v", waitErr)
	}
	if got := ev.eng.Obs.Get("serve.rejected.queue_wait"); got != 1 {
		t.Fatalf("serve.rejected.queue_wait = %d", got)
	}
}

func TestEgressQuota(t *testing.T) {
	ev := newEnv(t, Config{
		Tenants: map[string]TenantConfig{string(adminP): {EgressQuota: 1}},
	})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 8)
	sess := ev.open(t, adminP)
	defer sess.Close()

	cur, err := sess.Query("SELECT id, v FROM ds.t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.All(); err != nil {
		t.Fatal(err)
	}
	// The first query streamed more than the 1-byte quota; the next
	// submission is rejected with a typed quota error.
	_, err = sess.Query("SELECT id FROM ds.t")
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != string(adminP) || qe.Used == 0 {
		t.Fatalf("quota error = %+v", qe)
	}
	if got := ev.eng.Obs.Get("serve.rejected.quota"); got != 1 {
		t.Fatalf("serve.rejected.quota = %d", got)
	}
}

// TestOneTxnPerPrincipal checks BEGIN routing: one open transaction
// per principal across sessions, COMMIT/ROLLBACK outside one fails,
// and the full BEGIN → DML → read-your-writes → COMMIT flow works
// through the paged cursor.
func TestOneTxnPerPrincipal(t *testing.T) {
	ev := newEnv(t, Config{})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 2)

	s1 := ev.open(t, adminP)
	defer s1.Close()
	s2 := ev.open(t, adminP)
	defer s2.Close()

	if _, err := s1.Query("COMMIT"); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("bare COMMIT: %v", err)
	}
	cur, err := s1.Query("BEGIN")
	if err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if !s1.TxnOpen() {
		t.Fatal("s1 txn not open")
	}
	if _, err := s2.Query("BEGIN"); !errors.Is(err, ErrTxnOpen) {
		t.Fatalf("second BEGIN for same principal: %v", err)
	}
	if got := ev.eng.Obs.Gauge("serve.txn.open").Get(); got != 1 {
		t.Fatalf("serve.txn.open = %d", got)
	}

	if cur, err = s1.Query("INSERT INTO ds.t VALUES (100, 1000)"); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	// Read-your-writes through the paged stream.
	cur, err = s1.Query("SELECT id FROM ds.t")
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 3 {
		t.Fatalf("in-txn rows = %d, want 3", got.N)
	}
	// The uncommitted row is invisible to other sessions.
	cur, err = s2.Query("SELECT id FROM ds.t")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := cur.All(); got.N != 2 {
		t.Fatalf("outside-txn rows = %d, want 2", got.N)
	}

	if cur, err = s1.Query("COMMIT"); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if s1.TxnOpen() {
		t.Fatal("txn still open after COMMIT")
	}
	if got := ev.eng.Obs.Gauge("serve.txn.open").Get(); got != 0 {
		t.Fatalf("serve.txn.open after commit = %d", got)
	}
	// The principal may BEGIN again, on any session.
	cur, err = s2.Query("BEGIN")
	if err != nil {
		t.Fatalf("BEGIN after commit: %v", err)
	}
	cur.Close()
	if cur, err = s2.Query("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	cur.Close()

	cur, err = s2.Query("SELECT id FROM ds.t")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := cur.All(); got.N != 3 {
		t.Fatalf("committed rows = %d, want 3", got.N)
	}
}

// TestSessionCloseRollsBackTxn checks the session teardown path: an
// abandoned session's transaction is rolled back and unregistered.
func TestSessionCloseRollsBackTxn(t *testing.T) {
	ev := newEnv(t, Config{})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 2)

	s1 := ev.open(t, adminP)
	cur, err := s1.Query("BEGIN")
	if err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if cur, err = s1.Query("INSERT INTO ds.t VALUES (5, 50)"); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// Buffered write discarded; principal free to BEGIN elsewhere.
	s2 := ev.open(t, adminP)
	defer s2.Close()
	cur, err = s2.Query("SELECT id FROM ds.t")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := cur.All(); got.N != 2 {
		t.Fatalf("rows after rollback = %d, want 2", got.N)
	}
	cur, err = s2.Query("BEGIN")
	if err != nil {
		t.Fatalf("BEGIN after close: %v", err)
	}
	cur.Close()
}

func TestClosedSessionRejectsWork(t *testing.T) {
	ev := newEnv(t, Config{})
	ev.createTable(t, "t")
	sess := ev.open(t, adminP)
	sess.Close()
	if _, err := sess.Parse("SELECT 1 FROM ds.t"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("parse on closed session: %v", err)
	}
	if _, err := ev.srv.Open(adminP, ""); err != nil {
		t.Fatal(err)
	}
	ev.srv.Close()
	if _, err := ev.srv.Open(adminP, ""); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("open on closed server: %v", err)
	}
}

// TestCursorSurvivesArenaRecycle pins the session-boundary copy-out:
// pages pulled from an open cursor must keep their values while other
// queries on the same engine recycle the query arena. The engine runs
// with GCLean on (the default), so without the Detach at cursor
// construction this reads recycled slabs.
func TestCursorSurvivesArenaRecycle(t *testing.T) {
	ev := newEnv(t, Config{PageRows: 4})
	ev.createTable(t, "t")
	ev.seedRows(t, "t", 20)

	sess := ev.open(t, adminP)
	defer sess.Close()

	p, err := sess.Parse("SELECT id, v FROM ds.t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Prepare(); err != nil {
		t.Fatal(err)
	}
	cur, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}

	next := int64(0)
	drain := func(pages int) {
		for i := 0; i < pages; i++ {
			pg, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if pg == nil {
				return
			}
			for r := 0; r < pg.N; r++ {
				if id := pg.Column("id").Value(r).AsInt(); id != next {
					t.Fatalf("page row %d: id = %d, want %d (stale arena data)", r, id, next)
				}
				next++
			}
		}
	}

	drain(2)
	// Interleave queries that grab and scribble over the pooled arena.
	for q := 0; q < 5; q++ {
		if _, err := ev.eng.Query(engine.NewContext(adminP, fmt.Sprintf("mid-%d", q)),
			"SELECT v, COUNT(*) AS n FROM ds.t GROUP BY v ORDER BY v"); err != nil {
			t.Fatal(err)
		}
	}
	drain(100)
	cur.Close()
	if next != 20 {
		t.Fatalf("drained %d rows, want 20", next)
	}
}
