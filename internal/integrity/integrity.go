// Package integrity defines the shared vocabulary of end-to-end data
// integrity: the checksum every durable byte range carries (CRC-32C,
// the polynomial object stores and Parquet implementations use for
// exactly this job) and the typed error that surfaces when verification
// fails. The paper's premise is that BigLake runs on commodity
// multi-cloud object stores where bit rot, torn writes, and stale reads
// are a fact of life; this package is the layer every component —
// colfmt files, WAL records, the scan path, the scrubber — bottoms out
// in, so "wrong data" always becomes a loud, classifiable error instead
// of a silent wrong answer.
//
// The package deliberately has no dependencies on the rest of the
// repository: objstore, colfmt, wal, resilience, and the engine all
// import it, never the reverse.
package integrity

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorrupt is the sentinel every integrity failure matches via
// errors.Is. The resilience layer classifies it as Corrupt: never
// blindly retried against the same bytes, only re-fetched from an
// alternate source or escalated to quarantine.
var ErrCorrupt = errors.New("integrity: data corruption detected")

// castagnoli is the CRC-32C table (iSCSI polynomial), shared and
// immutable after init.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of data — the checksum colfmt chunks,
// colfmt footers, and WAL records embed.
func Checksum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// Error is a typed corruption report naming exactly what failed
// verification, so a query error can say "table X, file Y, block Z"
// instead of "bad data somewhere". All fields are optional except
// Source; layers that lack context (colfmt verifying raw bytes) leave
// the location fields empty and callers that have it (the scan path)
// annotate them in.
type Error struct {
	// Source names the verification site: "colfmt.footer",
	// "colfmt.chunk", "wal.record", "objstore.stale",
	// "objstore.truncated", "engine.quarantine", "scrub".
	Source string
	// Table is the fully qualified table name, when known.
	Table string
	// Bucket/Key locate the corrupt object, when known.
	Bucket string
	Key    string
	// Block identifies the failing unit inside the object (a column
	// chunk, a row group, a journal record sequence number).
	Block string
	// Detail is the human-readable mismatch description.
	Detail string
}

// Error renders the report with every known location component.
func (e *Error) Error() string {
	msg := "integrity: " + e.Source
	if e.Table != "" {
		msg += " table=" + e.Table
	}
	if e.Bucket != "" || e.Key != "" {
		msg += " object=" + e.Bucket + "/" + e.Key
	}
	if e.Block != "" {
		msg += " block=" + e.Block
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// Is makes errors.Is(err, ErrCorrupt) true for every *Error.
func (e *Error) Is(target error) bool { return target == ErrCorrupt }

// Errorf builds a typed corruption error with a formatted detail.
func Errorf(source, format string, args ...any) *Error {
	return &Error{Source: source, Detail: fmt.Sprintf(format, args...)}
}

// Annotate fills the empty location fields of a corruption error with
// the caller's context and returns it; non-integrity errors pass
// through untouched. Layers add what they know as the error climbs:
// colfmt knows the block, the scan worker knows the object and table.
func Annotate(err error, table, bucket, key string) error {
	var ie *Error
	if !errors.As(err, &ie) {
		return err
	}
	if ie.Table == "" {
		ie.Table = table
	}
	if ie.Bucket == "" {
		ie.Bucket = bucket
	}
	if ie.Key == "" {
		ie.Key = key
	}
	return err
}
