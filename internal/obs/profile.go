package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Profile is the EXPLAIN ANALYZE view of one trace: the span tree
// annotated with per-operator rows/bytes/time and dominant-cost
// highlighting, rendered as text (for terminals) or JSON (for tools).
type Profile struct {
	QueryID  string        `json:"query_id"`
	SimTime  time.Duration `json:"sim_time_ns"`
	WallTime time.Duration `json:"wall_time_ns"`
	Root     *ProfileNode  `json:"root"`
}

// ProfileNode is one operator (span) of the profile.
type ProfileNode struct {
	Name string `json:"name"`
	// Simulated time: what the cloud cost model charged under this
	// operator (I/O latency, egress, backoff).
	SimStart time.Duration `json:"sim_start_ns"`
	SimTime  time.Duration `json:"sim_time_ns"`
	// SimSelf is SimTime minus the union of child intervals — the
	// operator's own charge, not double-counting overlapped children.
	SimSelf time.Duration `json:"sim_self_ns"`
	// Wall time: real CPU-bound cost (vectorized kernels).
	WallTime time.Duration     `json:"wall_time_ns"`
	Rows     int64             `json:"rows,omitempty"`
	Bytes    int64             `json:"bytes,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	// Dominant marks the most expensive child among its siblings (by
	// sim time when the parent is sim-bound, else by wall time).
	Dominant bool           `json:"dominant,omitempty"`
	Children []*ProfileNode `json:"children,omitempty"`
}

// BuildProfile converts a (finished) trace into a profile tree.
func BuildProfile(t *Trace) *Profile {
	root := t.Root()
	if root == nil {
		return nil
	}
	p := &Profile{
		QueryID:  t.QueryID,
		SimTime:  root.SimDuration(),
		WallTime: root.WallDuration(),
		Root:     buildNode(root),
	}
	markDominant(p.Root)
	return p
}

func buildNode(s *Span) *ProfileNode {
	n := &ProfileNode{
		Name:     s.Name(),
		SimStart: s.Start(),
		SimTime:  s.SimDuration(),
		WallTime: s.WallDuration(),
	}
	for _, a := range s.Attrs() {
		switch {
		case a.Key == "rows" && !a.IsStr:
			n.Rows = a.Int
		case a.Key == "bytes" && !a.IsStr:
			n.Bytes = a.Int
		default:
			if n.Attrs == nil {
				n.Attrs = map[string]string{}
			}
			if a.IsStr {
				n.Attrs[a.Key] = a.Str
			} else {
				n.Attrs[a.Key] = fmt.Sprintf("%d", a.Int)
			}
		}
	}
	kids := s.Children()
	for _, c := range kids {
		n.Children = append(n.Children, buildNode(c))
	}
	n.SimSelf = n.SimTime - childUnion(n)
	if n.SimSelf < 0 {
		n.SimSelf = 0
	}
	return n
}

// childUnion measures the union of child sim intervals, clipped to the
// parent: parallel scan workers overlap, so summing child durations
// would overcount.
func childUnion(n *ProfileNode) time.Duration {
	type iv struct{ a, b time.Duration }
	var ivs []iv
	for _, c := range n.Children {
		a, b := c.SimStart, c.SimStart+c.SimTime
		if a < n.SimStart {
			a = n.SimStart
		}
		if end := n.SimStart + n.SimTime; b > end {
			b = end
		}
		if b > a {
			ivs = append(ivs, iv{a, b})
		}
	}
	if len(ivs) == 0 {
		return 0
	}
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].a < ivs[j-1].a; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	var total time.Duration
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if v.a <= cur.b {
			if v.b > cur.b {
				cur.b = v.b
			}
			continue
		}
		total += cur.b - cur.a
		cur = v
	}
	total += cur.b - cur.a
	return total
}

// markDominant flags, within every sibling group, the child carrying
// the largest cost — sim time if any child charged sim time, wall time
// otherwise (pure-CPU subtrees).
func markDominant(n *ProfileNode) {
	if n == nil || len(n.Children) == 0 {
		return
	}
	simBound := false
	for _, c := range n.Children {
		if c.SimTime > 0 {
			simBound = true
		}
	}
	best := -1
	var bestCost time.Duration
	for i, c := range n.Children {
		cost := c.WallTime
		if simBound {
			cost = c.SimTime
		}
		if cost > bestCost {
			best, bestCost = i, cost
		}
	}
	if best >= 0 && bestCost > 0 {
		n.Children[best].Dominant = true
	}
	for _, c := range n.Children {
		markDominant(c)
	}
}

// Text renders the profile as an indented operator tree with per-node
// sim/wall time, percentage of the query total, rows/bytes, and a "*"
// marker on each dominant child.
func (p *Profile) Text() string {
	if p == nil {
		return "(no profile)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXPLAIN ANALYZE %s  sim=%v wall=%v\n", p.QueryID, p.SimTime, p.WallTime)
	var render func(n *ProfileNode, depth int)
	render = func(n *ProfileNode, depth int) {
		mark := " "
		if n.Dominant {
			mark = "*"
		}
		pct := 0.0
		if p.SimTime > 0 {
			pct = 100 * float64(n.SimTime) / float64(p.SimTime)
		} else if p.WallTime > 0 {
			pct = 100 * float64(n.WallTime) / float64(p.WallTime)
		}
		fmt.Fprintf(&sb, "%s%s%s  sim=%v self=%v wall=%v (%.1f%%)", strings.Repeat("  ", depth), mark, n.Name, n.SimTime, n.SimSelf, n.WallTime, pct)
		if n.Rows > 0 {
			fmt.Fprintf(&sb, " rows=%d", n.Rows)
		}
		if n.Bytes > 0 {
			fmt.Fprintf(&sb, " bytes=%d", n.Bytes)
		}
		for _, k := range sortedKeys(n.Attrs) {
			fmt.Fprintf(&sb, " %s=%s", k, n.Attrs[k])
		}
		sb.WriteString("\n")
		for _, c := range n.Children {
			render(c, depth+1)
		}
	}
	render(p.Root, 0)
	return sb.String()
}

func sortedKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// JSON renders the profile as indented JSON.
func (p *Profile) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}
