package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestHistogramObserveConcurrent hammers one histogram from parallel
// writers and checks the exact totals after join. Run under -race via
// make obs / make systables.
func TestHistogramObserveConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", []int64{10, 100, 1000})
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(i % 2000))
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot().Histograms["lat_us"]
	if snap.Count != workers*per {
		t.Fatalf("Count = %d, want %d", snap.Count, workers*per)
	}
	var wantSum int64
	for i := 0; i < per; i++ {
		wantSum += int64(i % 2000)
	}
	wantSum *= workers
	if snap.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", snap.Sum, wantSum)
	}
	var bucketSum int64
	for _, c := range snap.Counts {
		bucketSum += c
	}
	if bucketSum != snap.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, snap.Count)
	}
	// Exact per-bucket expectations for the 0..1999 cycle (bounds are
	// inclusive upper edges): <=10 → 11 values, <=100 → 90, <=1000 →
	// 900, overflow → 999.
	want := []int64{11, 90, 900, 999}
	for i, w := range want {
		if snap.Counts[i] != w*workers*(per/2000) {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], w*workers*(per/2000))
		}
	}
}

// TestSnapshotUnderConcurrentWriters snapshots continuously while
// counters, gauges, histograms, and events are written, asserting
// per-counter monotonicity across successive snapshots and exact
// finals after join.
func TestSnapshotUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers, per = 6, 5000
	stop := make(chan struct{})
	var snapErr error
	var snapWg sync.WaitGroup
	snapWg.Add(1)
	go func() {
		defer snapWg.Done()
		last := map[string]int64{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			for name, v := range snap.Counters {
				if v < last[name] {
					snapErr = fmt.Errorf("counter %s went backwards: %d -> %d", name, last[name], v)
					return
				}
				last[name] = v
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter(fmt.Sprintf("c%d", w%3))
			g := r.Gauge("g")
			h := r.Histogram("h", []int64{50})
			for i := 0; i < per; i++ {
				c.Add(1)
				g.Set(int64(i))
				h.Observe(int64(i % 100))
				if i%1000 == 0 {
					r.Event("stream", fmt.Sprintf("w%d-%d", w, i))
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWg.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	snap := r.Snapshot()
	var total int64
	for i := 0; i < 3; i++ {
		total += snap.Counters[fmt.Sprintf("c%d", i)]
	}
	if total != workers*per {
		t.Fatalf("counter total = %d, want %d", total, workers*per)
	}
	if h := snap.Histograms["h"]; h.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*per)
	}
	if evs := len(snap.Events["stream"]); evs != workers*(per/1000) {
		t.Fatalf("events = %d, want %d", evs, workers*(per/1000))
	}
}
