package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentIncrements hammers one registry from many
// goroutines — counters, gauges, histograms, and event streams at once
// — and asserts the final snapshot is exact. Run under -race this is
// the registry's core safety claim.
func TestRegistryConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hot := r.Counter("hot.count") // pre-resolved hot-path handle
			for i := 0; i < perWorker; i++ {
				hot.Add(1)
				r.Add("cold.count", 2) // name-lookup path
				r.Gauge("g").Set(int64(i))
				r.Histogram("h", []int64{10, 100, 1000}).Observe(int64(i % 2000))
				if i%500 == 0 {
					r.Event("evs", fmt.Sprintf("w%d-%d", w, i))
				}
			}
		}(w)
	}

	// Snapshots taken mid-flight must be internally consistent and
	// never panic; values only grow.
	var last int64
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		if c := snap.Counters["hot.count"]; c < last {
			t.Fatalf("counter went backwards: %d -> %d", last, c)
		} else {
			last = c
		}
	}
	wg.Wait()

	snap := r.Snapshot()
	if got, want := snap.Counters["hot.count"], int64(workers*perWorker); got != want {
		t.Fatalf("hot.count = %d, want %d", got, want)
	}
	if got, want := snap.Counters["cold.count"], int64(2*workers*perWorker); got != want {
		t.Fatalf("cold.count = %d, want %d", got, want)
	}
	h := snap.Histograms["h"]
	if h.Count != int64(workers*perWorker) {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	var bucketSum int64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count)
	}
	if got, want := len(snap.Events["evs"]), workers*(perWorker/500); got != want {
		t.Fatalf("events = %d, want %d", got, want)
	}
	// Event streams snapshot in canonical sorted order.
	evs := snap.Events["evs"]
	for i := 1; i < len(evs); i++ {
		if evs[i] < evs[i-1] {
			t.Fatalf("events not sorted: %q after %q", evs[i], evs[i-1])
		}
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Add("x", 1)
	r.Counter("x").Add(1)
	r.Gauge("g").Set(9)
	r.Histogram("h", []int64{1}).Observe(5)
	r.Event("s", "e")
	if got := r.Get("x"); got != 0 {
		t.Fatalf("nil registry Get = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot has counters: %v", snap.Counters)
	}
	r.Prefixed("p.").Add("x", 1) // must not panic
}

func TestTeeAndPrefixed(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	sink := Tee(a.Prefixed("alpha."), b, nil)
	sink.Add("retries", 3)
	if got := a.Get("alpha.retries"); got != 3 {
		t.Fatalf("prefixed tee leg = %d, want 3", got)
	}
	if got := b.Get("retries"); got != 3 {
		t.Fatalf("plain tee leg = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	hs := r.Snapshot().Histograms["lat"]
	want := []int64{2, 2, 2} // <=10, <=100, overflow
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Sum != 1+10+11+100+101+5000 {
		t.Fatalf("sum = %d", hs.Sum)
	}
}
