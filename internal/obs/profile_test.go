package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildSampleTrace makes a two-operator trace: a sim-dominated scan
// with two overlapping file reads and a wall-only join.
func buildSampleTrace() (*Trace, *fakeClock) {
	clock := &fakeClock{}
	tr := NewTrace("q-profile", clock)
	root := tr.Root()

	scan := root.Child("scan t")
	w1 := &fakeClock{now: clock.Now()}
	w2 := &fakeClock{now: clock.Now()}
	f1 := scan.ChildAt(w1, "file a")
	f1.SetLane(0)
	f1.SetInt("bytes", 1000)
	w1.advance(10 * time.Millisecond)
	f1.End()
	f2 := scan.ChildAt(w2, "file b")
	f2.SetLane(1)
	f2.SetInt("bytes", 2000)
	w2.advance(6 * time.Millisecond)
	f2.End()
	clock.advance(10 * time.Millisecond) // join of the worker frontiers
	scan.SetInt("rows", 500)
	scan.End()

	join := root.Child("join")
	join.SetInt("rows", 500)
	join.End() // zero sim time: pure CPU
	tr.Finish()
	return tr, clock
}

func TestBuildProfile(t *testing.T) {
	tr, _ := buildSampleTrace()
	p := BuildProfile(tr)
	if p == nil || p.Root == nil {
		t.Fatal("nil profile")
	}
	if p.SimTime != 10*time.Millisecond {
		t.Fatalf("profile sim time %v, want 10ms", p.SimTime)
	}
	var scan *ProfileNode
	for _, c := range p.Root.Children {
		if strings.HasPrefix(c.Name, "scan") {
			scan = c
		}
	}
	if scan == nil {
		t.Fatal("no scan node")
	}
	if !scan.Dominant {
		t.Fatal("scan (the only sim-charged child) must be dominant")
	}
	if scan.Rows != 500 {
		t.Fatalf("scan rows %d", scan.Rows)
	}
	// The two file reads overlap 0–10ms and 0–6ms: the union is 10ms,
	// so the scan's self time is 0, not 10-16 clamped.
	if scan.SimSelf != 0 {
		t.Fatalf("scan self %v, want 0 (children cover the interval)", scan.SimSelf)
	}
	var fileBytes int64
	for _, f := range scan.Children {
		fileBytes += f.Bytes
	}
	if fileBytes != 3000 {
		t.Fatalf("file bytes %d", fileBytes)
	}

	text := p.Text()
	for _, want := range []string{"EXPLAIN ANALYZE q-profile", "scan t", "join", "rows=500", "*scan"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text render missing %q:\n%s", want, text)
		}
	}
	if _, err := p.JSON(); err != nil {
		t.Fatalf("json render: %v", err)
	}
}

// TestChromeTraceValid asserts the exporter emits a valid Chrome-trace
// JSON array of ph/ts/dur events — the acceptance shape Perfetto
// loads.
func TestChromeTraceValid(t *testing.T) {
	tr, _ := buildSampleTrace()
	data, err := ChromeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	var complete int
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		if ph == "M" {
			continue // process-name metadata
		}
		if ph != "X" {
			t.Fatalf("unexpected phase %q in %v", ph, ev)
		}
		complete++
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event missing numeric ts: %v", ev)
		}
		if _, ok := ev["dur"].(float64); !ok {
			t.Fatalf("event missing numeric dur: %v", ev)
		}
		if name, _ := ev["name"].(string); name == "" {
			t.Fatalf("event missing name: %v", ev)
		}
	}
	// root + scan + 2 files + join
	if complete != 5 {
		t.Fatalf("complete events = %d, want 5", complete)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	data, err := ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Fatalf("empty export = %s, want []", data)
	}
}
