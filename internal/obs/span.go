package obs

import (
	"sync"
	"time"
)

// Clock is the simulated time source spans read. Both *sim.Clock and
// *sim.Track satisfy it (the engine's parallel scan workers time their
// spans on their own track frontier). Declared here so obs depends on
// nothing above the standard library.
type Clock interface {
	Now() time.Duration
}

// Attr is one span attribute: an integer (rows, bytes, generation) or
// a string (table name, cache hit/miss). A small struct slice beats a
// map: attribute sets are tiny and append-only.
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// Span is one timed node of a query's trace tree. It records both
// simulated time (what the cloud cost model charges — I/O, latency,
// egress) and real wall time (what the CPU-bound vectorized kernels
// actually cost), because the two diverge by design: a scan is
// sim-dominated, a hash join is wall-dominated.
//
// Every method is nil-safe: with tracing disabled the engine threads a
// nil *Span through the whole lifecycle and no allocation or time
// lookup ever happens. Callers that build dynamic span names must
// guard the construction itself (`if sp != nil`) so the name string is
// not allocated on the disabled path.
type Span struct {
	name  string
	clock Clock
	lane  int

	start  time.Duration // simulated
	wstart time.Time     // wall

	mu       sync.Mutex
	ended    bool
	end      time.Duration // simulated
	wdur     time.Duration // wall
	attrs    []Attr
	children []*Span
}

func newSpan(name string, c Clock, lane int) *Span {
	sp := &Span{name: name, clock: c, lane: lane, wstart: time.Now()}
	if c != nil {
		sp.start = c.Now()
	}
	return sp
}

// Child opens a sub-span timed on the parent's clock and lane.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, s.clock, s.lane)
}

// ChildAt opens a sub-span timed on a different clock — a parallel
// worker's sim.Track — so per-file scan spans start and end on the
// frontier that actually paid their latency.
func (s *Span) ChildAt(c Clock, name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, c, s.lane)
}

func (s *Span) child(name string, c Clock, lane int) *Span {
	sp := newSpan(name, c, lane)
	s.mu.Lock()
	s.children = append(s.children, sp)
	s.mu.Unlock()
	return sp
}

// SetLane tags the span with a worker-lane index; the Chrome-trace
// exporter maps lanes to threads so parallel file reads render as
// parallel tracks instead of one overlapping pile.
func (s *Span) SetLane(lane int) {
	if s != nil {
		s.lane = lane
	}
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
	s.mu.Unlock()
}

// SetStr records a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
	s.mu.Unlock()
}

// End closes the span at its clock's current frontier. The end time is
// clamped so the span always contains its children and never precedes
// its own start — parallel worker tracks can run ahead of the global
// clock until the scan joins them, and the invariant "children nest
// within the parent's bounds" is what the profile renderer and the
// span-tree tests rely on.
func (s *Span) End() {
	if s == nil {
		return
	}
	var now time.Duration
	if s.clock != nil {
		now = s.clock.Now()
	}
	wd := time.Since(s.wstart)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = s.clampEndLocked(now)
	s.wdur = wd
	s.mu.Unlock()
}

// clampEndLocked returns the effective end: at least the start, at
// least every (ended) child's end. Callers hold s.mu.
func (s *Span) clampEndLocked(end time.Duration) time.Duration {
	if end < s.start {
		end = s.start
	}
	for _, c := range s.children {
		c.mu.Lock()
		cEnd, cDone := c.end, c.ended
		c.mu.Unlock()
		if cDone && cEnd > end {
			end = cEnd
		}
	}
	return end
}

// finish force-ends the span and every descendant, bottom-up, so a
// trace never leaks unended spans (a query error path may unwind past
// an End call). Already-ended spans are untouched.
func (s *Span) finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.finish()
	}
	s.End()
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Lane returns the worker-lane tag.
func (s *Span) Lane() int {
	if s == nil {
		return 0
	}
	return s.lane
}

// Start returns the simulated start time.
func (s *Span) Start() time.Duration {
	if s == nil {
		return 0
	}
	return s.start
}

// EndTime returns the simulated end time (start if unended).
func (s *Span) EndTime() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return s.start
	}
	return s.end
}

// SimDuration returns the simulated duration (0 if unended).
func (s *Span) SimDuration() time.Duration { return s.EndTime() - s.Start() }

// WallDuration returns the real elapsed duration (0 if unended).
func (s *Span) WallDuration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wdur
}

// Ended reports whether End has run.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Attrs returns a copy of the attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// IntAttr returns the last value of an integer attribute (0, false if
// absent).
func (s *Span) IntAttr(key string) (int64, bool) {
	var v int64
	var ok bool
	for _, a := range s.Attrs() {
		if a.Key == key && !a.IsStr {
			v, ok = a.Int, true
		}
	}
	return v, ok
}

// StrAttr returns the last value of a string attribute.
func (s *Span) StrAttr(key string) (string, bool) {
	var v string
	var ok bool
	for _, a := range s.Attrs() {
		if a.Key == key && a.IsStr {
			v, ok = a.Str, true
		}
	}
	return v, ok
}

// Children returns a copy of the child list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits the span and every descendant, depth-first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children() {
		c.Walk(fn)
	}
}

// Trace is one query's span tree.
type Trace struct {
	QueryID string
	root    *Span
}

// NewTrace starts a trace whose root span ("query") is timed on c.
func NewTrace(queryID string, c Clock) *Trace {
	return &Trace{QueryID: queryID, root: newSpan("query", c, 0)}
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish force-ends every unended span bottom-up. Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.finish()
}

// Spans returns every span of the tree, depth-first.
func (t *Trace) Spans() []*Span {
	var out []*Span
	t.Root().Walk(func(s *Span) { out = append(out, s) })
	return out
}

// Find returns every span with the given name.
func (t *Trace) Find(name string) []*Span {
	var out []*Span
	t.Root().Walk(func(s *Span) {
		if s.Name() == name {
			out = append(out, s)
		}
	})
	return out
}

// Tracer collects completed traces. A nil *Tracer disables tracing:
// Start returns a nil *Trace whose nil root span turns every
// downstream instrumentation call into a no-op.
type Tracer struct {
	// Cap bounds retained traces (0 = unlimited): long soaks like the
	// differential fuzzer keep the most recent Cap traces.
	Cap int

	mu     sync.Mutex
	traces []*Trace
}

// Start opens and records a new trace.
func (tr *Tracer) Start(queryID string, c Clock) *Trace {
	if tr == nil {
		return nil
	}
	t := NewTrace(queryID, c)
	tr.mu.Lock()
	tr.traces = append(tr.traces, t)
	if tr.Cap > 0 && len(tr.traces) > tr.Cap {
		tr.traces = tr.traces[len(tr.traces)-tr.Cap:]
	}
	tr.mu.Unlock()
	return t
}

// Traces returns a copy of the retained traces, oldest first.
func (tr *Tracer) Traces() []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*Trace(nil), tr.traces...)
}

// Last returns the most recent trace (nil if none).
func (tr *Tracer) Last() *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.traces) == 0 {
		return nil
	}
	return tr.traces[len(tr.traces)-1]
}

// Reset drops every retained trace.
func (tr *Tracer) Reset() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.traces = nil
	tr.mu.Unlock()
}
