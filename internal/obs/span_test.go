package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable Clock; tests drive it like sim.Clock tracks.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// TestSpanTreeInvariants builds a tree with parallel "worker" clocks
// running ahead of the parent clock and asserts, after Finish: every
// span is ended, and every child nests within its parent's sim-time
// bounds — including the case where a worker frontier outran the
// parent's clock at End time.
func TestSpanTreeInvariants(t *testing.T) {
	clock := &fakeClock{}
	tr := &Tracer{}
	trace := tr.Start("q1", clock)
	root := trace.Root()

	scan := root.Child("scan")
	var wg sync.WaitGroup
	workers := make([]*fakeClock, 4)
	for i := range workers {
		workers[i] = &fakeClock{now: clock.Now()}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := workers[i]
			sp := scan.ChildAt(w, "file")
			sp.SetLane(i)
			sp.SetInt("bytes", int64(100*i))
			w.advance(time.Duration(i+1) * 10 * time.Millisecond)
			sp.End()
		}(i)
	}
	wg.Wait()
	// The global clock lags the worker frontiers; scan.End must clamp
	// its end up to the latest child.
	scan.End()

	join := root.Child("join")
	clock.advance(5 * time.Millisecond)
	// join deliberately not ended: Finish must close it.
	_ = join

	orphanCheck := map[*Span]bool{}
	trace.Finish()

	for _, s := range trace.Spans() {
		if !s.Ended() {
			t.Fatalf("span %q not ended after Finish", s.Name())
		}
		orphanCheck[s] = true
	}
	// No orphans: every span reachable from a parent is in the tree
	// (membership check via Children walk must cover Spans()).
	if len(orphanCheck) != 1+1+4+1 { // root + scan + 4 files + join
		t.Fatalf("span count = %d, want 7", len(orphanCheck))
	}
	var checkNesting func(p *Span)
	checkNesting = func(p *Span) {
		for _, c := range p.Children() {
			if c.Start() < p.Start() {
				t.Fatalf("child %q starts %v before parent %q start %v", c.Name(), c.Start(), p.Name(), p.Start())
			}
			if c.EndTime() > p.EndTime() {
				t.Fatalf("child %q ends %v after parent %q end %v", c.Name(), c.EndTime(), p.Name(), p.EndTime())
			}
			checkNesting(c)
		}
	}
	checkNesting(root)

	// The slowest worker ran to 40ms; scan and root must contain it.
	if scan.EndTime() < 40*time.Millisecond {
		t.Fatalf("scan end %v does not contain slowest worker (40ms)", scan.EndTime())
	}
}

func TestSpanAttrs(t *testing.T) {
	c := &fakeClock{}
	tr := NewTrace("q", c)
	sp := tr.Root().Child("op")
	sp.SetInt("rows", 10)
	sp.SetStr("cache", "hit")
	sp.SetInt("rows", 42) // last write wins on read
	if v, ok := sp.IntAttr("rows"); !ok || v != 42 {
		t.Fatalf("rows attr = %d,%v", v, ok)
	}
	if v, ok := sp.StrAttr("cache"); !ok || v != "hit" {
		t.Fatalf("cache attr = %q,%v", v, ok)
	}
	if _, ok := sp.IntAttr("missing"); ok {
		t.Fatal("missing attr found")
	}
}

// TestNilSpanNoOps covers the disabled path: a nil tracer yields a nil
// trace/span tree on which the full instrumentation surface is a
// no-op.
func TestNilSpanNoOps(t *testing.T) {
	var tr *Tracer
	trace := tr.Start("q", &fakeClock{})
	if trace != nil {
		t.Fatal("nil tracer returned a trace")
	}
	sp := trace.Root()
	if sp != nil {
		t.Fatal("nil trace returned a span")
	}
	c := sp.Child("x")
	c.SetInt("rows", 1)
	c.SetStr("k", "v")
	c.SetLane(3)
	c.End()
	trace.Finish()
	if got := c.SimDuration(); got != 0 {
		t.Fatalf("nil span duration %v", got)
	}
	if tr.Last() != nil || tr.Traces() != nil {
		t.Fatal("nil tracer retained traces")
	}
}

func TestTracerCap(t *testing.T) {
	tr := &Tracer{Cap: 3}
	c := &fakeClock{}
	for i := 0; i < 10; i++ {
		tr.Start("q", c)
	}
	if got := len(tr.Traces()); got != 3 {
		t.Fatalf("retained %d traces, want 3", got)
	}
}

// BenchmarkSpanDisabled is the acceptance benchmark: with tracing
// disabled (nil span, the state the hot morsel loop sees), span calls
// must not allocate.
func BenchmarkSpanDisabled(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sp.Child("file")
		c.SetInt("rows", int64(i))
		c.SetStr("cache", "miss")
		c.End()
	}
}

// BenchmarkSpanEnabled is the reference cost with tracing on; not a
// gate, just keeps the enabled overhead visible in bench output.
func BenchmarkSpanEnabled(b *testing.B) {
	clock := &fakeClock{}
	tr := NewTrace("bench", clock)
	root := tr.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := root.Child("file")
		c.SetInt("rows", int64(i))
		c.End()
	}
}

func TestSpanDisabledZeroAllocs(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c := sp.Child("file")
		c.SetInt("rows", 1)
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f/op, want 0", allocs)
	}
}
