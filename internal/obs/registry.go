// Package obs is the unified observability layer: a process-wide
// metrics registry (counters, gauges, fixed-bucket histograms, event
// streams), hierarchical trace spans over simulated and real time, and
// renderers (EXPLAIN ANALYZE profiles, Chrome-trace export) that turn
// a query execution into an explainable artifact instead of a black-box
// number.
//
// Design constraints, in priority order:
//
//  1. Near-zero cost when disabled. Every span entry point is nil-safe:
//     a nil *Span or nil *Tracer turns the whole tree of calls into
//     no-ops without a single allocation, so the hot morsel loop pays
//     one predictable-branch nil check.
//  2. Race-safe always. Counters are single atomics; histograms are
//     arrays of atomics; snapshots are consistent copies taken under a
//     read lock. Parallel scan workers hammer these from 16 goroutines.
//  3. Stable dotted names. Components register metrics under
//     "<component>.<operation>.<unit>" (objstore.get.count,
//     engine.scan.cache_hit, resilience.retries) so dashboards and
//     assertions survive refactors of the code behind them.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods
// are nil-safe so callers can hold pre-resolved counters without
// guarding on whether observability is installed.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by v (no-op on nil).
func (c *Counter) Add(v int64) {
	if c != nil {
		c.v.Add(v)
	}
}

// Get returns the current value (0 on nil).
func (c *Counter) Get() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins atomic gauge.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Get returns the last recorded value (0 on nil).
func (g *Gauge) Get() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 samples (bytes,
// microseconds, rows). Bucket i counts samples <= Bounds[i]; one
// overflow bucket counts the rest. Observation is lock-free.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1, last = overflow
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample (no-op on nil).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a consistent copy of one histogram.
type HistogramSnapshot struct {
	Bounds []int64
	Counts []int64 // len(Bounds)+1, last = overflow
	Count  int64
	Sum    int64
}

// Sink is anything that accepts named integer increments. Both
// *sim.Meter and the registry adapters below satisfy it, so components
// can feed legacy meters and the unified registry through one field.
type Sink interface {
	Add(name string, v int64)
}

// Registry is the unified metrics registry. The zero of *Registry
// (nil) is a valid no-op sink: every method checks the receiver.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	events   map[string][]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		events:   make(map[string][]string),
	}
}

// Counter returns (creating if needed) the named counter. Callers on
// hot paths should resolve once and hold the *Counter: Add on the
// result is a single atomic increment. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add increments the named counter — the convenience path for cold
// call sites. Registry itself satisfies Sink.
func (r *Registry) Add(name string, v int64) {
	r.Counter(name).Add(v)
}

// Get returns the named counter's current value (0 if absent).
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[name].Get()
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Bounds
// are fixed at first registration; later calls ignore them.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Event appends one event to a named stream (e.g. every injected
// object-store fault goes to "objstore.faults"). Streams surface in
// Snapshot in canonical sorted order, so two same-seed chaos runs can
// be compared directly regardless of goroutine interleaving.
func (r *Registry) Event(stream, ev string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events[stream] = append(r.events[stream], ev)
	r.mu.Unlock()
}

// Snapshot is a consistent point-in-time copy of the registry.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
	// Events holds each stream sorted canonically (not arrival order):
	// the determinism contract chaos tests compare across runs.
	Events map[string][]string
}

// Snapshot copies every metric under the read lock. Counter values are
// atomic loads, so the copy is consistent even while writers run.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Events:     map[string][]string{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Get()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Get()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.buckets)),
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		snap.Histograms[name] = hs
	}
	for stream, evs := range r.events {
		cp := append([]string(nil), evs...)
		sort.Strings(cp)
		snap.Events[stream] = cp
	}
	return snap
}

// Events returns one stream from a fresh snapshot — the replacement
// for bespoke sorted-log accessors like the old objstore FaultLog.
func (r *Registry) Events(stream string) []string {
	return r.Snapshot().Events[stream]
}

// Prefixed returns a Sink that routes Add(name, v) to the registry
// under prefix+name — how components with legacy short meter names
// ("retries") publish dotted registry names ("resilience.retries").
func (r *Registry) Prefixed(prefix string) Sink {
	return prefixedSink{r: r, prefix: prefix}
}

type prefixedSink struct {
	r      *Registry
	prefix string
}

func (p prefixedSink) Add(name string, v int64) { p.r.Add(p.prefix+name, v) }

// Tee fans one Sink write out to several (nil entries are skipped at
// construction). Used to keep legacy sim.Meter names alive while the
// same increments land in the registry under dotted names.
func Tee(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	return teeSink(kept)
}

type teeSink []Sink

func (t teeSink) Add(name string, v int64) {
	for _, s := range t {
		s.Add(name, v)
	}
}
