package obs

import (
	"encoding/json"
	"strconv"
	"time"
)

// chromeEvent is one Chrome-trace (catapult) "complete" event. The
// format is the JSON array form consumed by chrome://tracing and
// Perfetto: ph "X" events with microsecond ts/dur.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace renders traces as a Chrome-trace JSON array. Each trace
// becomes one "process" (pid = its 1-based index, labelled with the
// query ID); span lanes map to thread IDs so parallel scan workers
// render as parallel tracks. Timestamps are the spans' simulated
// times in microseconds.
func ChromeTrace(traces ...*Trace) ([]byte, error) {
	events := []chromeEvent{}
	for i, t := range traces {
		root := t.Root()
		if root == nil {
			continue
		}
		pid := i + 1
		events = append(events, chromeEvent{
			Name: "process_name", Cat: "__metadata", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": t.QueryID},
		})
		root.Walk(func(s *Span) {
			ev := chromeEvent{
				Name: s.Name(),
				Cat:  t.QueryID,
				Ph:   "X",
				Ts:   float64(s.Start()) / float64(time.Microsecond),
				Dur:  float64(s.SimDuration()) / float64(time.Microsecond),
				Pid:  pid,
				Tid:  s.Lane() + 1,
			}
			attrs := s.Attrs()
			if wall := s.WallDuration(); wall > 0 || len(attrs) > 0 {
				ev.Args = map[string]string{}
				if wall > 0 {
					ev.Args["wall"] = wall.String()
				}
				for _, a := range attrs {
					if a.IsStr {
						ev.Args[a.Key] = a.Str
					} else {
						ev.Args[a.Key] = strconv.FormatInt(a.Int, 10)
					}
				}
			}
			events = append(events, ev)
		})
	}
	return json.Marshal(events)
}
