package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"biglake/internal/objstore"
	"biglake/internal/sim"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{fmt.Errorf("op: %w", objstore.ErrTransient), Retryable},
		{fmt.Errorf("op: %w", objstore.ErrPreconditionFail), CASConflict},
		{fmt.Errorf("op: %w", ErrDeadlineExceeded), Deadline},
		{fmt.Errorf("op: %w", objstore.ErrAccessDenied), Fatal},
		{fmt.Errorf("op: %w", objstore.ErrNoSuchObject), Fatal},
		{errors.New("garbage"), Fatal},
		// Deadline wins over the fault being retried when time ran out.
		{fmt.Errorf("x: %w (while retrying %w)", ErrDeadlineExceeded, objstore.ErrTransient), Deadline},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDoRetriesTransientWithBackoff(t *testing.T) {
	clock := sim.NewClock()
	meter := &sim.Meter{}
	p := DefaultPolicy()
	p.Meter = meter
	b := NewBudget(clock, 10, 1)

	calls := 0
	err := p.Do(clock, b, "GET b/k", func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("boom: %w", objstore.ErrTransient)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	if clock.Now() == 0 {
		t.Fatal("retries charged no backoff to the simulated clock")
	}
	if meter.Get("retries") != 2 || meter.Get("retry_successes") != 1 {
		t.Fatalf("retries=%d retry_successes=%d", meter.Get("retries"), meter.Get("retry_successes"))
	}
	if b.Remaining() != 8 {
		t.Fatalf("budget remaining = %d", b.Remaining())
	}
}

func TestDoSurfacesFatalImmediately(t *testing.T) {
	clock := sim.NewClock()
	p := DefaultPolicy()
	calls := 0
	err := p.Do(clock, nil, "GET b/k", func() error {
		calls++
		return fmt.Errorf("no: %w", objstore.ErrAccessDenied)
	})
	if !errors.Is(err, objstore.ErrAccessDenied) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if clock.Now() != 0 {
		t.Fatal("fatal error must not charge backoff")
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := DefaultPolicy() // 4 attempts
	calls := 0
	err := p.Do(sim.NewClock(), nil, "GET b/k", func() error {
		calls++
		return fmt.Errorf("boom: %w", objstore.ErrTransient)
	})
	if calls != 4 {
		t.Fatalf("calls = %d", calls)
	}
	if !errors.Is(err, objstore.ErrTransient) {
		t.Fatalf("exhaustion must keep the cause: %v", err)
	}
}

func TestDoStopsOnBudgetExhaustion(t *testing.T) {
	clock := sim.NewClock()
	b := NewBudget(clock, 1, 1) // one retry for everything
	p := DefaultPolicy()
	calls := 0
	err := p.Do(clock, b, "GET b/k", func() error {
		calls++
		return fmt.Errorf("boom: %w", objstore.ErrTransient)
	})
	if calls != 2 {
		t.Fatalf("calls = %d, want first attempt + 1 budgeted retry", calls)
	}
	if !errors.Is(err, ErrBudgetExhausted) || !errors.Is(err, objstore.ErrTransient) {
		t.Fatalf("err = %v, want ErrBudgetExhausted wrapping the cause", err)
	}
}

func TestDeadlineStopsRetrying(t *testing.T) {
	clock := sim.NewClock()
	b := NewBudget(clock, 100, 1)
	b.SetDeadline(50 * time.Millisecond)
	p := DefaultPolicy()
	calls := 0
	err := p.Do(clock, b, "GET b/k", func() error {
		calls++
		clock.Advance(40 * time.Millisecond) // each attempt costs 40ms
		return fmt.Errorf("boom: %w", objstore.ErrTransient)
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if Classify(err) != Deadline {
		t.Fatalf("class = %v", Classify(err))
	}
	if calls > 2 {
		t.Fatalf("kept retrying past the deadline: %d calls", calls)
	}
}

func TestDeadlineSeesParallelTrackFrontier(t *testing.T) {
	clock := sim.NewClock()
	b := NewBudget(clock, 100, 1)
	b.SetDeadline(10 * time.Millisecond)
	tr := clock.StartTrack()
	tr.Charge(20 * time.Millisecond) // track is past the deadline; clock is not
	err := b.CheckDeadline(tr)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("track frontier not consulted: %v", err)
	}
	if err := b.CheckDeadline(clock); err != nil {
		t.Fatalf("global clock is still before the deadline: %v", err)
	}
}

func TestDoCASReloadsOnConflict(t *testing.T) {
	p := DefaultPolicy()
	clock := sim.NewClock()
	gen, have := 0, 3 // writer believes gen 0; store is at 3
	reloads := 0
	err := p.DoCAS(clock, nil, "PUT b/hint", func() error {
		if gen != have {
			return fmt.Errorf("%w: have %d want %d", objstore.ErrPreconditionFail, have, gen)
		}
		have++
		return nil
	}, func() error {
		reloads++
		gen = have
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if reloads != 1 {
		t.Fatalf("reloads = %d", reloads)
	}
}

func TestDoCASBoundedOnPersistentConflict(t *testing.T) {
	p := DefaultPolicy()
	err := p.DoCAS(sim.NewClock(), nil, "PUT b/hint", func() error {
		return fmt.Errorf("%w: contended", objstore.ErrPreconditionFail)
	}, func() error { return nil })
	if !errors.Is(err, objstore.ErrPreconditionFail) {
		t.Fatalf("err = %v", err)
	}
}

func TestHedgedDoRacesSlowPrimary(t *testing.T) {
	clock := sim.NewClock()
	meter := &sim.Meter{}
	p := DefaultPolicy() // HedgeAfter 150ms
	p.Meter = meter
	slowOnce := true
	err := p.HedgedDo(clock, nil, "GET b/k", func(ch sim.Charger) error {
		if slowOnce {
			slowOnce = false
			ch.Charge(500 * time.Millisecond) // tail event
		} else {
			ch.Charge(30 * time.Millisecond) // hedge runs at normal speed
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Caller pays HedgeAfter + hedge latency, not the 500ms tail.
	want := 150*time.Millisecond + 30*time.Millisecond
	if clock.Now() != want {
		t.Fatalf("charged %v, want %v", clock.Now(), want)
	}
	if meter.Get("hedges") != 1 || meter.Get("hedge_wins") != 1 {
		t.Fatalf("hedges=%d wins=%d", meter.Get("hedges"), meter.Get("hedge_wins"))
	}
}

func TestHedgedDoFastPrimaryDoesNotHedge(t *testing.T) {
	clock := sim.NewClock()
	meter := &sim.Meter{}
	p := DefaultPolicy()
	p.Meter = meter
	if err := p.HedgedDo(clock, nil, "GET b/k", func(ch sim.Charger) error {
		ch.Charge(30 * time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != 30*time.Millisecond {
		t.Fatalf("charged %v", clock.Now())
	}
	if meter.Get("hedges") != 0 {
		t.Fatal("fast primary must not hedge")
	}
}

func TestNilPolicyAndNilBudgetAreSafe(t *testing.T) {
	var p *Policy
	clock := sim.NewClock()
	calls := 0
	err := p.Do(clock, nil, "GET b/k", func() error {
		calls++
		return fmt.Errorf("boom: %w", objstore.ErrTransient)
	})
	if calls != 1 || !errors.Is(err, objstore.ErrTransient) {
		t.Fatalf("nil policy: calls=%d err=%v", calls, err)
	}
	if err := p.HedgedDo(clock, nil, "GET b/k", func(ch sim.Charger) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestListAllRetriesPerPage(t *testing.T) {
	clock := sim.NewClock()
	st := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa@test"}
	if err := st.CreateBucket(cred, "b"); err != nil {
		t.Fatal(err)
	}
	// Enough objects for multiple LIST pages.
	for i := 0; i < 2500; i++ {
		if _, err := st.Put(cred, "b", fmt.Sprintf("p/k%04d", i), []byte("x"), ""); err != nil {
			t.Fatal(err)
		}
	}
	st.FailNext(1) // first page faults once
	got, err := ListAll(DefaultPolicy(), clock, NewBudget(clock, 8, 1), st, cred, "b", "p/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2500 {
		t.Fatalf("listed %d objects", len(got))
	}
}

func TestSeed64Stable(t *testing.T) {
	if Seed64("q1") == Seed64("q2") {
		t.Fatal("different strings should hash differently")
	}
	if Seed64("q1") != Seed64("q1") {
		t.Fatal("seed must be stable")
	}
}
