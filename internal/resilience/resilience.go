// Package resilience is the shared retry/backoff/hedging layer between
// BigLake's components and the object stores they consume. The paper
// assumes throughout (§3.3 Storage API, §3.5 BLMT) that the engine —
// not the user — absorbs the transient faults, throttling, and tail
// latency endemic to cloud object stores; this package centralizes that
// absorption so every consumer (query scans, read/write API sessions,
// metadata cache refresh, compaction, Iceberg snapshot export, omni
// cross-cloud transfers) applies one policy:
//
//   - capped exponential backoff with full jitter, charged to the
//     simulated clock (never wall-clock sleeps),
//   - a per-query retry budget plus a simulated-time deadline, so a
//     retry storm is bounded twice over,
//   - error classification separating retryable transients from
//     fatal errors, CAS conflicts (retryable only after a reload),
//     and deadline expiry,
//   - hedged requests for tail latency: if the primary attempt runs
//     past a threshold, a second attempt races it and the caller pays
//     the earlier finish time.
//
// All decisions are deterministic given the budget seed, so chaos runs
// reproduce exactly.
package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"biglake/internal/integrity"
	"biglake/internal/objstore"
	"biglake/internal/sim"
)

// Sentinel errors introduced by the resilience layer itself.
var (
	// ErrDeadlineExceeded reports that a query's simulated-time
	// deadline passed; surfaced as its own class so callers can tell
	// "ran out of time retrying" from the underlying fault.
	ErrDeadlineExceeded = errors.New("resilience: query deadline exceeded")
	// ErrBudgetExhausted reports that the per-query retry budget was
	// spent. The wrapped cause remains visible to Classify.
	ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")
	// ErrCanceled reports that the query's budget was cooperatively
	// canceled (Budget.Cancel); it classifies as Deadline so every
	// abort path treats a kill like an expired time budget.
	ErrCanceled = errors.New("resilience: query canceled")
	// ErrOverloaded is the sentinel all OverloadError values match:
	// admission control shed this request before it consumed capacity.
	// Retrying after OverloadError.RetryAfter is safe and expected.
	ErrOverloaded = errors.New("resilience: overloaded")
)

// OverloadError is the typed "overloaded, retry later" error an
// admission controller returns instead of collapsing under load. It
// matches ErrOverloaded via errors.Is and carries a backoff hint.
type OverloadError struct {
	// Op names the shedding component, e.g. "serve.admission".
	Op string
	// Reason is the shed cause: "queue_full", "queue_wait",
	// "memory", or "concurrency".
	Reason string
	// RetryAfter is the suggested simulated-time backoff before the
	// caller resubmits; derived from observed service times so the
	// hint tracks actual drain rate.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%s: %v (%s), retry after %v", e.Op, ErrOverloaded, e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) true for every OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Class buckets an error by how the caller should react.
type Class int

// Error classes, from least to most recoverable.
const (
	// Fatal errors must surface immediately: access denied, missing
	// buckets/objects, malformed files.
	Fatal Class = iota
	// Retryable errors are transient backend faults worth retrying
	// with backoff.
	Retryable
	// CASConflict is a failed generation precondition: retrying the
	// identical write can never succeed, but reloading the current
	// generation and re-deriving the write can (DoCAS).
	CASConflict
	// Deadline means the query's time budget expired.
	Deadline
	// Corrupt means the bytes failed checksum or generation
	// verification. Blindly re-running the same read against the same
	// source is pointless when the stored copy itself rotted — and
	// under in-flight corruption a retry could *succeed silently*,
	// hiding a sick replica. Do surfaces Corrupt immediately; the
	// caller decides between an alternate source (fresh fetch bypassing
	// caches, a replica) and quarantine. Never retried in place.
	Corrupt
)

func (c Class) String() string {
	switch c {
	case Retryable:
		return "retryable"
	case CASConflict:
		return "cas-conflict"
	case Deadline:
		return "deadline"
	case Corrupt:
		return "corrupt"
	}
	return "fatal"
}

// Classify maps an error onto its resilience class. Deadline wins over
// the fault that was being retried when time ran out.
func Classify(err error) Class {
	switch {
	case errors.Is(err, ErrDeadlineExceeded), errors.Is(err, ErrCanceled):
		return Deadline
	case errors.Is(err, ErrOverloaded):
		return Retryable
	case errors.Is(err, objstore.ErrPreconditionFail):
		return CASConflict
	case errors.Is(err, objstore.ErrTransient):
		return Retryable
	case errors.Is(err, integrity.ErrCorrupt):
		return Corrupt
	default:
		return Fatal
	}
}

// Policy is a retry/hedging configuration. A nil *Policy behaves like
// NoRetry with hedging disabled, so call sites never need nil checks.
type Policy struct {
	// MaxAttempts bounds total tries per operation (first attempt
	// included). Values < 1 mean 1.
	MaxAttempts int
	// BaseBackoff/MaxBackoff/Multiplier shape capped exponential
	// backoff; each retry charges a full-jitter draw in [0, cur] of
	// simulated time.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Multiplier  float64
	// HedgeAfter, when > 0, enables hedged requests in HedgedDo: if
	// the primary attempt's charged latency exceeds this threshold, a
	// second attempt is issued and the cheaper completion is paid.
	HedgeAfter time.Duration
	// Meter, when set, records retries/hedges/exhaustions. Any sink
	// with a counter Add works: a *sim.Meter, an obs registry, or a
	// tee over both.
	Meter Meter
}

// Meter is the counter sink a Policy reports into. *sim.Meter and the
// obs registry/sink types satisfy it.
type Meter interface {
	Add(name string, v int64)
}

// DefaultPolicy returns the production policy every component installs
// unless a test overrides it.
func DefaultPolicy() *Policy {
	return &Policy{
		MaxAttempts: 4,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Multiplier:  2,
		HedgeAfter:  150 * time.Millisecond,
	}
}

// NoRetry returns a policy that surfaces the first error unchanged —
// the pre-resilience behaviour, used by tests that assert raw fault
// propagation.
func NoRetry() *Policy { return &Policy{MaxAttempts: 1} }

func (p *Policy) meter(name string, v int64) {
	if p != nil && p.Meter != nil {
		p.Meter.Add(name, v)
	}
}

// Budget is the per-query retry allowance: a bounded number of retries
// shared by every operation the query issues, plus an optional
// absolute simulated-time deadline. A nil *Budget means unlimited
// retries and no deadline (background work that polices itself via
// MaxAttempts).
type Budget struct {
	clock *sim.Clock

	mu       sync.Mutex
	rng      *sim.RNG
	retries  int
	deadline time.Duration // absolute sim time; 0 = none
	canceled bool
}

// NewBudget returns a budget of `retries` total retries for one query.
// seed drives the jitter sequence so runs are reproducible.
func NewBudget(clock *sim.Clock, retries int, seed uint64) *Budget {
	return &Budget{clock: clock, rng: sim.NewRNG(seed), retries: retries}
}

// SetDeadline sets the absolute simulated time after which every
// operation under this budget fails with ErrDeadlineExceeded.
func (b *Budget) SetDeadline(at time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.deadline = at
	b.mu.Unlock()
}

// Cancel cooperatively kills the query: every subsequent deadline
// check — Policy.Do performs one at the top of each attempt — fails
// with ErrCanceled, so the query unwinds at its next object-store
// operation. Safe to call from a different goroutine than the one
// running the query, and idempotent.
func (b *Budget) Cancel() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.canceled = true
	b.mu.Unlock()
}

// Canceled reports whether Cancel was called.
func (b *Budget) Canceled() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.canceled
}

// Remaining returns the unspent retry count.
func (b *Budget) Remaining() int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retries
}

// timeSource lets deadline checks read the frontier being charged —
// both *sim.Clock and *sim.Track satisfy it, so a parallel worker's
// private track counts against the deadline too.
type timeSource interface{ Now() time.Duration }

// CheckDeadline reports ErrCanceled if the budget was canceled, or
// ErrDeadlineExceeded if the budget's deadline has passed on ch's
// frontier (falling back to the global clock).
func (b *Budget) CheckDeadline(ch sim.Charger) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	d := b.deadline
	canceled := b.canceled
	b.mu.Unlock()
	if canceled {
		return ErrCanceled
	}
	if d <= 0 {
		return nil
	}
	var now time.Duration
	if ts, ok := ch.(timeSource); ok {
		now = ts.Now()
	} else if b.clock != nil {
		now = b.clock.Now()
	}
	if now >= d {
		return fmt.Errorf("%w: simulated time %v past deadline %v", ErrDeadlineExceeded, now, d)
	}
	return nil
}

// takeRetry consumes one retry; false means the budget is spent.
func (b *Budget) takeRetry() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.retries <= 0 {
		return false
	}
	b.retries--
	return true
}

// jitter draws a full-jitter backoff in [0, max).
func (b *Budget) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	if b == nil {
		return max / 2
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rng == nil {
		return max / 2
	}
	return time.Duration(b.rng.Float64() * float64(max))
}

// Do runs op under the policy: retry on Retryable errors with capped
// full-jitter backoff charged to ch, bounded by MaxAttempts, the
// budget's retry count, and the budget's deadline. Fatal, CASConflict,
// and Deadline errors surface immediately. name tags error messages
// with the operation (e.g. "scan GET lake/part-1").
func (p *Policy) Do(ch sim.Charger, b *Budget, name string, op func() error) error {
	max := 1
	var backoff, capB time.Duration
	mult := 2.0
	if p != nil {
		if p.MaxAttempts > 1 {
			max = p.MaxAttempts
		}
		backoff, capB = p.BaseBackoff, p.MaxBackoff
		if p.Multiplier > 1 {
			mult = p.Multiplier
		}
	}
	var lastErr error
	for attempt := 0; attempt < max; attempt++ {
		if err := b.CheckDeadline(ch); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%s: %w (while retrying %w)", name, err, lastErr)
			}
			return fmt.Errorf("%s: %w", name, err)
		}
		err := op()
		if err == nil {
			if attempt > 0 {
				p.meter("retry_successes", 1)
			}
			return nil
		}
		lastErr = err
		switch Classify(err) {
		case Retryable:
			// fall through to the backoff below
		case CASConflict:
			p.meter("cas_conflicts", 1)
			return err
		case Deadline:
			return err
		case Corrupt:
			// Same-source retry is never the answer for bad bytes;
			// surface immediately so the caller can try an alternate
			// source or quarantine.
			p.meter("corruption_detected", 1)
			return err
		default:
			p.meter("fatal_errors", 1)
			return err
		}
		if attempt == max-1 {
			break
		}
		if !b.takeRetry() {
			p.meter("budget_exhausted", 1)
			return fmt.Errorf("%s: %w: %w", name, ErrBudgetExhausted, err)
		}
		p.meter("retries", 1)
		if d := b.jitter(backoff); d > 0 {
			ch.Charge(d)
		}
		backoff = time.Duration(float64(backoff) * mult)
		if capB > 0 && backoff > capB {
			backoff = capB
		}
	}
	p.meter("retries_exhausted", 1)
	return fmt.Errorf("%s: retries exhausted: %w", name, lastErr)
}

// DoCAS runs a compare-and-swap commit loop: attempt is retried (via
// Do) for transient faults, and on a CAS conflict reload is called to
// re-read current state before the next attempt — the LakeVilla-style
// contention fix. Attempts are bounded by MaxAttempts.
func (p *Policy) DoCAS(ch sim.Charger, b *Budget, name string, attempt func() error, reload func() error) error {
	max := 1
	if p != nil && p.MaxAttempts > 1 {
		max = p.MaxAttempts
	}
	var lastErr error
	for i := 0; i < max; i++ {
		err := p.Do(ch, b, name, attempt)
		if err == nil {
			return nil
		}
		lastErr = err
		if Classify(err) != CASConflict {
			return err
		}
		if i == max-1 {
			break
		}
		p.meter("cas_reloads", 1)
		if rerr := reload(); rerr != nil {
			return fmt.Errorf("%s: reload after CAS conflict: %w", name, rerr)
		}
	}
	return fmt.Errorf("%s: CAS attempts exhausted: %w", name, lastErr)
}

// probe accumulates latency charged by one attempt so HedgedDo can
// compare primary vs hedge completion times before charging the real
// frontier.
type probe struct {
	mu sync.Mutex
	d  time.Duration
}

func (pr *probe) Charge(d time.Duration) {
	if d > 0 {
		pr.mu.Lock()
		pr.d += d
		pr.mu.Unlock()
	}
}

func (pr *probe) total() time.Duration {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.d
}

// HedgedDo is Do for read-path operations with hedging: op receives
// the charger to bill its latency to. If the primary attempt's charged
// latency exceeds HedgeAfter (a tail event — e.g. an injected
// slowdown), a second attempt is issued and ch is charged
// min(primary, HedgeAfter+hedge), modelling two racing requests in
// simulated time. Errors still go through classification and retry.
//
// op may run twice (primary + hedge): it must publish its result only
// on success, so a failed hedge cannot clobber the primary's result.
func (p *Policy) HedgedDo(ch sim.Charger, b *Budget, name string, op func(sim.Charger) error) error {
	if p == nil || p.HedgeAfter <= 0 {
		return p.Do(ch, b, name, func() error { return op(ch) })
	}
	return p.Do(ch, b, name, func() error {
		pr := &probe{}
		err := op(pr)
		lat := pr.total()
		if err != nil {
			ch.Charge(lat)
			return err
		}
		if lat > p.HedgeAfter {
			p.meter("hedges", 1)
			pr2 := &probe{}
			if err2 := op(pr2); err2 == nil {
				if hedged := p.HedgeAfter + pr2.total(); hedged < lat {
					p.meter("hedge_wins", 1)
					lat = hedged
				}
			}
			// A failed hedge costs nothing extra: the primary already
			// succeeded and its latency stands.
		}
		ch.Charge(lat)
		return nil
	})
}

// ListAll drains every LIST page for a prefix with per-page retry —
// the resilient replacement for objstore.Store.ListAll.
func ListAll(p *Policy, ch sim.Charger, b *Budget, store *objstore.Store, cred objstore.Credential, bucket, prefix string) ([]objstore.ObjectInfo, error) {
	var out []objstore.ObjectInfo
	token := ""
	for {
		var page objstore.ListPage
		err := p.Do(ch, b, "LIST "+bucket+"/"+prefix, func() error {
			var e error
			page, e = store.ListOn(ch, cred, bucket, prefix, token)
			return e
		})
		if err != nil {
			return nil, err
		}
		out = append(out, page.Objects...)
		if page.NextToken == "" {
			return out, nil
		}
		token = page.NextToken
	}
}

// Seed64 hashes a string (e.g. a query ID) into a budget seed.
func Seed64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
