// Chaos soak: the whole stack (engine scans, metadata cache, storage
// read API) run a TPC-H workload against an object store injecting
// probabilistic transient faults and tail-latency slowdowns. The
// resilience layer must absorb nearly all of it; what it cannot absorb
// must surface as a cleanly classified error, and the injected chaos
// must never poison engine or cache state.
package resilience_test

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"biglake/internal/engine"
	"biglake/internal/exp"
	"biglake/internal/objstore"
	"biglake/internal/resilience"
	"biglake/internal/storageapi"
	"biglake/internal/workload"
)

const (
	soakRounds    = 20
	soakFaultRate = 0.03 // ISSUE acceptance point: 3% per-op fault rate
)

func newSoakEnv(t *testing.T) (*exp.Env, []workload.Query) {
	t.Helper()
	env, err := exp.NewEnv(engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.LoadTPCH(env.WEnv, workload.DefaultTPCH(1)); err != nil {
		t.Fatal(err)
	}
	return env, workload.TPCHQueries("bench")
}

// fingerprint summarizes a result batch for before/after comparison.
func fingerprint(res *engine.Result) string {
	if res.Batch.N == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d first=%v last=%v", res.Batch.N, res.Batch.Row(0), res.Batch.Row(res.Batch.N-1))
}

func TestChaosSoakTPCH(t *testing.T) {
	env, queries := newSoakEnv(t)

	// Fault-free baseline results to compare against after the soak.
	baseline := map[string]string{}
	for _, q := range queries {
		res, err := env.Engine.Query(engine.NewContext(exp.Admin, "base-"+q.ID), q.SQL)
		if err != nil {
			t.Fatalf("baseline %s: %v", q.ID, err)
		}
		baseline[q.ID] = fingerprint(res)
	}

	goroutinesBefore := runtime.NumGoroutine()

	env.Store.InjectFaults(objstore.FaultProfile{
		Seed:         20260806,
		Rate:         soakFaultRate,
		StreakLen:    2,
		SlowdownRate: 0.02,
		Slowdown:     300 * time.Millisecond, // past HedgeAfter: exercises hedging
	})

	total, succeeded := 0, 0
	for round := 0; round < soakRounds; round++ {
		for _, q := range queries {
			total++
			ctx := engine.NewContext(exp.Admin, fmt.Sprintf("soak-%d-%s", round, q.ID))
			res, err := env.Engine.Query(ctx, q.SQL)
			if err == nil {
				succeeded++
				if got := fingerprint(res); got != baseline[q.ID] {
					t.Fatalf("round %d %s: wrong answer under faults:\n got %s\nwant %s", round, q.ID, got, baseline[q.ID])
				}
				continue
			}
			// A failure must be cleanly classified — a raw unclassified
			// error means a fault leaked around the resilience layer.
			if !errors.Is(err, objstore.ErrTransient) &&
				!errors.Is(err, resilience.ErrBudgetExhausted) &&
				!errors.Is(err, resilience.ErrDeadlineExceeded) {
				t.Fatalf("round %d %s: unclassified failure: %v", round, q.ID, err)
			}
		}
		// Exercise the Storage API read path under the same chaos.
		sess, err := env.Server.CreateReadSession(storageapi.ReadSessionRequest{
			Table: "bench.lineitem", Principal: exp.Admin,
		})
		if err == nil {
			if _, err := env.Server.ReadAll(sess); err != nil && !errors.Is(err, objstore.ErrTransient) &&
				!errors.Is(err, resilience.ErrBudgetExhausted) {
				t.Fatalf("round %d: unclassified read-api failure: %v", round, err)
			}
		} else if !errors.Is(err, objstore.ErrTransient) && !errors.Is(err, resilience.ErrBudgetExhausted) {
			t.Fatalf("round %d: unclassified session failure: %v", round, err)
		}
	}

	rate := float64(succeeded) / float64(total)
	t.Logf("soak: %d/%d queries succeeded (%.1f%%) at %.0f%% fault rate", succeeded, total, 100*rate, 100*soakFaultRate)
	if rate < 0.99 {
		t.Fatalf("success rate %.3f under chaos, want >= 0.99", rate)
	}

	// The injected chaos must have actually exercised the machinery.
	if env.Store.Meter().Get("faults_injected") == 0 {
		t.Fatal("no faults injected; soak proved nothing")
	}
	if env.Engine.Meter.Get("retries") == 0 {
		t.Fatal("no retries metered")
	}

	// No state poisoning: with faults cleared, every query returns the
	// baseline answer.
	env.Store.ClearFaults()
	for _, q := range queries {
		res, err := env.Engine.Query(engine.NewContext(exp.Admin, "post-"+q.ID), q.SQL)
		if err != nil {
			t.Fatalf("post-soak %s: %v", q.ID, err)
		}
		if got := fingerprint(res); got != baseline[q.ID] {
			t.Fatalf("post-soak %s: state poisoned:\n got %s\nwant %s", q.ID, got, baseline[q.ID])
		}
	}

	// No goroutine leaks from the scan fan-out under injected failures.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutinesBefore+2 {
		t.Fatalf("goroutines grew %d -> %d during soak", goroutinesBefore, n)
	}
}

// TestChaosDeterministicAcrossRuns: the same workload under the same
// fault seed injects byte-identical fault sequences — goroutine
// interleaving in the parallel scan fan-out must not change what
// faults.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	var logs [2][]string
	for run := 0; run < 2; run++ {
		env, queries := newSoakEnv(t)
		env.Store.InjectFaults(objstore.FaultProfile{
			Seed: 7, Rate: 0.05, SlowdownRate: 0.05, Slowdown: 200 * time.Millisecond,
		})
		for round := 0; round < 5; round++ {
			for _, q := range queries {
				// Errors are fine here; only the fault sequence matters.
				env.Engine.Query(engine.NewContext(exp.Admin, fmt.Sprintf("d-%d-%s", round, q.ID)), q.SQL)
			}
		}
		logs[run] = env.Store.Obs().Events("objstore.faults")
	}
	if len(logs[0]) == 0 {
		t.Fatal("no faults injected")
	}
	if len(logs[0]) != len(logs[1]) {
		t.Fatalf("fault counts differ: %d vs %d", len(logs[0]), len(logs[1]))
	}
	for i := range logs[0] {
		if logs[0][i] != logs[1][i] {
			t.Fatalf("fault %d differs: %v vs %v", i, logs[0][i], logs[1][i])
		}
	}
}
