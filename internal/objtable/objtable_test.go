package objtable

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"biglake/internal/objstore"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

func setup(t *testing.T) (map[string]*objstore.Store, objstore.Credential, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa@corp"}
	if err := store.CreateBucket(cred, "media"); err != nil {
		t.Fatal(err)
	}
	return map[string]*objstore.Store{"gcp": store}, cred, clock
}

func uriBatch(uris ...string) *vector.Batch {
	schema := vector.NewSchema(
		vector.Field{Name: "uri", Type: vector.String},
		vector.Field{Name: "size", Type: vector.Int64},
	)
	bl := vector.NewBuilder(schema)
	for i, u := range uris {
		bl.Append(vector.StringValue(u), vector.IntValue(int64(i)))
	}
	return bl.Build()
}

func TestSplitURI(t *testing.T) {
	cloud, bucket, key, err := SplitURI("aws://b/dir/f.jpg")
	if err != nil || cloud != "aws" || bucket != "b" || key != "dir/f.jpg" {
		t.Fatalf("split = %q %q %q %v", cloud, bucket, key, err)
	}
	for _, bad := range []string{"", "nope", "x://", "x://b", "x://b/"} {
		if _, _, _, err := SplitURI(bad); err == nil {
			t.Errorf("SplitURI(%q) should fail", bad)
		}
	}
}

func TestSignAndFetch(t *testing.T) {
	stores, cred, _ := setup(t)
	stores["gcp"].Put(cred, "media", "a.bin", []byte("payload-a"), "")
	stores["gcp"].Put(cred, "media", "b.bin", []byte("payload-b"), "")
	batch := uriBatch("gcp://media/a.bin", "gcp://media/b.bin")
	urls, err := SignURLs(stores, cred, batch, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 {
		t.Fatalf("urls = %v", urls)
	}
	data, err := FetchAll(stores, urls)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[0]) != "payload-a" || string(data[1]) != "payload-b" {
		t.Fatalf("fetched = %q", data)
	}
}

func TestSignURLsRequiresURIColumn(t *testing.T) {
	stores, cred, _ := setup(t)
	b := vector.MustBatch(vector.NewSchema(vector.Field{Name: "x", Type: vector.Int64}),
		[]*vector.Column{vector.NewInt64Column([]int64{1})})
	if _, err := SignURLs(stores, cred, b, time.Minute); !errors.Is(err, ErrNoURIColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestSignURLsGovernanceInvariant(t *testing.T) {
	// A credential without access to an object cannot mint a URL for
	// it — URLs can only be created for rows the caller could see.
	stores, cred, _ := setup(t)
	stores["gcp"].Put(cred, "media", "secret.bin", []byte("s"), "")
	stranger := objstore.Credential{Principal: "stranger@x"}
	_, err := SignURLs(stores, stranger, uriBatch("gcp://media/secret.bin"), time.Minute)
	if !errors.Is(err, objstore.ErrAccessDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchAllRejectsGarbage(t *testing.T) {
	stores, _, _ := setup(t)
	if _, err := FetchAll(stores, []string{"http://not-signed"}); err == nil {
		t.Fatal("non-signed url should fail")
	}
	if _, err := FetchAll(stores, []string{"signed://mars/b/k?sig=1"}); err == nil {
		t.Fatal("unknown cloud should fail")
	}
}

func TestSampleFraction(t *testing.T) {
	n := 10000
	uris := make([]string, n)
	for i := range uris {
		uris[i] = fmt.Sprintf("gcp://media/f%05d", i)
	}
	b := uriBatch(uris...)
	s, err := Sample(b, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	if s.N < 50 || s.N > 200 {
		t.Fatalf("1%% sample of %d = %d rows", n, s.N)
	}
	// Deterministic.
	s2, _ := Sample(b, 0.01, 42)
	if s2.N != s.N {
		t.Fatal("same seed must give same sample")
	}
	s3, _ := Sample(b, 0.01, 43)
	if s3.N == s.N && s3.Column("uri").Value(0).S == s.Column("uri").Value(0).S {
		t.Fatal("different seeds should differ")
	}
}

func TestSampleValidation(t *testing.T) {
	b := uriBatch("gcp://media/a")
	for _, f := range []float64{0, -1, 1.5} {
		if _, err := Sample(b, f, 1); err == nil {
			t.Errorf("Sample fraction %v should fail", f)
		}
	}
	full, err := Sample(b, 1.0, 1)
	if err != nil || full.N != 1 {
		t.Fatalf("full sample: %v", err)
	}
}
