// Package objtable implements the Object-table utilities of §4.1 on
// top of the engine's object-table scans: signed-URL generation under
// the row-governance invariant ("access to a row implies access to the
// content of the corresponding object"), fast random sampling of huge
// object sets, and the remote-function hand-off pattern where signed
// URLs extend the BigLake governance umbrella outside BigQuery.
package objtable

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"biglake/internal/objstore"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// ErrNoURIColumn reports an input batch without a uri column.
var ErrNoURIColumn = errors.New("objtable: batch has no uri column")

// SplitURI parses "cloud://bucket/key".
func SplitURI(uri string) (cloud, bucket, key string, err error) {
	i := strings.Index(uri, "://")
	if i <= 0 {
		return "", "", "", fmt.Errorf("objtable: malformed uri %q", uri)
	}
	rest := uri[i+3:]
	j := strings.IndexByte(rest, '/')
	if j <= 0 || j == len(rest)-1 {
		return "", "", "", fmt.Errorf("objtable: malformed uri %q", uri)
	}
	return uri[:i], rest[:j], rest[j+1:], nil
}

// SignURLs mints signed URLs for every row of an object-table result
// batch. Because the batch has already passed row-level governance,
// the invariant holds: a caller only ever receives URLs for objects
// whose rows it was allowed to see.
func SignURLs(stores map[string]*objstore.Store, cred objstore.Credential, rows *vector.Batch, ttl time.Duration) ([]string, error) {
	ui := rows.Schema.Index("uri")
	if ui < 0 {
		return nil, ErrNoURIColumn
	}
	uris := rows.Cols[ui].Decode()
	out := make([]string, uris.Len)
	for i := 0; i < uris.Len; i++ {
		cloud, bucket, key, err := SplitURI(uris.Value(i).S)
		if err != nil {
			return nil, err
		}
		store, ok := stores[cloud]
		if !ok {
			return nil, fmt.Errorf("objtable: no store for cloud %q", cloud)
		}
		url, err := store.SignURL(cred, bucket, key, ttl)
		if err != nil {
			return nil, err
		}
		out[i] = url
	}
	return out, nil
}

// Sample returns a deterministic fraction-sized random sample of a
// batch — the "1% random sample of a large dataset of images ... two
// lines of SQL, executes in seconds" workflow (§4.1). fraction is in
// (0, 1].
func Sample(b *vector.Batch, fraction float64, seed uint64) (*vector.Batch, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("objtable: sample fraction %v out of (0, 1]", fraction)
	}
	rng := sim.NewRNG(seed)
	var idx []int
	for i := 0; i < b.N; i++ {
		if rng.Float64() < fraction {
			idx = append(idx, i)
		}
	}
	cols := make([]*vector.Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = vector.Gather(c, idx)
	}
	return vector.NewBatch(b.Schema, cols)
}

// FetchAll redeems signed URLs, the path a remote user-defined
// function takes to process objects outside BigQuery while staying
// inside the governance umbrella.
func FetchAll(stores map[string]*objstore.Store, urls []string) ([][]byte, error) {
	out := make([][]byte, len(urls))
	for i, url := range urls {
		// signed://<cloud>/... identifies the issuing store.
		const p = "signed://"
		if !strings.HasPrefix(url, p) {
			return nil, fmt.Errorf("objtable: %q is not a signed url", url)
		}
		rest := url[len(p):]
		j := strings.IndexByte(rest, '/')
		if j <= 0 {
			return nil, fmt.Errorf("objtable: %q is not a signed url", url)
		}
		store, ok := stores[rest[:j]]
		if !ok {
			return nil, fmt.Errorf("objtable: no store for cloud %q", rest[:j])
		}
		data, _, err := store.Fetch(url)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}
