package biglake

// One benchmark per paper table/figure (DESIGN.md experiment index
// E1–E12) plus the ablation benches A1–A5. Latency-bound experiments
// report simulated milliseconds via b.ReportMetric; CPU-bound ones
// report real time. cmd/benchlake renders the same results as
// paper-style tables.

import (
	"testing"

	"biglake/internal/exp"
)

// BenchmarkE1MetadataCaching reproduces Figure 4: TPC-DS power run
// with the §3.3 metadata cache off and on.
func BenchmarkE1MetadataCaching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE1(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverallSpeedup, "overall_speedup_x")
		b.ReportMetric(float64(res.TotalOff.Milliseconds()), "cache_off_sim_ms")
		b.ReportMetric(float64(res.TotalOn.Milliseconds()), "cache_on_sim_ms")
	}
}

// BenchmarkE2VectorizedReader reproduces §3.4's vectorized-reader
// result: real throughput of the two ReadRows pipelines.
func BenchmarkE2VectorizedReader(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE2(60000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ThroughputGain, "throughput_gain_x")
	}
}

// BenchmarkE3SparkStats reproduces §3.4's external-engine improvement
// from CreateReadSession statistics (join reordering + DPP).
func BenchmarkE3SparkStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE3(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverallSpeedup, "stats_speedup_x")
	}
}

// BenchmarkE4SparkParity reproduces §3.4's TPC-H price-performance
// parity: Read API vs direct object-store reads.
func BenchmarkE4SparkParity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE4(1)
		if err != nil {
			b.Fatal(err)
		}
		worst := 1e9
		for _, r := range res.Rows {
			if r.Ratio < worst {
				worst = r.Ratio
			}
		}
		b.ReportMetric(worst, "worst_direct_over_api_x")
	}
}

// BenchmarkE5CommitThroughput reproduces §3.5's BLMT commit-throughput
// advantage over object-store-committed table formats.
func BenchmarkE5CommitThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE5(30)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BLMTPerSecond, "blmt_commits_per_s")
		b.ReportMetric(res.ObjStorePerSecond, "objstore_commits_per_s")
		b.ReportMetric(res.ThroughputAdvantage, "advantage_x")
	}
}

// BenchmarkE6ObjectTable reproduces §4.1: inventorying a big bucket
// through an object table vs direct listing, plus the 1% sample.
func BenchmarkE6ObjectTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE6(5000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ListSpeedup, "list_speedup_x")
		b.ReportMetric(float64(res.SampleTime.Milliseconds()), "sample_sim_ms")
	}
}

// BenchmarkE7DistributedInference reproduces Figure 7: worker memory
// with the preprocess/infer split vs colocated execution.
func BenchmarkE7DistributedInference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE7(16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MemoryReduction, "peak_memory_reduction_x")
		b.ReportMetric(res.WireReductionFactor, "image_over_tensor_x")
	}
}

// BenchmarkE8InferenceModes reproduces §4.2's in-engine vs external
// inference trade-off under burst.
func BenchmarkE8InferenceModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE8(5, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RemotePenalty, "remote_burst_penalty_x")
	}
}

// BenchmarkE9OmniParity reproduces §5.4: TPC-H on GCP vs AWS data
// planes.
func BenchmarkE9OmniParity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE9(1)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range res.Rows {
			if r.Ratio > worst {
				worst = r.Ratio
			}
		}
		b.ReportMetric(worst, "worst_aws_over_gcp_x")
	}
}

// BenchmarkE10CrossCloudQuery reproduces §5.6.1: cross-cloud join
// egress with filter pushdown (the DisablePushdown arm is ablation
// A5).
func BenchmarkE10CrossCloudQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE10(100, 1000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EgressReduction, "egress_reduction_x")
		b.ReportMetric(float64(res.PushdownTime.Milliseconds()), "pushdown_sim_ms")
		b.ReportMetric(float64(res.FullTime.Milliseconds()), "full_ship_sim_ms")
	}
}

// BenchmarkE11CCMV reproduces §5.6.2: incremental vs full cross-cloud
// materialized-view refresh.
func BenchmarkE11CCMV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE11(5, 100)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EgressReduction, "egress_reduction_x")
	}
}

// BenchmarkE12Governance reproduces §3.2: identical governed results
// through the engine, the Read API, and an external engine, with the
// zero-trust boundary held against a hostile client.
func BenchmarkE12Governance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE12()
		if err != nil {
			b.Fatal(err)
		}
		ok := 0.0
		if res.RowsAgree && res.MaskingAgrees && res.HostileReadDenied && res.DeniedColumnFails {
			ok = 1.0
		}
		b.ReportMetric(ok, "boundary_holds")
	}
}

// BenchmarkA1CacheGranularity: file-level statistics vs Hive-style
// partition-only pruning (DESIGN.md ablation A1).
func BenchmarkA1CacheGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunA1(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GranularityGain, "file_stat_gain_x")
	}
}

// BenchmarkA2GovernancePlacement: governance inside the Read API
// boundary vs client-side enforcement at the untrusted engine
// (ablation A2).
func BenchmarkA2GovernancePlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunA2(4000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ExposureReduction, "exposure_reduction_x")
	}
}

// BenchmarkA3BaselineReconcile: tail+baseline snapshot reads vs full
// log replay (ablation A3).
func BenchmarkA3BaselineReconcile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunA3(2000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "baseline_speedup_x")
	}
}

// BenchmarkA4WireEncoding: dictionary/RLE retention on ReadRows
// payloads vs fully decoded batches (ablation A4, the §3.4 future-work
// item).
func BenchmarkA4WireEncoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunA4(20000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Reduction, "payload_reduction_x")
	}
}

// BenchmarkE13Availability: TPC-H under injected object-store faults —
// the resilience layer's success rate at a 3% per-op fault rate vs the
// no-retry baseline (DESIGN.md experiment E13).
func BenchmarkE13Availability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE13(1, 20)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.FaultRate == 0.03 {
				switch r.Arm {
				case "resilient":
					b.ReportMetric(100*r.SuccessRate, "resilient_success_pct")
				case "no-retry":
					b.ReportMetric(100*r.SuccessRate, "noretry_success_pct")
				}
			}
		}
	}
}

// BenchmarkE15VectorizedExec: typed hash kernels + morsel-driven
// join/aggregation vs the row-at-a-time baseline, morsel-worker
// scaling, and the generation-keyed scan cache's cold/warm effect
// (DESIGN.md experiment E15). Real CPU time.
func BenchmarkE15VectorizedExec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE15(400000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "kernel_speedup_x")
		for _, r := range res.Scaling {
			if r.Workers == 4 {
				b.ReportMetric(r.Speedup, "scaling_w4_x")
			}
		}
		b.ReportMetric(float64(res.CacheColdSim.Milliseconds()), "cache_cold_sim_ms")
		b.ReportMetric(float64(res.CacheWarmSim.Milliseconds()), "cache_warm_sim_ms")
		b.ReportMetric(float64(res.CacheHits), "cache_hits")
	}
}

// BenchmarkE14Recovery: crash recovery — journal replay time (simulated
// wall clock) and orphan-GC bytes at the 400-commit journal length
// (DESIGN.md experiment E14).
func BenchmarkE14Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE14(1)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.RecoverySimMS, "recovery_sim_ms")
		b.ReportMetric(float64(last.GCBytes), "gc_bytes")
	}
}

// BenchmarkE16Observability: trace-span attribution of the E15
// speedup — per-stage join/aggregate gains and the scan cache's
// sim-I/O delta, all read off the observability layer (DESIGN.md
// experiment E16).
func BenchmarkE16Observability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE16(400000)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range res.Stages {
			if st.Name == "join" {
				b.ReportMetric(st.Speedup, "join_stage_x")
			}
			if st.Name == "aggregate" {
				b.ReportMetric(st.Speedup, "aggregate_stage_x")
			}
		}
		b.ReportMetric(float64(res.ColdScanSim.Milliseconds()), "cold_scan_sim_ms")
		b.ReportMetric(float64(res.WarmGets), "warm_gets")
	}
}

// BenchmarkE18QueryService: the multi-tenant query service under a
// seeded open-loop overload sweep — goodput retention at 4x the
// admission cap and max/min per-tenant fairness across equal-weight
// tenants (DESIGN.md experiment E18).
func BenchmarkE18QueryService(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE18(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PeakGoodput, "peak_goodput_qps")
		b.ReportMetric(res.GoodputMaxRatio, "goodput_4x_ratio")
		b.ReportMetric(res.EqualFairRatio, "fair_max_min_x")
	}
}

// BenchmarkE19Integrity: the end-to-end integrity sweep — silent
// corruption at rest and in flight, typed containment, budgeted scrub,
// and replica repair restoring full availability (DESIGN.md experiment
// E19).
func BenchmarkE19Integrity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE19(1)
		if err != nil {
			b.Fatal(err)
		}
		if res.WrongAnswers != 0 {
			b.Fatalf("silent wrong answers: %d", res.WrongAnswers)
		}
		var detected, damaged, scrubBytes int
		for _, r := range res.Rows {
			damaged += r.Damaged
			detected += int(r.DetectionRate * float64(r.Damaged))
			scrubBytes += int(r.ScrubBytes)
		}
		b.ReportMetric(float64(detected)/float64(damaged), "detection_rate")
		b.ReportMetric(float64(scrubBytes)/float64(len(res.Rows)), "scrub_bytes_per_rate")
		restored := 0.0
		if res.RestoredAtOnePercent {
			restored = 1
		}
		b.ReportMetric(restored, "repair_restores_1pct")
	}
}
