package main

import "testing"

// TestRegisterPanicsOnDuplicate is the guard satellite: registering an
// id twice must panic at init time instead of silently shadowing the
// earlier experiment.
func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	register("e1", nil) // e1 is already registered by init
}

// TestRegistryConsistent pins the invariants run() and usage() rely
// on: allIDs mirrors the dispatch table minus fuzz, in registration
// order, with no nil runners.
func TestRegistryConsistent(t *testing.T) {
	if len(allIDs) != len(experiments)-1 {
		t.Fatalf("allIDs has %d entries, experiments %d (fuzz should be the only difference)",
			len(allIDs), len(experiments))
	}
	for _, id := range allIDs {
		if id == "fuzz" {
			t.Fatal("fuzz leaked into the all expansion")
		}
		if experiments[id] == nil {
			t.Fatalf("experiment %q has a nil runner", id)
		}
	}
	if experiments["fuzz"] == nil {
		t.Fatal("fuzz is not registered")
	}
	for i, id := range []string{"e1", "e2"} {
		if allIDs[i] != id {
			t.Fatalf("allIDs[%d] = %q, want %q — registration order lost", i, allIDs[i], id)
		}
	}
	if last := allIDs[len(allIDs)-1]; last != "a4" {
		t.Fatalf("allIDs ends with %q, want a4", last)
	}
}
