package main

import "testing"

// TestRegisterPanicsOnDuplicate is the guard satellite: registering an
// id twice must panic at init time instead of silently shadowing the
// earlier experiment.
func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	register("e1", nil) // e1 is already registered by init
}

// TestRegistryConsistent pins the invariants run() and usage() rely
// on: allIDs mirrors the dispatch table minus the nonTable entries
// (fuzz, top), in registration order, with no nil runners.
func TestRegistryConsistent(t *testing.T) {
	if len(allIDs) != len(experiments)-len(nonTable) {
		t.Fatalf("allIDs has %d entries, experiments %d (nonTable %d should be the only difference)",
			len(allIDs), len(experiments), len(nonTable))
	}
	for _, id := range allIDs {
		if nonTable[id] {
			t.Fatalf("%s leaked into the all expansion", id)
		}
		if experiments[id] == nil {
			t.Fatalf("experiment %q has a nil runner", id)
		}
	}
	for id := range nonTable {
		if experiments[id] == nil {
			t.Fatalf("%s is not registered", id)
		}
	}
	for i, id := range []string{"e1", "e2"} {
		if allIDs[i] != id {
			t.Fatalf("allIDs[%d] = %q, want %q — registration order lost", i, allIDs[i], id)
		}
	}
	if last := allIDs[len(allIDs)-1]; last != "a4" {
		t.Fatalf("allIDs ends with %q, want a4", last)
	}
}
