// Command benchlake regenerates every paper table/figure-shaped result
// (DESIGN.md experiments E1–E18 and ablations A1–A5) and prints them
// as tables. Run a single experiment by id, or everything:
//
//	benchlake e1        # Figure 4: TPC-DS speedup with metadata caching
//	benchlake all       # the full evaluation
//	benchlake -scale 2 e1
//
// Observability flags apply uniformly to every experiment (and may
// appear before or after the experiment id):
//
//	benchlake e15 -trace            # Chrome-trace spans -> trace.json
//	benchlake e15 -trace=e15.json   # ... to a chosen file
//	benchlake e1 -profile           # print EXPLAIN ANALYZE of the slowest query
//	benchlake e15 -json             # BENCH_E15.json + BENCH_E15_METRICS.json
//
// The differential fuzzer is also exposed here for ad-hoc soaks:
//
//	benchlake -seed 7 -trials 4 -queries 100 fuzz
//	benchlake -serve fuzz    # also diff through the serve session path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"biglake/internal/exp"
	"biglake/internal/obs"
	"biglake/internal/oracle"
)

var (
	scale       = flag.Int("scale", 1, "workload scale factor")
	fuzzSeed    = flag.Uint64("seed", 1, "fuzz: base RNG seed")
	fuzzTrials  = flag.Int("trials", 2, "fuzz: generated worlds per run")
	fuzzQueries = flag.Int("queries", 70, "fuzz: SELECTs per world per phase")
	fuzzServe   = flag.Bool("serve", false, "fuzz: also diff execution through the serve session path")
	jsonOut     = flag.Bool("json", false, "also write BENCH_<ID>.json and BENCH_<ID>_METRICS.json in the cwd")
	traceOut    = flag.String("trace", "", "write a Chrome-trace (Perfetto-loadable) span file; bare -trace means trace.json")
	profileOut  = flag.Bool("profile", false, "print EXPLAIN ANALYZE of the experiment's slowest traced query")
)

// experiments is the uniform dispatch table: every entry gets the same
// -json/-trace/-profile handling from run(). Populated by register()
// in init, never by literal — the duplicate guard is the point.
var experiments = map[string]runner{}

// allIDs is the "all" expansion and the canonical ordering, derived
// from registration order. fuzz and top register but are excluded:
// one is a soak, the other an operator view, not a table.
var allIDs []string

// nonTable experiments register normally but stay out of "all".
var nonTable = map[string]bool{"fuzz": true, "top": true}

// register adds one experiment to the dispatch table. It panics on a
// duplicate id so a new experiment cannot silently shadow an earlier
// one — the guard runs at init, so a collision fails every invocation
// loudly rather than corrupting one result quietly.
func register(id string, fn runner) {
	if _, dup := experiments[id]; dup {
		panic(fmt.Sprintf("benchlake: duplicate experiment id %q", id))
	}
	experiments[id] = fn
	if !nonTable[id] {
		allIDs = append(allIDs, id)
	}
}

func init() {
	register("e1", runE1)
	register("e2", runE2)
	register("e3", runE3)
	register("e4", runE4)
	register("e5", runE5)
	register("e6", runE6)
	register("e7", runE7)
	register("e8", runE8)
	register("e9", runE9)
	register("e10", runE10)
	register("e11", runE11)
	register("e12", runE12)
	register("e13", runE13)
	register("e14", runE14)
	register("e15", runE15)
	register("e16", runE16)
	register("e17", runE17)
	register("e18", runE18)
	register("e19", runE19)
	register("e20", runE20)
	register("e21", runE21)
	register("a1", runA1)
	register("a2", runA2)
	register("a3", runA3)
	register("a4", runA4)
	register("fuzz", runFuzz)
	register("top", runTop)
}

// valueFlags take a separate value argument (`-scale 2`); everything
// else is boolean-ish or uses `-flag=value` form.
var valueFlags = map[string]bool{"scale": true, "seed": true, "trials": true, "queries": true}

// normalizeArgs lets flags appear before or after experiment ids (the
// stdlib flag package stops at the first positional) and rewrites a
// bare `-trace` into `-trace=trace.json`.
func normalizeArgs(argv []string) []string {
	var flags, pos []string
	for i := 0; i < len(argv); i++ {
		a := argv[i]
		if !strings.HasPrefix(a, "-") {
			pos = append(pos, a)
			continue
		}
		name := strings.TrimLeft(a, "-")
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			name = name[:eq]
		}
		if name == "trace" && !strings.Contains(a, "=") {
			// Bare -trace: consume a following filename if one is
			// present and isn't itself a flag or experiment id.
			if i+1 < len(argv) && !strings.HasPrefix(argv[i+1], "-") && !knownID(argv[i+1]) {
				flags = append(flags, "-trace="+argv[i+1])
				i++
			} else {
				flags = append(flags, "-trace=trace.json")
			}
			continue
		}
		flags = append(flags, a)
		if valueFlags[name] && !strings.Contains(a, "=") && i+1 < len(argv) {
			flags = append(flags, argv[i+1])
			i++
		}
	}
	return append(flags, pos...)
}

func knownID(s string) bool {
	s = strings.ToLower(s)
	if s == "all" || nonTable[s] {
		return true
	}
	for _, id := range allIDs {
		if s == id {
			return true
		}
	}
	return false
}

func main() {
	if err := flag.CommandLine.Parse(normalizeArgs(os.Args[1:])); err != nil {
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	ids := args
	if len(args) == 1 && strings.EqualFold(args[0], "all") {
		ids = allIDs
	}
	multi := len(ids) > 1
	for _, id := range ids {
		if err := run(strings.ToLower(id), multi); err != nil {
			fmt.Fprintf(os.Stderr, "benchlake: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: benchlake [-scale N] [-json] [-trace[=file.json]] [-profile] <experiment>...
experiments: `+strings.Join(allIDs, " ")+` all
telemetry:   benchlake top          # most expensive retained jobs + hottest counters (system.* SQL)
fuzzing:     benchlake [-seed N] [-trials N] [-queries N] [-serve] fuzz`)
}

// emitJSON writes one result struct as <name>.json for machine
// consumption (CI trend tracking).
func emitJSON(name string, res any) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", name)
	return nil
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
}

// obsSetup is the per-experiment observability rig: a registry every
// environment of the experiment feeds, and (when -trace/-profile ask
// for spans) a tracer attached to every environment engine.
type obsSetup struct {
	reg    *obs.Registry
	tracer *obs.Tracer
}

func newObsSetup() *obsSetup {
	o := &obsSetup{reg: obs.NewRegistry()}
	if *traceOut != "" || *profileOut {
		o.tracer = &obs.Tracer{Cap: 4096}
	}
	exp.SetObsHook(func(env *exp.Env) { env.Observe(o.reg, o.tracer) })
	return o
}

// emit writes/prints the observability artifacts after an experiment.
func (o *obsSetup) emit(id string, multi bool) error {
	exp.SetObsHook(nil)
	if *jsonOut {
		if err := emitJSON("BENCH_"+strings.ToUpper(id)+"_METRICS.json", o.reg.Snapshot()); err != nil {
			return err
		}
	}
	if o.tracer == nil {
		return nil
	}
	traces := o.tracer.Traces()
	if *traceOut != "" {
		name := *traceOut
		if multi {
			name = id + "_" + name
		}
		data, err := obs.ChromeTrace(traces...)
		if err != nil {
			return err
		}
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d traces, %d bytes)\n", name, len(traces), len(data))
	}
	if *profileOut {
		if t := slowest(traces); t != nil {
			fmt.Println()
			fmt.Print(obs.BuildProfile(t).Text())
		} else {
			fmt.Println("profile: no traces recorded (experiment runs no engine queries)")
		}
	}
	return nil
}

// slowest picks the trace with the largest simulated root duration —
// the query EXPLAIN ANALYZE is most interesting for.
func slowest(traces []*obs.Trace) *obs.Trace {
	var best *obs.Trace
	for _, t := range traces {
		if t.Root() == nil {
			continue
		}
		if best == nil || t.Root().SimDuration() > best.Root().SimDuration() {
			best = t
		}
	}
	return best
}

// runner executes one experiment, prints its table, and returns the
// result struct for -json emission.
type runner func(ob *obsSetup) (any, error)

func run(id string, multi bool) error {
	fn, ok := experiments[id]
	if !ok {
		usage()
		return fmt.Errorf("unknown experiment %q", id)
	}
	ob := newObsSetup()
	defer exp.SetObsHook(nil)
	res, err := fn(ob)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := emitJSON("BENCH_"+strings.ToUpper(id)+".json", res); err != nil {
			return err
		}
	}
	return ob.emit(id, multi)
}

func runE1(_ *obsSetup) (any, error) {
	res, err := exp.RunE1(*scale)
	if err != nil {
		return nil, err
	}
	header("E1 | Figure 4: TPC-DS speedup with metadata caching (simulated wall clock)")
	fmt.Printf("%-6s %-10s %14s %14s %10s\n", "query", "kind", "cache off", "cache on", "speedup")
	for _, r := range res.Rows {
		fmt.Printf("%-6s %-10s %14s %14s %9.2fx\n", r.QueryID, r.Kind, r.CacheOff, r.CacheOn, r.Speedup)
	}
	fmt.Printf("%-6s %-10s %14s %14s %9.2fx   (paper: ~4x overall)\n",
		"TOTAL", "", res.TotalOff, res.TotalOn, res.OverallSpeedup)
	return res, nil
}

func runE2(_ *obsSetup) (any, error) {
	res, err := exp.RunE2(60000 * *scale)
	if err != nil {
		return nil, err
	}
	header("E2 | §3.4: vectorized vs row-oriented Read API (real CPU time)")
	fmt.Printf("rows=%d  vectorized=%v  row-oriented=%v  gain=%.2fx  (paper: ~2x throughput)\n",
		res.Rows, res.VectorizedTime, res.RowOrientedTime, res.ThroughputGain)
	return res, nil
}

func runE3(_ *obsSetup) (any, error) {
	res, err := exp.RunE3(*scale)
	if err != nil {
		return nil, err
	}
	header("E3 | §3.4: read-session statistics improve external-engine plans")
	fmt.Printf("%-6s %14s %14s %10s\n", "plan", "blind", "with stats", "speedup")
	for _, r := range res.Rows {
		fmt.Printf("%-6s %14s %14s %9.2fx\n", r.QueryID, r.Blind, r.WithStat, r.Speedup)
	}
	fmt.Printf("overall %.2fx  (paper: 5x on TPC-DS)\n", res.OverallSpeedup)
	return res, nil
}

func runE4(_ *obsSetup) (any, error) {
	res, err := exp.RunE4(*scale)
	if err != nil {
		return nil, err
	}
	header("E4 | §3.4: external engine via Read API vs direct object-store reads (TPC-H)")
	fmt.Printf("%-10s %14s %14s %18s\n", "plan", "direct", "read api", "direct/api ratio")
	for _, r := range res.Rows {
		fmt.Printf("%-10s %14s %14s %17.2fx\n", r.QueryID, r.Direct, r.ReadAPI, r.Ratio)
	}
	fmt.Println("(paper: Read API matches or exceeds the direct baseline)")
	return res, nil
}

func runE5(_ *obsSetup) (any, error) {
	res, err := exp.RunE5(30 * *scale)
	if err != nil {
		return nil, err
	}
	header("E5 | §3.5: BLMT commit throughput vs object-store-committed formats")
	fmt.Printf("commits=%d  blmt=%.1f/s  objstore=%.1f/s  advantage=%.1fx  read-after=%v\n",
		res.Commits, res.BLMTPerSecond, res.ObjStorePerSecond, res.ThroughputAdvantage, res.ReadAfterCommits)
	fmt.Println("(paper: object stores allow only a handful of mutations per second)")
	return res, nil
}

func runE6(_ *obsSetup) (any, error) {
	res, err := exp.RunE6(5000 * *scale)
	if err != nil {
		return nil, err
	}
	header("E6 | §4.1: object-table inventory vs direct listing")
	fmt.Printf("objects=%d  direct-list=%v  object-table=%v  speedup=%.0fx\n",
		res.Objects, res.DirectList, res.ObjectTable, res.ListSpeedup)
	fmt.Printf("1%% sample: %d rows in %v  (paper: two lines of SQL, seconds not hours)\n",
		res.SampleRows, res.SampleTime)
	return res, nil
}

func runE7(_ *obsSetup) (any, error) {
	res, err := exp.RunE7(16 * *scale)
	if err != nil {
		return nil, err
	}
	header("E7 | Figure 7: distributed preprocess/infer split")
	fmt.Printf("images=%d  colocated-peak=%dB  split-peak=%dB  reduction=%.2fx\n",
		res.Images, res.ColocatedPeakBytes, res.SplitPeakBytes, res.MemoryReduction)
	fmt.Printf("raw-image-bytes=%d  tensor-wire-bytes=%d  (%.0fx smaller on the wire)\n",
		res.RawImageBytes, res.TensorWireBytes, res.WireReductionFactor)
	return res, nil
}

func runE8(_ *obsSetup) (any, error) {
	res, err := exp.RunE8(5, 8**scale)
	if err != nil {
		return nil, err
	}
	header("E8 | §4.2: in-engine vs external inference under burst")
	fmt.Printf("queries=%d  in-engine=%v  remote=%v  penalty=%.2fx  big-model-rejected=%v\n",
		res.Queries, res.InEngineTime, res.RemoteTime, res.RemotePenalty, res.BigModelRejected)
	return res, nil
}

func runE9(_ *obsSetup) (any, error) {
	res, err := exp.RunE9(*scale)
	if err != nil {
		return nil, err
	}
	header("E9 | §5.4: Dremel performance parity across clouds (TPC-H)")
	fmt.Printf("%-6s %14s %14s %10s\n", "query", "gcp", "aws", "aws/gcp")
	for _, r := range res.Rows {
		fmt.Printf("%-6s %14s %14s %9.2fx\n", r.QueryID, r.GCP, r.AWS, r.Ratio)
	}
	return res, nil
}

func runE10(_ *obsSetup) (any, error) {
	res, err := exp.RunE10(100**scale, 1000**scale)
	if err != nil {
		return nil, err
	}
	header("E10 | §5.6.1: cross-cloud join with filter pushdown (A5 = pushdown off)")
	fmt.Printf("pushdown: egress=%dB time=%v\n", res.PushdownEgress, res.PushdownTime)
	fmt.Printf("full ship: egress=%dB time=%v\n", res.FullEgress, res.FullTime)
	fmt.Printf("egress reduction=%.1fx  answers-agree=%v\n", res.EgressReduction, res.AnswersAgree)
	return res, nil
}

func runE11(_ *obsSetup) (any, error) {
	res, err := exp.RunE11(5**scale, 100)
	if err != nil {
		return nil, err
	}
	header("E11 | §5.6.2: CCMV incremental vs full replication")
	fmt.Printf("incremental: files=%d bytes=%d\n", res.IncrementalFiles, res.IncrementalBytes)
	fmt.Printf("full:        files=%d bytes=%d\n", res.FullFiles, res.FullBytes)
	fmt.Printf("egress reduction=%.1fx  replica-correct=%v\n", res.EgressReduction, res.ReplicaRowsCorrect)
	return res, nil
}

func runE12(_ *obsSetup) (any, error) {
	res, err := exp.RunE12()
	if err != nil {
		return nil, err
	}
	header("E12 | §3.2: uniform governance across engines (zero-trust boundary)")
	fmt.Printf("engine rows=%d  read-api rows=%d  rows-agree=%v  masking-agrees=%v\n",
		res.EngineRows, res.ReadAPIRows, res.RowsAgree, res.MaskingAgrees)
	fmt.Printf("hostile-read-denied=%v  denied-column-fails=%v\n",
		res.HostileReadDenied, res.DeniedColumnFails)
	return res, nil
}

func runE13(_ *obsSetup) (any, error) {
	res, err := exp.RunE13(*scale, 40)
	if err != nil {
		return nil, err
	}
	header("E13 | availability under injected object-store faults (TPC-H)")
	fmt.Printf("%-6s %-10s %8s %10s %9s %8s %7s %8s\n",
		"rate", "arm", "queries", "succeeded", "success%", "retries", "hedges", "faults")
	for _, r := range res.Rows {
		fmt.Printf("%-6s %-10s %8d %10d %8.1f%% %8d %7d %8d\n",
			fmt.Sprintf("%.0f%%", 100*r.FaultRate), r.Arm, r.Queries, r.Succeeded, 100*r.SuccessRate, r.Retries, r.Hedges, r.FaultsInjected)
	}
	return res, nil
}

func runE14(_ *obsSetup) (any, error) {
	res, err := exp.RunE14(*scale)
	if err != nil {
		return nil, err
	}
	header("E14 | crash recovery: journal replay time and orphan GC vs journal length")
	fmt.Printf("%8s %8s %11s %9s %10s %9s %12s\n",
		"commits", "orphans", "recover(ms)", "gc(ms)", "gc-bytes", "gc-files", "us/commit")
	for _, r := range res.Rows {
		fmt.Printf("%8d %8d %11.2f %9.2f %10d %9d %12.1f\n",
			r.Commits, r.Orphans, r.RecoverySimMS, r.GCSimMS, r.GCBytes, r.GCDeleted, r.PerCommitUS)
	}
	return res, nil
}

func runE15(_ *obsSetup) (any, error) {
	res, err := exp.RunE15(400000 * *scale)
	if err != nil {
		return nil, err
	}
	header("E15 | vectorized parallel execution: typed kernels, morsels, scan cache (real CPU time)")
	fmt.Printf("fact=%d dim=%d  row-at-a-time=%v  vectorized=%v  speedup=%.2fx\n",
		res.FactRows, res.DimRows, res.LegacyTime, res.VectorizedTime, res.Speedup)
	fmt.Printf("%-8s %14s %10s\n", "workers", "time", "vs 1")
	for _, r := range res.Scaling {
		fmt.Printf("%-8d %14s %9.2fx\n", r.Workers, r.Time, r.Speedup)
	}
	fmt.Printf("scan cache: cold=%v warm=%v (sim %v -> %v)  hits=%d misses=%d\n",
		res.CacheColdTime, res.CacheWarmTime, res.CacheColdSim, res.CacheWarmSim,
		res.CacheHits, res.CacheMisses)
	return res, nil
}

func runE16(_ *obsSetup) (any, error) {
	res, err := exp.RunE16(400000 * *scale)
	if err != nil {
		return nil, err
	}
	header("E16 | observability: trace-span attribution of the E15 speedup")
	fmt.Printf("fact=%d  legacy=%v  vectorized=%v  overall=%.2fx\n",
		res.FactRows, res.LegacyTotal, res.VectorizedTotal, res.Speedup)
	fmt.Printf("%-10s %14s %14s %10s\n", "stage", "legacy", "vectorized", "speedup")
	for _, st := range res.Stages {
		fmt.Printf("%-10s %14s %14s %9.2fx\n", st.Name, st.Legacy, st.Vectorized, st.Speedup)
	}
	fmt.Printf("scan cache sim-I/O: cold=%v (%d GETs) warm=%v (%d GETs)  hits=%d misses=%d\n",
		res.ColdScanSim, res.ColdGets, res.WarmScanSim, res.WarmGets, res.CacheHits, res.CacheMisses)
	return res, nil
}

func runE17(_ *obsSetup) (any, error) {
	res, err := exp.RunE17(*scale)
	if err != nil {
		return nil, err
	}
	header("E17 | interactive transactions: contention sweep, OCC abort rate and commit throughput")
	fmt.Printf("%-8s %10s %9s %8s %8s %10s %12s %12s %9s\n",
		"writers", "committed", "attempts", "aborts", "retries", "abort rate", "txn/sim-s", "base/sim-s", "overhead")
	for _, r := range res.Rows {
		fmt.Printf("%-8d %10d %9d %8d %8d %9.1f%% %12.1f %12.1f %8.2fx\n",
			r.Writers, r.Committed, r.Attempts, r.Aborts, r.Retries, 100*r.AbortRate, r.TxnPerSec, r.BasePerSec, r.Overhead)
	}
	fmt.Printf("(%d same-snapshot rounds per writer count; 1 in 4 writers read-modify-writes a shared counter file)\n", res.Rounds)
	return res, nil
}

func runE18(_ *obsSetup) (any, error) {
	res, err := exp.RunE18(*scale)
	if err != nil {
		return nil, err
	}
	header("E18 | multi-tenant query service: admission control, fairness, graceful overload")
	fmt.Printf("calibrated warm service time: %v per query\n", res.ServiceEst)
	fmt.Printf("%-6s %8s %10s %7s %10s %10s %8s %12s %12s %12s\n",
		"load", "offered", "completed", "failed", "shed(full)", "shed(wait)", "qps", "p50", "p99", "p999")
	for _, r := range res.Rows {
		fmt.Printf("%-6s %8d %10d %7d %10d %10d %8.0f %12s %12s %12s\n",
			fmt.Sprintf("%.1fx", r.Load), r.Offered, r.Completed, r.Failed,
			r.RejQueueFull, r.RejQueueWait, r.GoodputQPS, r.P50, r.P99, r.P999)
	}
	fmt.Printf("goodput: peak=%.0f qps, at max load=%.0f qps, ratio=%.2f (graceful if >= 0.8)\n",
		res.PeakGoodput, res.GoodputAtMaxLoad, res.GoodputMaxRatio)
	fmt.Printf("fairness: equal-weight max/min=%.2f (want <= 2)  4:1-weight heavy/light=%.2f (want > 1)\n",
		res.EqualFairRatio, res.WeightedRatio)
	fmt.Println("(every shed is a typed overloaded/retry-after error, counted in the serve metrics)")
	return res, nil
}

func runE19(_ *obsSetup) (any, error) {
	res, err := exp.RunE19(*scale)
	if err != nil {
		return nil, err
	}
	header("E19 | end-to-end integrity: silent corruption, quarantine, self-healing repair")
	fmt.Printf("%-6s %8s %8s %8s %7s %6s %8s %7s %9s %10s %9s %10s %6s\n",
		"rate", "damaged", "typed", "wrong", "heals", "scrubs", "scrubMB", "detect", "scrubTime", "rewritten", "reverify", "repairTime", "avail")
	for _, r := range res.Rows {
		fmt.Printf("%-6s %8d %8d %8d %7d %6d %8.2f %6.0f%% %9s %10d %9d %10s %6v\n",
			fmt.Sprintf("%.1f%%", r.Rate*100), r.Damaged, r.TypedFailures, r.WrongAnswers,
			r.RefetchHeals, r.ScrubPasses, float64(r.ScrubBytes)/(1<<20), r.DetectionRate*100,
			r.ScrubTime, r.Rewritten, r.Reverified, r.RepairTime, r.FullAvailability)
	}
	fmt.Printf("wrong answers across the sweep: %d (invariant: 0)\n", res.WrongAnswers)
	fmt.Printf("all damaged objects detected: %v   repair restores availability at >=1%%: %v\n",
		res.AllDetected, res.RestoredAtOnePercent)
	fmt.Println("(corruption degrades to typed integrity errors; scrub and repair heal the table in place)")
	return res, nil
}

func runE20(_ *obsSetup) (any, error) {
	res, err := exp.RunE20(*scale)
	if err != nil {
		return nil, err
	}
	header("E20 | GC-lean execution: per-query arenas, late materialization, perf trajectory")
	fmt.Printf("star join (fact=%d dim=%d), steady state, %s wall per arm:\n", res.FactRows, res.DimRows, res.Lean.Time+res.Eager.Time)
	fmt.Printf("%-8s %14s %16s %8s %12s\n", "arm", "allocs/op", "bytes/op", "GC/op", "GC-pause/op")
	fmt.Printf("%-8s %14.0f %16.0f %8.2f %10.0fus\n", "eager", res.Eager.AllocsPerOp, res.Eager.BytesPerOp, res.Eager.GCPerOp, res.Eager.GCPauseUsPerOp)
	fmt.Printf("%-8s %14.0f %16.0f %8.2f %10.0fus\n", "lean", res.Lean.AllocsPerOp, res.Lean.BytesPerOp, res.Lean.GCPerOp, res.Lean.GCPauseUsPerOp)
	fmt.Printf("reduction: allocs %.1fx  bytes %.0fx\n", res.AllocReduction, res.BytesReduction)
	fmt.Printf("mixed serve traffic (%d stmts, star join every %d): eager=%.0f qps  lean=%.0f qps  ratio=%.2fx\n",
		res.PointQueries, res.MixEvery, res.EagerQPS, res.LeanQPS, res.QPSRatio)
	fmt.Printf("point-lookup p99 in the mix: eager=%.0fus  lean=%.0fus\n", res.EagerP99Us, res.LeanP99Us)
	fmt.Printf("%-36s %8s %12s %12s\n", "variance cell", "samples", "mean", "stddev")
	for _, c := range res.Cells {
		fmt.Printf("%-36s %8d %10.0fus %10.0fus\n", c.Name, c.Samples, c.MeanUs, c.StddevUs)
	}
	if regs, base, err := compareE20Baseline(res.Cells); err != nil {
		return nil, err
	} else if base {
		if len(regs) == 0 {
			fmt.Println("trajectory vs committed BENCH_E20.json: all cells within noise bands")
		} else {
			for _, r := range regs {
				fmt.Printf("trajectory REGRESSION %s\n", r)
			}
			return nil, fmt.Errorf("perf trajectory: %d cell(s) regressed beyond the recorded noise band", len(regs))
		}
	}
	return res, nil
}

// compareE20Baseline loads the committed BENCH_E20.json (if any) and
// flags cells outside its noise bands. The bool reports whether a
// baseline existed; no baseline is not an error — the first -json run
// creates it.
func compareE20Baseline(cur []exp.E20Cell) ([]exp.E20Regression, bool, error) {
	data, err := os.ReadFile("BENCH_E20.json")
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	var base exp.E20Result
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, false, fmt.Errorf("BENCH_E20.json: %w", err)
	}
	return exp.TrajectoryCompare(base.Cells, cur), true, nil
}

func runE21(_ *obsSetup) (any, error) {
	res, err := exp.RunE21(*scale)
	if err != nil {
		return nil, err
	}
	header("E21 | queryable telemetry: overhead gate and operator questions in system.* SQL")
	fmt.Printf("tenants=%d offered=%d completed=%d shed=%d  service=%v interarrival=%v\n",
		res.Tenants, res.Offered, res.Completed, res.Shed, res.ServiceEst, res.Interarrival)
	fmt.Printf("goodput: recording-off=%.0f qps  recording-on=%.0f qps  overhead=%.2f%% (budget 2%%)\n",
		res.GoodputOff, res.GoodputOn, res.OverheadPct)
	fmt.Printf("trajectory checksums match=%v  wall: off=%v on=%v (informational)\n",
		res.ChecksumMatch, res.WallOff, res.WallOn)
	fmt.Printf("retained jobs=%d  history captures=%d  delta/counter reconcile=%v\n",
		res.JobsRetained, res.HistoryCaptures, res.ReconcileOK)
	fmt.Printf("top tenants by total exec time (system.jobs):\n")
	fmt.Printf("  %-14s %8s %12s\n", "principal", "queries", "total_us")
	for _, r := range res.TopTenants {
		fmt.Printf("  %-14s %8d %12d\n", r.Principal, r.Queries, r.TotalUs)
	}
	fmt.Printf("per-class SLO (system.slo):\n")
	fmt.Printf("  %-8s %10s %12s %8s %8s\n", "class", "p99_us", "attainment", "burn", "total")
	for _, r := range res.SLO {
		fmt.Printf("  %-8s %10d %11.3f%% %8.2f %8d\n", r.Class, r.P99Us, 100*r.Attainment, r.Burn, r.Total)
	}
	fmt.Printf("shed timeline (system.metrics_history, serve.rejected.queue_full): %d points\n",
		len(res.ShedTimeline))
	return res, nil
}

func runTop(_ *obsSetup) (any, error) {
	res, err := exp.RunTop(10)
	if err != nil {
		return nil, err
	}
	header("TOP | most expensive retained jobs and hottest counters (system.* SQL)")
	fmt.Printf("%-14s %-12s %-6s %-6s %10s %12s %10s %12s\n",
		"query_id", "principal", "class", "state", "wait_us", "exec_us", "rows", "bytes")
	for _, j := range res.Jobs {
		fmt.Printf("%-14s %-12s %-6s %-6s %10d %12d %10d %12d\n",
			j.QueryID, j.Principal, j.Class, j.State, j.AdmissionWaitUs, j.ExecSimUs, j.RowsScanned, j.BytesScanned)
	}
	fmt.Println()
	fmt.Printf("%-40s %12s\n", "counter", "value")
	for _, m := range res.Metrics {
		fmt.Printf("%-40s %12d\n", m.Name, m.Value)
	}
	return res, nil
}

func runA1(_ *obsSetup) (any, error) {
	res, err := exp.RunA1(*scale)
	if err != nil {
		return nil, err
	}
	header("A1 | ablation: file-level statistics vs partition-only pruning")
	fmt.Printf("files=%d  scanned(partition-only)=%d  scanned(file-stats)=%d  gain=%.1fx\n",
		res.FilesTotal, res.ScannedPartOnly, res.ScannedFileStats, res.GranularityGain)
	return res, nil
}

func runA2(_ *obsSetup) (any, error) {
	res, err := exp.RunA2(4000 * *scale)
	if err != nil {
		return nil, err
	}
	header("A2 | ablation: governance at the Read API boundary vs client-side")
	fmt.Printf("rows=%d visible=%d  client-side bytes=%d (raw rows leak to the engine)\n",
		res.TotalRows, res.VisibleRows, res.ClientSideBytes)
	fmt.Printf("boundary bytes=%d  exposure reduction=%.1fx  raw-leaked=%v\n",
		res.BoundaryBytes, res.ExposureReduction, res.RawLeaked)
	return res, nil
}

func runA3(_ *obsSetup) (any, error) {
	res, err := exp.RunA3(2000 * *scale)
	if err != nil {
		return nil, err
	}
	header("A3 | ablation: baseline-reconciled snapshot reads vs full log replay")
	fmt.Printf("commits=%d  baseline=%dns/read  replay=%dns/read  speedup=%.1fx\n",
		res.Commits, res.BaselineNanos, res.ReplayNanos, res.Speedup)
	return res, nil
}

func runA4(_ *obsSetup) (any, error) {
	res, err := exp.RunA4(20000 * *scale)
	if err != nil {
		return nil, err
	}
	header("A4 | ablation: dictionary/RLE retention on the ReadRows wire")
	fmt.Printf("plain=%dB  encoded=%dB  reduction=%.1fx\n", res.PlainBytes, res.EncodedBytes, res.Reduction)
	return res, nil
}

func runFuzz(ob *obsSetup) (any, error) {
	mode := ""
	if *fuzzServe {
		mode = " serve=on"
	}
	header(fmt.Sprintf("FUZZ | differential oracle soak (seed=%d trials=%d queries=%d%s)",
		*fuzzSeed, *fuzzTrials, *fuzzQueries, mode))
	rep, err := oracle.Run(oracle.Options{
		Seed:    *fuzzSeed,
		Trials:  *fuzzTrials,
		Queries: *fuzzQueries,
		Serve:   *fuzzServe,
		Tracer:  ob.tracer,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("trials=%d queries=%d executions=%d fault-errors-accepted=%d\n",
		rep.Trials, rep.Queries, rep.Executions, rep.FaultErrors)
	if rep.Divergence != nil {
		fmt.Println(rep.Divergence.Format())
		return nil, fmt.Errorf("engine diverged from oracle")
	}
	fmt.Println("no divergences: engine matches oracle across the full configuration matrix")
	return rep, nil
}
