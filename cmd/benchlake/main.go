// Command benchlake regenerates every paper table/figure-shaped result
// (DESIGN.md experiments E1–E12 and ablations A1–A5) and prints them
// as tables. Run a single experiment by id, or everything:
//
//	benchlake e1        # Figure 4: TPC-DS speedup with metadata caching
//	benchlake all       # the full evaluation
//	benchlake -scale 2 e1
//
// The differential fuzzer is also exposed here for ad-hoc soaks:
//
//	benchlake -seed 7 -trials 4 -queries 100 fuzz
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"biglake/internal/exp"
	"biglake/internal/oracle"
)

var (
	scale       = flag.Int("scale", 1, "workload scale factor")
	fuzzSeed    = flag.Uint64("seed", 1, "fuzz: base RNG seed")
	fuzzTrials  = flag.Int("trials", 2, "fuzz: generated worlds per run")
	fuzzQueries = flag.Int("queries", 70, "fuzz: SELECTs per world per phase")
	jsonOut     = flag.Bool("json", false, "also write each result as BENCH_<ID>.json in the cwd")
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	ids := args
	if len(args) == 1 && strings.EqualFold(args[0], "all") {
		ids = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "a1", "a2", "a3", "a4"}
	}
	for _, id := range ids {
		if err := run(strings.ToLower(id)); err != nil {
			fmt.Fprintf(os.Stderr, "benchlake: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: benchlake [-scale N] [-json] <experiment>...
experiments: e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 e15 a1 a2 a3 a4 all
fuzzing:     benchlake [-seed N] [-trials N] [-queries N] fuzz`)
}

// emitJSON writes one experiment's result struct as BENCH_<ID>.json
// when -json is set, for machine consumption (CI trend tracking).
func emitJSON(id string, res any) error {
	if !*jsonOut {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	name := "BENCH_" + strings.ToUpper(id) + ".json"
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", name)
	return nil
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
}

func run(id string) error {
	switch id {
	case "e1":
		res, err := exp.RunE1(*scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E1 | Figure 4: TPC-DS speedup with metadata caching (simulated wall clock)")
		fmt.Printf("%-6s %-10s %14s %14s %10s\n", "query", "kind", "cache off", "cache on", "speedup")
		for _, r := range res.Rows {
			fmt.Printf("%-6s %-10s %14s %14s %9.2fx\n", r.QueryID, r.Kind, r.CacheOff, r.CacheOn, r.Speedup)
		}
		fmt.Printf("%-6s %-10s %14s %14s %9.2fx   (paper: ~4x overall)\n",
			"TOTAL", "", res.TotalOff, res.TotalOn, res.OverallSpeedup)
	case "e2":
		res, err := exp.RunE2(60000 * *scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E2 | §3.4: vectorized vs row-oriented Read API (real CPU time)")
		fmt.Printf("rows=%d  vectorized=%v  row-oriented=%v  gain=%.2fx  (paper: ~2x throughput)\n",
			res.Rows, res.VectorizedTime, res.RowOrientedTime, res.ThroughputGain)
	case "e3":
		res, err := exp.RunE3(*scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E3 | §3.4: read-session statistics improve external-engine plans")
		fmt.Printf("%-6s %14s %14s %10s\n", "plan", "blind", "with stats", "speedup")
		for _, r := range res.Rows {
			fmt.Printf("%-6s %14s %14s %9.2fx\n", r.QueryID, r.Blind, r.WithStat, r.Speedup)
		}
		fmt.Printf("overall %.2fx  (paper: 5x on TPC-DS)\n", res.OverallSpeedup)
	case "e4":
		res, err := exp.RunE4(*scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E4 | §3.4: external engine via Read API vs direct object-store reads (TPC-H)")
		fmt.Printf("%-10s %14s %14s %18s\n", "plan", "direct", "read api", "direct/api ratio")
		for _, r := range res.Rows {
			fmt.Printf("%-10s %14s %14s %17.2fx\n", r.QueryID, r.Direct, r.ReadAPI, r.Ratio)
		}
		fmt.Println("(paper: Read API matches or exceeds the direct baseline)")
	case "e5":
		res, err := exp.RunE5(30 * *scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E5 | §3.5: BLMT commit throughput vs object-store-committed formats")
		fmt.Printf("commits=%d  blmt=%.1f/s  objstore=%.1f/s  advantage=%.1fx  read-after=%v\n",
			res.Commits, res.BLMTPerSecond, res.ObjStorePerSecond, res.ThroughputAdvantage, res.ReadAfterCommits)
		fmt.Println("(paper: object stores allow only a handful of mutations per second)")
	case "e6":
		res, err := exp.RunE6(5000 * *scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E6 | §4.1: object-table inventory vs direct listing")
		fmt.Printf("objects=%d  direct-list=%v  object-table=%v  speedup=%.0fx\n",
			res.Objects, res.DirectList, res.ObjectTable, res.ListSpeedup)
		fmt.Printf("1%% sample: %d rows in %v  (paper: two lines of SQL, seconds not hours)\n",
			res.SampleRows, res.SampleTime)
	case "e7":
		res, err := exp.RunE7(16 * *scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E7 | Figure 7: distributed preprocess/infer split")
		fmt.Printf("images=%d  colocated-peak=%dB  split-peak=%dB  reduction=%.2fx\n",
			res.Images, res.ColocatedPeakBytes, res.SplitPeakBytes, res.MemoryReduction)
		fmt.Printf("raw-image-bytes=%d  tensor-wire-bytes=%d  (%.0fx smaller on the wire)\n",
			res.RawImageBytes, res.TensorWireBytes, res.WireReductionFactor)
	case "e8":
		res, err := exp.RunE8(5, 8**scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E8 | §4.2: in-engine vs external inference under burst")
		fmt.Printf("queries=%d  in-engine=%v  remote=%v  penalty=%.2fx  big-model-rejected=%v\n",
			res.Queries, res.InEngineTime, res.RemoteTime, res.RemotePenalty, res.BigModelRejected)
	case "e9":
		res, err := exp.RunE9(*scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E9 | §5.4: Dremel performance parity across clouds (TPC-H)")
		fmt.Printf("%-6s %14s %14s %10s\n", "query", "gcp", "aws", "aws/gcp")
		for _, r := range res.Rows {
			fmt.Printf("%-6s %14s %14s %9.2fx\n", r.QueryID, r.GCP, r.AWS, r.Ratio)
		}
	case "e10":
		res, err := exp.RunE10(100**scale, 1000**scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E10 | §5.6.1: cross-cloud join with filter pushdown (A5 = pushdown off)")
		fmt.Printf("pushdown: egress=%dB time=%v\n", res.PushdownEgress, res.PushdownTime)
		fmt.Printf("full ship: egress=%dB time=%v\n", res.FullEgress, res.FullTime)
		fmt.Printf("egress reduction=%.1fx  answers-agree=%v\n", res.EgressReduction, res.AnswersAgree)
	case "e11":
		res, err := exp.RunE11(5**scale, 100)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E11 | §5.6.2: CCMV incremental vs full replication")
		fmt.Printf("incremental: files=%d bytes=%d\n", res.IncrementalFiles, res.IncrementalBytes)
		fmt.Printf("full:        files=%d bytes=%d\n", res.FullFiles, res.FullBytes)
		fmt.Printf("egress reduction=%.1fx  replica-correct=%v\n", res.EgressReduction, res.ReplicaRowsCorrect)
	case "e12":
		res, err := exp.RunE12()
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E12 | §3.2: uniform governance across engines (zero-trust boundary)")
		fmt.Printf("engine rows=%d  read-api rows=%d  rows-agree=%v  masking-agrees=%v\n",
			res.EngineRows, res.ReadAPIRows, res.RowsAgree, res.MaskingAgrees)
		fmt.Printf("hostile-read-denied=%v  denied-column-fails=%v\n",
			res.HostileReadDenied, res.DeniedColumnFails)
	case "a1":
		res, err := exp.RunA1(*scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("A1 | ablation: file-level statistics vs partition-only pruning")
		fmt.Printf("files=%d  scanned(partition-only)=%d  scanned(file-stats)=%d  gain=%.1fx\n",
			res.FilesTotal, res.ScannedPartOnly, res.ScannedFileStats, res.GranularityGain)
	case "a2":
		res, err := exp.RunA2(4000 * *scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("A2 | ablation: governance at the Read API boundary vs client-side")
		fmt.Printf("rows=%d visible=%d  client-side bytes=%d (raw rows leak to the engine)\n",
			res.TotalRows, res.VisibleRows, res.ClientSideBytes)
		fmt.Printf("boundary bytes=%d  exposure reduction=%.1fx  raw-leaked=%v\n",
			res.BoundaryBytes, res.ExposureReduction, res.RawLeaked)
	case "a3":
		res, err := exp.RunA3(2000 * *scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("A3 | ablation: baseline-reconciled snapshot reads vs full log replay")
		fmt.Printf("commits=%d  baseline=%dns/read  replay=%dns/read  speedup=%.1fx\n",
			res.Commits, res.BaselineNanos, res.ReplayNanos, res.Speedup)
	case "a4":
		res, err := exp.RunA4(20000 * *scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("A4 | ablation: dictionary/RLE retention on the ReadRows wire")
		fmt.Printf("plain=%dB  encoded=%dB  reduction=%.1fx\n", res.PlainBytes, res.EncodedBytes, res.Reduction)
	case "e13":
		res, err := exp.RunE13(*scale, 40)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E13 | availability under injected object-store faults (TPC-H)")
		fmt.Printf("%-6s %-10s %8s %10s %9s %8s %7s %8s\n",
			"rate", "arm", "queries", "succeeded", "success%", "retries", "hedges", "faults")
		for _, r := range res.Rows {
			fmt.Printf("%-6s %-10s %8d %10d %8.1f%% %8d %7d %8d\n",
				fmt.Sprintf("%.0f%%", 100*r.FaultRate), r.Arm, r.Queries, r.Succeeded, 100*r.SuccessRate, r.Retries, r.Hedges, r.FaultsInjected)
		}
	case "e14":
		res, err := exp.RunE14(*scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E14 | crash recovery: journal replay time and orphan GC vs journal length")
		fmt.Printf("%8s %8s %11s %9s %10s %9s %12s\n",
			"commits", "orphans", "recover(ms)", "gc(ms)", "gc-bytes", "gc-files", "us/commit")
		for _, r := range res.Rows {
			fmt.Printf("%8d %8d %11.2f %9.2f %10d %9d %12.1f\n",
				r.Commits, r.Orphans, r.RecoverySimMS, r.GCSimMS, r.GCBytes, r.GCDeleted, r.PerCommitUS)
		}
	case "e15":
		res, err := exp.RunE15(400000 * *scale)
		if err != nil {
			return err
		}
		if err := emitJSON(id, res); err != nil {
			return err
		}
		header("E15 | vectorized parallel execution: typed kernels, morsels, scan cache (real CPU time)")
		fmt.Printf("fact=%d dim=%d  row-at-a-time=%v  vectorized=%v  speedup=%.2fx\n",
			res.FactRows, res.DimRows, res.LegacyTime, res.VectorizedTime, res.Speedup)
		fmt.Printf("%-8s %14s %10s\n", "workers", "time", "vs 1")
		for _, r := range res.Scaling {
			fmt.Printf("%-8d %14s %9.2fx\n", r.Workers, r.Time, r.Speedup)
		}
		fmt.Printf("scan cache: cold=%v warm=%v (sim %v -> %v)  hits=%d misses=%d\n",
			res.CacheColdTime, res.CacheWarmTime, res.CacheColdSim, res.CacheWarmSim,
			res.CacheHits, res.CacheMisses)
	case "fuzz":
		header(fmt.Sprintf("FUZZ | differential oracle soak (seed=%d trials=%d queries=%d)",
			*fuzzSeed, *fuzzTrials, *fuzzQueries))
		rep, err := oracle.Run(oracle.Options{
			Seed:    *fuzzSeed,
			Trials:  *fuzzTrials,
			Queries: *fuzzQueries,
			Log: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		if err := emitJSON(id, rep); err != nil {
			return err
		}
		fmt.Printf("trials=%d queries=%d executions=%d fault-errors-accepted=%d\n",
			rep.Trials, rep.Queries, rep.Executions, rep.FaultErrors)
		if rep.Divergence != nil {
			fmt.Println(rep.Divergence.Format())
			return fmt.Errorf("engine diverged from oracle")
		}
		fmt.Println("no divergences: engine matches oracle across the full configuration matrix")
	default:
		usage()
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
