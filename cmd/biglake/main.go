// Command biglake is a small SQL shell over a single-region lakehouse
// deployment. It can bootstrap a demo dataset (a managed table, a
// BigLake table over open files, and an object table of images) and
// then execute SQL from -sql flags or stdin.
//
//	biglake -demo -sql "SELECT region, SUM(amount) AS total FROM demo.orders GROUP BY region"
//	echo "SELECT * FROM demo.orders LIMIT 5" | biglake -demo
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"biglake"
	"biglake/internal/colfmt"
	"biglake/internal/mlmodel"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

var (
	demo      = flag.Bool("demo", false, "bootstrap the demo dataset before running")
	sqlFlag   = flag.String("sql", "", "semicolon-separated SQL statements to run")
	principal = flag.String("principal", "admin@biglake", "principal to run as")
)

func main() {
	flag.Parse()
	lh, err := biglake.New(biglake.Options{Admin: "admin@biglake"})
	if err != nil {
		fatal(err)
	}
	if *demo {
		if err := loadDemo(lh); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "demo dataset loaded: demo.orders (managed), demo.events (biglake), demo.images (object table), model demo.classifier")
	}

	stmts := splitStatements(*sqlFlag)
	if len(stmts) == 0 {
		scanner := bufio.NewScanner(os.Stdin)
		scanner.Buffer(make([]byte, 1<<20), 1<<20)
		var input strings.Builder
		for scanner.Scan() {
			input.WriteString(scanner.Text())
			input.WriteByte('\n')
		}
		stmts = splitStatements(input.String())
	}
	for _, stmt := range stmts {
		res, err := lh.Query(biglake.Principal(*principal), stmt)
		if err != nil {
			fatal(err)
		}
		printBatch(res.Batch)
		fmt.Printf("(%d rows, %d files scanned, %d pruned, %v simulated)\n\n",
			res.Batch.N, res.Stats.FilesScanned, res.Stats.FilesPruned, res.Stats.SimElapsed)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "biglake:", err)
	os.Exit(1)
}

func splitStatements(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		if trimmed := strings.TrimSpace(part); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}

func printBatch(b *biglake.Batch) {
	names := make([]string, len(b.Schema.Fields))
	for i, f := range b.Schema.Fields {
		names[i] = f.Name
	}
	fmt.Println(strings.Join(names, " | "))
	limit := b.N
	if limit > 50 {
		limit = 50
	}
	for i := 0; i < limit; i++ {
		row := b.Row(i)
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if limit < b.N {
		fmt.Printf("... (%d more rows)\n", b.N-limit)
	}
}

// loadDemo provisions a small multi-table playground.
func loadDemo(lh *biglake.Lakehouse) error {
	if err := lh.CreateDataset("demo"); err != nil {
		return err
	}
	// Managed table with DML.
	ordersSchema := biglake.NewSchema(
		biglake.Field{Name: "id", Type: biglake.Int64},
		biglake.Field{Name: "region", Type: biglake.String},
		biglake.Field{Name: "amount", Type: biglake.Float64},
	)
	if err := lh.CreateManagedTable("admin@biglake", "demo", "orders", ordersSchema, "bq-managed"); err != nil {
		return err
	}
	if _, err := lh.Query("admin@biglake",
		"INSERT INTO demo.orders VALUES (1, 'us', 10.5), (2, 'eu', 20.0), (3, 'us', 5.0), (4, 'jp', 8.25)"); err != nil {
		return err
	}

	// BigLake table over open-format files on a customer bucket.
	if err := lh.CreateBucket("customer-lake"); err != nil {
		return err
	}
	if _, err := lh.CreateConnection("lake-conn", "customer-lake"); err != nil {
		return err
	}
	eventsSchema := biglake.NewSchema(
		biglake.Field{Name: "event_id", Type: biglake.Int64},
		biglake.Field{Name: "kind", Type: biglake.String},
	)
	bl := vector.NewBuilder(eventsSchema)
	for i := 0; i < 100; i++ {
		bl.Append(biglake.IntValue(int64(i)), biglake.StringValue([]string{"click", "view", "buy"}[i%3]))
	}
	file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	if err != nil {
		return err
	}
	if err := lh.Upload("customer-lake", "events/part-0.blk", file, "application/x-blk"); err != nil {
		return err
	}
	if err := lh.CreateBigLakeTable("admin@biglake", biglake.BigLakeTableSpec{
		Dataset: "demo", Name: "events", Schema: eventsSchema,
		Bucket: "customer-lake", Prefix: "events/", Connection: "lake-conn", MetadataCaching: true,
	}); err != nil {
		return err
	}

	// Object table + classifier.
	if err := lh.CreateBucket("media"); err != nil {
		return err
	}
	rng := sim.NewRNG(1)
	classes := []string{"dark", "dim", "bright", "blinding"}
	for i := 0; i < 8; i++ {
		img := mlmodel.RandomImage(rng, 64, 64, i%len(classes), len(classes))
		enc, err := mlmodel.EncodeImage(img)
		if err != nil {
			return err
		}
		if err := lh.Upload("media", fmt.Sprintf("imgs/i%02d.jpg", i), enc, "image/jpeg"); err != nil {
			return err
		}
	}
	if err := lh.CreateObjectTable("admin@biglake", "demo", "images", "media", "imgs/"); err != nil {
		return err
	}
	lh.Inference.RegisterModel(&biglake.Model{
		Name:       "demo.classifier",
		Classifier: biglake.NewClassifier("classifier", 16, 16, classes, 42),
	})
	return nil
}
