package biglake

import (
	"strings"
	"testing"

	"biglake/internal/colfmt"
	"biglake/internal/mlmodel"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

const (
	admin   = Principal("admin@biglake")
	analyst = Principal("analyst@corp")
)

func newLakehouse(t *testing.T) *Lakehouse {
	t.Helper()
	lh, err := New(Options{Admin: admin})
	if err != nil {
		t.Fatal(err)
	}
	return lh
}

func TestLakehouseEndToEnd(t *testing.T) {
	lh := newLakehouse(t)
	if err := lh.CreateDataset("sales"); err != nil {
		t.Fatal(err)
	}
	schema := NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "region", Type: String},
		Field{Name: "amount", Type: Float64},
	)
	if err := lh.CreateManagedTable(admin, "sales", "orders", schema, "bq-managed"); err != nil {
		t.Fatal(err)
	}
	if _, err := lh.Query(admin, "INSERT INTO sales.orders VALUES (1, 'us', 10.5), (2, 'eu', 20.0), (3, 'us', 5.0)"); err != nil {
		t.Fatal(err)
	}
	res, err := lh.Query(admin, "SELECT region, SUM(amount) AS total FROM sales.orders GROUP BY region ORDER BY total DESC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.N != 2 || res.Batch.Row(0)[0].S != "eu" {
		t.Fatalf("result = %d rows, first %v", res.Batch.N, res.Batch.Row(0))
	}
}

func TestLakehouseGovernanceFlow(t *testing.T) {
	lh := newLakehouse(t)
	lh.CreateDataset("hr")
	schema := NewSchema(Field{Name: "name", Type: String}, Field{Name: "salary", Type: Int64})
	if err := lh.CreateManagedTable(admin, "hr", "people", schema, "bq-managed"); err != nil {
		t.Fatal(err)
	}
	lh.Query(admin, "INSERT INTO hr.people VALUES ('ann', 100), ('bob', 200)")
	lh.Auth.GrantTable(admin, "hr.people", analyst, RoleViewer)
	lh.Auth.SetColumnPolicy(admin, "hr.people", ColumnPolicy{
		Column: "salary", Allowed: map[Principal]bool{admin: true}, Mask: vector.MaskHash,
	})
	res, err := lh.Query(analyst, "SELECT name, salary FROM hr.people ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Batch.Row(0)[1].S, "hash_") {
		t.Fatalf("salary not masked: %v", res.Batch.Row(0))
	}
}

func TestLakehouseBigLakeTableWithConnection(t *testing.T) {
	lh := newLakehouse(t)
	lh.CreateDataset("lake")
	if err := lh.CreateBucket("customer-data"); err != nil {
		t.Fatal(err)
	}
	if _, err := lh.CreateConnection("lake-conn", "customer-data"); err != nil {
		t.Fatal(err)
	}
	// Write an open-format file directly to the bucket.
	schema := NewSchema(Field{Name: "v", Type: Int64})
	bl := vector.NewBuilder(schema)
	bl.Append(IntValue(7))
	file, err := writeFileHelper(bl.Build())
	if err != nil {
		t.Fatal(err)
	}
	if err := lh.Upload("customer-data", "t/part-0.blk", file, "application/x-blk"); err != nil {
		t.Fatal(err)
	}
	if err := lh.CreateBigLakeTable(admin, BigLakeTableSpec{
		Dataset: "lake", Name: "t", Schema: schema,
		Bucket: "customer-data", Prefix: "t/", Connection: "lake-conn", MetadataCaching: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := lh.RefreshMetadataCache("lake.t"); err != nil {
		t.Fatal(err)
	}
	res, err := lh.Query(admin, "SELECT v FROM lake.t")
	if err != nil || res.Batch.N != 1 || res.Batch.Row(0)[0].AsInt() != 7 {
		t.Fatalf("res = %v err = %v", res, err)
	}
}

func TestLakehouseObjectTableAndInference(t *testing.T) {
	lh := newLakehouse(t)
	lh.CreateDataset("media")
	lh.CreateBucket("images")
	rng := sim.NewRNG(3)
	classes := []string{"dark", "bright"}
	for i, class := range []int{0, 1} {
		img := mlmodel.RandomImage(rng, 64, 64, class, 2)
		enc, _ := mlmodel.EncodeImage(img)
		key := []string{"imgs/a.jpg", "imgs/b.jpg"}[i]
		if err := lh.Upload("images", key, enc, "image/jpeg"); err != nil {
			t.Fatal(err)
		}
	}
	if err := lh.CreateObjectTable(admin, "media", "files", "images", "imgs/"); err != nil {
		t.Fatal(err)
	}
	model := NewClassifier("m", 16, 16, classes, 9)
	lh.Inference.RegisterModel(&Model{Name: "media.m", Classifier: model})
	res, err := lh.Query(admin, `SELECT uri, predictions FROM ML.PREDICT(MODEL media.m,
		(SELECT uri, ML.DECODE_IMAGE(uri) AS image FROM media.files))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.N != 2 {
		t.Fatalf("rows = %d", res.Batch.N)
	}
	// Sampling helper.
	all, _ := lh.Query(admin, "SELECT * FROM media.files")
	sample, err := SampleObjects(all.Batch, 1.0, 1)
	if err != nil || sample.N != 2 {
		t.Fatalf("sample: %v", err)
	}
}

func TestMultiCloudFacade(t *testing.T) {
	dep := NewMultiCloud(admin)
	if _, err := dep.AddRegion("gcp-us", "gcp"); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.AddRegion("azure-eastus", "azure"); err != nil {
		t.Fatal(err)
	}
	if dep.Primary != "gcp-us" {
		t.Fatalf("primary = %q", dep.Primary)
	}
}

func TestSparkleSessionOverLakehouse(t *testing.T) {
	lh := newLakehouse(t)
	lh.CreateDataset("lake")
	lh.CreateBucket("b")
	schema := NewSchema(Field{Name: "v", Type: Int64})
	bl := vector.NewBuilder(schema)
	for i := 0; i < 10; i++ {
		bl.Append(IntValue(int64(i)))
	}
	file, _ := writeFileHelper(bl.Build())
	lh.Upload("b", "t/p.blk", file, "")
	lh.CreateConnection("c", "b")
	lh.CreateBigLakeTable(admin, BigLakeTableSpec{
		Dataset: "lake", Name: "t", Schema: schema, Bucket: "b", Prefix: "t/",
		Connection: "c", MetadataCaching: true,
	})
	sess := NewSparkleSession(lh, SparkleOptions{UseSessionStats: true})
	got, err := sess.ReadBigLake(lh.StorageAPI, admin, "lake.t").
		Filter(Predicate{Column: "v", Op: vector.GE, Value: IntValue(5)}).
		Collect()
	if err != nil || got.N != 5 {
		t.Fatalf("sparkle rows = %v err = %v", got, err)
	}
}

// writeFileHelper builds a columnar file from a batch for tests.
func writeFileHelper(b *vector.Batch) ([]byte, error) {
	return colfmt.WriteFile(b, colfmt.WriterOptions{})
}
